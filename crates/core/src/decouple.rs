//! Step 4 — decoupling the selected sub-circuit from the host design.
//!
//! Given the selected cell set, the design splits into
//!
//! * the **sub-circuit netlist** (the part to be redacted): its primary
//!   inputs are the boundary nets feeding the selection from outside, its
//!   outputs the selection-driven nets the rest of the design (or a primary
//!   output) reads;
//! * the **host**: the original design with the selection removed, exposed
//!   as a [`shell_netlist::Design`] whose top instantiates a placeholder
//!   `redacted` module — after PnR the placeholder is replaced by the
//!   (locked or configured) fabric netlist and flattened back into one
//!   netlist.

use shell_netlist::{CellId, Design, Instance, ModuleDef, NetId, Netlist, PortBinding};
use std::collections::HashSet;

/// The two halves of a redaction.
#[derive(Debug, Clone)]
pub struct RedactionPartition {
    /// The sub-circuit to map onto the fabric.
    pub sub: Netlist,
    /// Host module with an instance hole named `redacted`.
    pub host: ModuleDef,
    /// Number of boundary input bits of the hole.
    pub boundary_inputs: usize,
    /// Number of boundary output bits.
    pub boundary_outputs: usize,
    /// Cells moved into the sub-circuit.
    pub cells_moved: usize,
    /// How many of the moved cells are muxes (the ROUTE share).
    pub route_cells: usize,
}

impl RedactionPartition {
    /// Reassembles a complete flat netlist by instantiating `replacement`
    /// (any netlist port-compatible with the sub-circuit — the locked
    /// fabric, the configured fabric, or the sub itself) into the host hole.
    ///
    /// # Errors
    ///
    /// Returns a [`shell_netlist::NetlistError`] when the replacement's
    /// ports do not match the hole.
    pub fn reassemble(
        &self,
        replacement: Netlist,
    ) -> Result<Netlist, shell_netlist::NetlistError> {
        // Check the replacement covers every bound port before flattening
        // (flatten tolerates extra unbound *outputs*, so a port-less
        // replacement would silently leave the hole floating).
        for binding in &self.host.instances[0].bindings {
            let has_input = replacement
                .inputs()
                .iter()
                .any(|&n| replacement.net(n).name == binding.port);
            let has_output = replacement
                .outputs()
                .iter()
                .any(|(name, _)| name == &binding.port);
            if !has_input && !has_output {
                return Err(shell_netlist::NetlistError::InvalidId(format!(
                    "replacement lacks port `{}`",
                    binding.port
                )));
            }
        }
        let mut design = Design::new(self.host.netlist.name().to_string());
        *design.top_mut() = self.host.clone();
        let mut replacement = replacement;
        replacement.set_name("redacted");
        design.add_leaf_module(replacement);
        design.flatten()
    }
}

/// Partitions `netlist` into the sub-circuit spanned by `selected` and the
/// surrounding host.
///
/// Boundary naming: the sub's inputs are called `hin<i>`, its outputs
/// `hout<i>`, in deterministic net order; the host's `redacted` instance
/// binds the same names. Sequential cells inside the selection move with it
/// (they become fabric CLB registers).
///
/// # Panics
///
/// Panics when `selected` is empty or references out-of-range cells.
pub fn partition_by_cells(netlist: &Netlist, selected: &[CellId]) -> RedactionPartition {
    assert!(!selected.is_empty(), "cannot redact an empty selection");
    let sel: HashSet<CellId> = selected.iter().copied().collect();
    for &c in selected {
        assert!(c.index() < netlist.cell_count(), "invalid cell id {c}");
    }
    let fanout = netlist.fanout_table();

    // Boundary nets.
    let mut boundary_in: Vec<NetId> = Vec::new(); // read by sel, driven outside
    let mut boundary_out: Vec<NetId> = Vec::new(); // driven by sel, read outside/PO
    let mut seen_in: HashSet<NetId> = HashSet::new();
    let mut seen_out: HashSet<NetId> = HashSet::new();
    for &cid in selected {
        let c = netlist.cell(cid);
        for &inp in &c.inputs {
            let external = match netlist.net(inp).driver {
                Some(drv) => !sel.contains(&drv),
                None => true, // PI/key/floating
            };
            if external && seen_in.insert(inp) {
                boundary_in.push(inp);
            }
        }
        let out = c.output;
        let read_outside = fanout[out.index()]
            .iter()
            .any(|(reader, _)| !sel.contains(reader))
            || netlist.is_primary_output(out);
        if read_outside && seen_out.insert(out) {
            boundary_out.push(out);
        }
    }

    // --- Build the sub-circuit ---------------------------------------
    let mut sub = Netlist::new("redacted");
    let mut sub_map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for (i, &n) in boundary_in.iter().enumerate() {
        sub_map[n.index()] = Some(sub.add_input(format!("hin{i}")));
    }
    // Pre-create sequential outputs inside the selection.
    for &cid in selected {
        let c = netlist.cell(cid);
        if c.kind.is_sequential() && sub_map[c.output.index()].is_none() {
            sub_map[c.output.index()] = Some(sub.add_net(netlist.net(c.output).name.clone()));
        }
    }
    let order = netlist.topo_order().expect("cyclic design");
    let mut route_cells = 0usize;
    for cid in &order {
        if !sel.contains(cid) {
            continue;
        }
        let c = netlist.cell(*cid);
        if c.kind.is_mux() {
            route_cells += 1;
        }
        let ins: Vec<NetId> = c
            .inputs
            .iter()
            .map(|&n| sub_map[n.index()].expect("boundary input mapped"))
            .collect();
        if c.kind.is_sequential() {
            let pre = sub_map[c.output.index()].expect("pre-created");
            sub.add_cell_driving(c.name.clone(), c.kind, ins, pre)
                .expect("sub sequential");
        } else {
            let out = sub.add_cell(c.name.clone(), c.kind, ins);
            sub_map[c.output.index()] = Some(out);
        }
    }
    for (i, &n) in boundary_out.iter().enumerate() {
        let m = sub_map[n.index()].expect("selected output realized");
        sub.add_output(format!("hout{i}"), m);
    }

    // --- Build the host ------------------------------------------------
    let mut host = Netlist::new(netlist.name());
    let mut host_map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &n in netlist.inputs() {
        host_map[n.index()] = Some(host.add_input(netlist.net(n).name.clone()));
    }
    for &n in netlist.key_inputs() {
        host_map[n.index()] = Some(host.add_key_input(netlist.net(n).name.clone()));
    }
    // Hole outputs become fresh (instance-driven) host nets.
    for &n in &boundary_out {
        host_map[n.index()] = Some(host.add_net(format!("hole_{}", netlist.net(n).name)));
    }
    // Pre-create host sequential outputs.
    for (cid, c) in netlist.cells() {
        if !sel.contains(&cid) && c.kind.is_sequential() && host_map[c.output.index()].is_none()
        {
            host_map[c.output.index()] = Some(host.add_net(netlist.net(c.output).name.clone()));
        }
    }
    for cid in &order {
        if sel.contains(cid) {
            continue;
        }
        let c = netlist.cell(*cid);
        let ins: Vec<NetId> = c
            .inputs
            .iter()
            .map(|&n| {
                if let Some(m) = host_map[n.index()] {
                    m
                } else {
                    let m = host.add_net(netlist.net(n).name.clone());
                    host_map[n.index()] = Some(m);
                    m
                }
            })
            .collect();
        if c.kind.is_sequential() {
            let pre = host_map[c.output.index()].expect("pre-created");
            host.add_cell_driving(c.name.clone(), c.kind, ins, pre)
                .expect("host sequential");
        } else {
            let out = host.add_cell(c.name.clone(), c.kind, ins);
            host_map[c.output.index()] = Some(out);
        }
    }
    for (name, n) in netlist.outputs() {
        let m = if let Some(m) = host_map[n.index()] {
            m
        } else {
            let m = host.add_net(netlist.net(*n).name.clone());
            host_map[n.index()] = Some(m);
            m
        };
        host.add_output(name.clone(), m);
    }
    // Instance bindings.
    let mut bindings = Vec::with_capacity(boundary_in.len() + boundary_out.len());
    for (i, &n) in boundary_in.iter().enumerate() {
        let host_net = if let Some(m) = host_map[n.index()] {
            m
        } else {
            let m = host.add_net(netlist.net(n).name.clone());
            host_map[n.index()] = Some(m);
            m
        };
        bindings.push(PortBinding {
            port: format!("hin{i}"),
            net: host_net,
        });
    }
    for (i, &n) in boundary_out.iter().enumerate() {
        bindings.push(PortBinding {
            port: format!("hout{i}"),
            net: host_map[n.index()].expect("hole net created"),
        });
    }
    let host_module = ModuleDef {
        netlist: host,
        instances: vec![Instance {
            name: "u_redacted".into(),
            module: "redacted".into(),
            bindings,
        }],
    };

    RedactionPartition {
        sub,
        host: host_module,
        boundary_inputs: boundary_in.len(),
        boundary_outputs: boundary_out.len(),
        cells_moved: selected.len(),
        route_cells,
    }
}

/// Selection helper shared with `select`: cells within undirected distance
/// `depth` of any cell in `seeds` (depth 0 = the seeds themselves).
pub fn expand_selection(netlist: &Netlist, seeds: &[CellId], depth: usize) -> Vec<CellId> {
    let fanout = netlist.fanout_table();
    let mut frontier: HashSet<CellId> = seeds.iter().copied().collect();
    let mut all = frontier.clone();
    for _ in 0..depth {
        let mut next = HashSet::new();
        for &cid in &frontier {
            let c = netlist.cell(cid);
            for &inp in &c.inputs {
                if let Some(drv) = netlist.net(inp).driver {
                    if all.insert(drv) {
                        next.insert(drv);
                    }
                }
            }
            for &(reader, _) in &fanout[c.output.index()] {
                if all.insert(reader) {
                    next.insert(reader);
                }
            }
        }
        frontier = next;
    }
    let mut out: Vec<CellId> = all.into_iter().collect();
    out.sort_unstable();
    out
}

/// Convenience: `CellKind`-agnostic check that reassembling the partition
/// with its own sub-circuit reproduces the original design (used by tests
/// and the pipeline's sanity pass).
pub fn partition_is_sound(original: &Netlist, partition: &RedactionPartition) -> bool {
    let Ok(rebuilt) = partition.reassemble(partition.sub.clone()) else {
        return false;
    };
    use shell_netlist::equiv::{equiv_random, equiv_sequential_random};
    let outcome = if original.is_combinational() && rebuilt.is_combinational() {
        equiv_random(original, &rebuilt, &[], &[], 256, 0xDECAF)
    } else {
        equiv_sequential_random(original, &rebuilt, &[], &[], 64, 0xDECAF)
    };
    outcome.is_equivalent()
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_circuits::{axi_xbar, generate, Benchmark, Scale};
    use shell_circuits::common::cells_of_block;

    #[test]
    fn partition_roundtrip_combinational() {
        let n = axi_xbar(4, 3);
        // Select the crossbar mux block.
        let cells = cells_of_block(&n, "xbar");
        assert!(!cells.is_empty());
        let p = partition_by_cells(&n, &cells);
        assert_eq!(p.cells_moved, cells.len());
        assert!(p.route_cells > 0);
        assert!(p.boundary_inputs > 0 && p.boundary_outputs > 0);
        assert!(partition_is_sound(&n, &p), "reassembly must be exact");
    }

    #[test]
    fn partition_roundtrip_all_benchmarks() {
        for bench in Benchmark::all() {
            let n = generate(bench, Scale::small());
            let t = bench.redaction_targets();
            let mut cells = cells_of_block(&n, t.shell_route);
            cells.extend(cells_of_block(&n, t.shell_lgc));
            cells.sort_unstable();
            cells.dedup();
            let p = partition_by_cells(&n, &cells);
            assert!(
                partition_is_sound(&n, &p),
                "{}: partition broke the function",
                bench.name()
            );
        }
    }

    #[test]
    fn sub_ports_named_consistently() {
        let n = axi_xbar(4, 2);
        let cells = cells_of_block(&n, "xbar");
        let p = partition_by_cells(&n, &cells);
        assert_eq!(p.sub.inputs().len(), p.boundary_inputs);
        assert_eq!(p.sub.outputs().len(), p.boundary_outputs);
        assert_eq!(p.sub.net(p.sub.inputs()[0]).name, "hin0");
        assert_eq!(p.sub.outputs()[0].0, "hout0");
        // The host instance binds exactly the same port names.
        let inst = &p.host.instances[0];
        assert!(inst.bindings.iter().any(|b| b.port == "hin0"));
        assert!(inst.bindings.iter().any(|b| b.port == "hout0"));
    }

    #[test]
    fn sequential_cells_move_with_selection() {
        let n = generate(Benchmark::PicoSoc, Scale::small());
        let cells = cells_of_block(&n, "picorv32.mem_wr"); // register bank
        assert!(!cells.is_empty());
        let p = partition_by_cells(&n, &cells);
        assert!(!p.sub.is_combinational(), "registers must move into sub");
        assert!(partition_is_sound(&n, &p));
    }

    #[test]
    fn expand_selection_grows_monotonically() {
        let n = axi_xbar(4, 2);
        let seeds = cells_of_block(&n, "xbar");
        let d0 = expand_selection(&n, &seeds, 0);
        let d1 = expand_selection(&n, &seeds, 1);
        let d2 = expand_selection(&n, &seeds, 2);
        assert_eq!(d0.len(), seeds.len());
        assert!(d1.len() > d0.len());
        assert!(d2.len() >= d1.len());
        for c in &d0 {
            assert!(d1.contains(c));
        }
    }

    #[test]
    #[should_panic(expected = "empty selection")]
    fn empty_selection_panics() {
        let n = axi_xbar(2, 1);
        partition_by_cells(&n, &[]);
    }

    #[test]
    fn reassemble_with_wrong_shape_errors() {
        let n = axi_xbar(4, 2);
        let cells = cells_of_block(&n, "xbar");
        let p = partition_by_cells(&n, &cells);
        // Replacement with no ports at all.
        let bogus = Netlist::new("bogus");
        assert!(p.reassemble(bogus).is_err());
    }
}
