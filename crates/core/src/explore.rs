//! Extensions beyond the paper's evaluation.
//!
//! * [`optimize_coefficients`] — the paper's future-work direction
//!   ("explore these attributes more quantitatively and more heuristically
//!   (e.g., use of (M)ILP, GA, or ML)"): a deterministic hill-climbing
//!   search over the Eq. 1 weights against a cheap overhead proxy, so the
//!   operating point can be tuned per design without running full PnR per
//!   candidate.
//! * [`corruption_rate`] — output corruptibility of wrong keys: the
//!   fraction of output bits that flip under random wrong keys. SheLL's
//!   selection rule (iv) picks LGC "leading to better propagation
//!   (corruptibility)"; this measures it.

use crate::pipeline::RedactionOutcome;
use crate::score::Coefficients;
use crate::select::{select_subcircuit, SelectionOptions};
use shell_fabric::shrink::bind_keys;
use shell_netlist::{Netlist, Simulator};
use shell_synth::propagate_constants_cyclic;

/// Cheap proxy for the mapped cost of a selection: boundary pins dominate
/// fabric IO and routing, LGC LUTs dominate CLB demand, and the mux count
/// sets the chain-block demand.
fn selection_cost(design: &Netlist, options: &SelectionOptions) -> f64 {
    let selection = select_subcircuit(design, options);
    let partition = crate::decouple::partition_by_cells(design, &selection.cells);
    partition.boundary_inputs as f64
        + partition.boundary_outputs as f64
        + 2.0 * selection.lgc_luts
        + 0.5 * selection.route_cells.len() as f64
}

/// Hill-climbs the six Eq. 1 weights (continuous, starting from the c5
/// preset) against the selection-cost proxy. Deterministic; `rounds`
/// coordinate sweeps with a shrinking step size.
///
/// Returns the tuned coefficients and the final proxy cost.
pub fn optimize_coefficients(
    design: &Netlist,
    rounds: usize,
) -> (Coefficients, f64) {
    let mut current = Coefficients::c5_shell();
    let base_opts = SelectionOptions::default();
    let eval = |c: &Coefficients| {
        let opts = SelectionOptions {
            coefficients: *c,
            ..base_opts.clone()
        };
        selection_cost(design, &opts)
    };
    let mut best_cost = eval(&current);
    let mut step = 0.5;
    for _ in 0..rounds {
        let mut improved = false;
        for axis in 0..6usize {
            for dir in [step, -step] {
                let mut candidate = current;
                let field: &mut f64 = match axis {
                    0 => &mut candidate.alpha,
                    1 => &mut candidate.beta,
                    2 => &mut candidate.gamma,
                    3 => &mut candidate.lambda,
                    4 => &mut candidate.xi,
                    _ => &mut candidate.sigma,
                };
                *field = (*field + dir).clamp(-2.0, 2.0);
                let cost = eval(&candidate);
                if cost < best_cost {
                    best_cost = cost;
                    current = candidate;
                    improved = true;
                }
            }
        }
        if !improved {
            step /= 2.0;
            if step < 0.05 {
                break;
            }
        }
    }
    (current, best_cost)
}

/// Measures output corruption under `keys` random wrong keys × `vectors`
/// random input vectors: the mean fraction of output bits differing from
/// the oracle. 0.0 = wrong keys are invisible (bad lock); ~0.5 = ideal
/// corruption.
///
/// Wrong keys that configure a combinational loop count as fully corrupted
/// (the chip would not even settle).
pub fn corruption_rate(
    original: &Netlist,
    outcome: &RedactionOutcome,
    keys: usize,
    vectors: usize,
) -> f64 {
    let mut state = 0xC0221u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    let n_in = original.inputs().len();
    let mut oracle_sim = Simulator::new(original);
    let mut total = 0.0;
    let mut samples = 0usize;
    for _ in 0..keys {
        // Random wrong key (guaranteed ≠ correct by flipping one known bit).
        let mut key: Vec<bool> = (0..outcome.key.len()).map(|_| next() & 1 == 1).collect();
        if key == outcome.key && !key.is_empty() {
            key[0] = !key[0];
        }
        let bound = propagate_constants_cyclic(&bind_keys(&outcome.locked, &key));
        if bound.topo_order().is_err() {
            total += vectors as f64; // unsettleable: fully corrupted
            samples += vectors;
            continue;
        }
        let mut locked_sim = Simulator::new(&bound);
        oracle_sim.reset();
        for _ in 0..vectors {
            let pattern: Vec<bool> = (0..n_in).map(|_| next() & 1 == 1).collect();
            let want = oracle_sim.step(&pattern, &[]);
            let got = locked_sim.step(&pattern, &[]);
            let flipped = want
                .iter()
                .zip(&got)
                .filter(|(a, b)| a != b)
                .count();
            total += flipped as f64 / want.len().max(1) as f64;
            samples += 1;
        }
    }
    total / samples.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{shell_lock, ShellOptions};
    use shell_circuits::axi_xbar;

    #[test]
    fn optimizer_never_worse_than_c5() {
        let design = axi_xbar(4, 2);
        let c5_cost = selection_cost(
            &design,
            &SelectionOptions {
                coefficients: Coefficients::c5_shell(),
                ..Default::default()
            },
        );
        let (tuned, cost) = optimize_coefficients(&design, 6);
        assert!(cost <= c5_cost, "tuned {cost} vs c5 {c5_cost}");
        // Tuned weights remain bounded.
        for w in [tuned.alpha, tuned.beta, tuned.gamma, tuned.lambda, tuned.xi, tuned.sigma] {
            assert!((-2.0..=2.0).contains(&w));
        }
    }

    #[test]
    fn optimizer_deterministic() {
        let design = axi_xbar(4, 1);
        let a = optimize_coefficients(&design, 4);
        let b = optimize_coefficients(&design, 4);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn corruption_is_meaningful() {
        let design = axi_xbar(4, 2);
        let outcome = shell_lock(&design, &ShellOptions::default()).expect("flow");
        let rate = corruption_rate(&design, &outcome, 6, 24);
        assert!(
            rate > 0.02,
            "wrong keys must visibly corrupt outputs: rate {rate}"
        );
        assert!(rate <= 1.0);
    }

    #[test]
    fn correct_key_has_zero_corruption() {
        // Degenerate check through the same machinery: binding the correct
        // key and comparing to the oracle flips nothing.
        let design = axi_xbar(4, 1);
        let outcome = shell_lock(&design, &ShellOptions::default()).expect("flow");
        let bound = propagate_constants_cyclic(&bind_keys(&outcome.locked, &outcome.key));
        use shell_netlist::equiv::equiv_random;
        assert!(equiv_random(&design, &bound, &[], &[], 256, 11).is_equivalent());
    }
}
