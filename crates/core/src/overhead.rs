//! Normalized area/power/delay overhead evaluation — the metric of
//! Tables IV–VII.
//!
//! The implementation cost of a redacted design is the host logic plus the
//! **whole fabric hardware** (every switch mux, connection mux, LUT read
//! structure and its configuration storage ships in silicon, used or not).
//! The locked netlist emitted by [`shell_fabric::to_locked_netlist`] — or
//! its shrunk version — already contains all fabric cells except the
//! configuration storage, which is priced from the key-bit count and the
//! architecture's storage style.
//!
//! Delay is measured on the same implementation netlist after cyclic
//! reduction (the raw mesh can be structurally cyclic): a topological
//! worst path through real mux trees, the honest eFPGA delay model.

use crate::pipeline::RedactionOutcome;
use shell_attacks::cyclic_reduction;
use shell_fabric::{ApdReport, ConfigStorage, FabricStyle, TechLibrary};
use shell_netlist::{CellKind, Netlist};

/// Normalized overhead triple (locked / original).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overhead {
    /// Area ratio.
    pub area: f64,
    /// Power ratio.
    pub power: f64,
    /// Delay ratio.
    pub delay: f64,
}

impl std::fmt::Display for Overhead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "A {:.2} / P {:.2} / D {:.2}",
            self.area, self.power, self.delay
        )
    }
}

/// Prices `outcome` against `original` with the style-appropriate library
/// (custom mux cells for FABulous fabrics).
pub fn evaluate_overhead(original: &Netlist, outcome: &RedactionOutcome) -> Overhead {
    let lib = match outcome.fabric.config().style {
        FabricStyle::OpenFpga => TechLibrary::sky130(),
        FabricStyle::Fabulous => TechLibrary::sky130_custom_cells(),
    };
    let base_lib = TechLibrary::sky130();
    let base = base_lib.evaluate(original);

    // The locked netlist may be cyclic (un-shrunk baselines): reduce first.
    let impl_netlist = if outcome.locked.topo_order().is_ok() {
        outcome.locked.clone()
    } else {
        cyclic_reduction(&outcome.locked).netlist
    };
    let mut locked_eval = lib.evaluate(&impl_netlist);

    // Configuration storage: one element per surviving key bit.
    let storage_cost = match outcome.fabric.config().config_storage {
        ConfigStorage::Dff => lib.cost(CellKind::Dff, 1),
        ConfigStorage::Latch => lib.cost(CellKind::Latch, 2),
    };
    let bits = outcome.key.len() as f64;
    locked_eval.area += bits * storage_cost.area;
    locked_eval.power += bits * storage_cost.leakage / 1000.0;

    let norm = locked_eval.normalized_to(&base);
    Overhead {
        area: norm.area,
        power: norm.power,
        delay: norm.delay,
    }
}

/// Raw (non-normalized) implementation report, exposed for the benches.
pub fn implementation_report(outcome: &RedactionOutcome) -> ApdReport {
    let lib = match outcome.fabric.config().style {
        FabricStyle::OpenFpga => TechLibrary::sky130(),
        FabricStyle::Fabulous => TechLibrary::sky130_custom_cells(),
    };
    let impl_netlist = if outcome.locked.topo_order().is_ok() {
        outcome.locked.clone()
    } else {
        cyclic_reduction(&outcome.locked).netlist
    };
    lib.evaluate(&impl_netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{redact_baseline, BaselineCase};
    use crate::pipeline::ShellOptions;
    use shell_circuits::{generate, Benchmark, Scale};

    #[test]
    fn overheads_exceed_unity() {
        let n = generate(Benchmark::Dla, Scale::small());
        let cells = BaselineCase::Shell.target_cells(Benchmark::Dla, &n);
        let outcome =
            redact_baseline(&n, &cells, BaselineCase::Shell, &ShellOptions::default())
                .expect("maps");
        let oh = evaluate_overhead(&n, &outcome);
        assert!(oh.area > 1.0, "area {}", oh.area);
        assert!(oh.power > 1.0, "power {}", oh.power);
        assert!(oh.delay >= 1.0, "delay {}", oh.delay);
        assert!(oh.area < 100.0, "sanity upper bound: {}", oh.area);
    }

    #[test]
    fn shell_beats_openfpga_baseline_on_same_target() {
        // Same redaction target, Case 1 vs Case 4: SheLL's chains + shrink
        // must cost less — the core Table V claim.
        let n = generate(Benchmark::Dla, Scale::small());
        let cells = BaselineCase::Shell.target_cells(Benchmark::Dla, &n);
        let opts = ShellOptions::default();
        let shell =
            redact_baseline(&n, &cells, BaselineCase::Shell, &opts).expect("shell maps");
        let open = redact_baseline(&n, &cells, BaselineCase::NoStrategyOpenFpga, &opts)
            .expect("case1 maps");
        let oh_shell = evaluate_overhead(&n, &shell);
        let oh_open = evaluate_overhead(&n, &open);
        assert!(
            oh_shell.area < oh_open.area,
            "SheLL area {} !< OpenFPGA area {}",
            oh_shell.area,
            oh_open.area
        );
    }

    #[test]
    fn display_formats() {
        let oh = Overhead {
            area: 1.39,
            power: 1.45,
            delay: 1.47,
        };
        assert_eq!(oh.to_string(), "A 1.39 / P 1.45 / D 1.47");
    }
}
