//! The end-to-end SheLL flow (Fig. 4) and its outcome type.
//!
//! `shell_lock` runs steps 1–8: connectivity analysis and scoring, selection,
//! decoupling, dual synthesis + fabric mapping with the fit loop (via
//! [`shell_pnr::place_and_route_with_chains`]), and shrinking. The result
//! carries everything the evaluation needs: the locked flat netlist (host +
//! fabric, key inputs = surviving configuration bits), the correct key, the
//! fabric and bitstream, and bookkeeping statistics.

use crate::decouple::{partition_by_cells, RedactionPartition};
use crate::select::{select_subcircuit, SelectionOptions};
use shell_fabric::{
    shrink_locked_netlist, to_locked_netlist, Bitstream, Fabric, FabricConfig, FramedBitstream,
};
use shell_netlist::{CellId, Netlist};
use shell_pnr::{place_and_route, place_and_route_with_chains, PnrError, PnrOptions, PnrResult};
use shell_synth::lut_map;

/// Options of the SheLL flow.
#[derive(Debug, Clone)]
pub struct ShellOptions {
    /// Selection knobs (coefficients, budgets, LGC depth).
    pub selection: SelectionOptions,
    /// PnR knobs.
    pub pnr: PnrOptions,
    /// Skip step 8 (for the shrink ablation).
    pub skip_shrink: bool,
    /// Rungs of the retry ladder wrapped around the mapping flow: when PnR
    /// reports `DoesNotFit`/`Unroutable`, the flow retries with relaxed
    /// knobs (wider channels → more fabric-expansion headroom → more
    /// placement starts) instead of giving up. `1` disables retries.
    pub max_ladder_attempts: usize,
}

impl Default for ShellOptions {
    fn default() -> Self {
        Self {
            selection: SelectionOptions::default(),
            pnr: PnrOptions::default(),
            skip_shrink: false,
            max_ladder_attempts: 4,
        }
    }
}

/// One rung of the retry ladder: what was tried and how it ended. Serialized
/// into results JSON so a report shows *how* a design fit, not only that it
/// did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// 1-based ladder rung.
    pub attempt: usize,
    /// The knob change this rung applied (`"baseline"` for the first).
    pub action: String,
    /// `"ok"` or the PnR error message.
    pub outcome: String,
}

/// A finished redaction: any of the four cases produces this.
#[derive(Debug, Clone)]
pub struct RedactionOutcome {
    /// The locked flat design: host + fabric, key inputs = config bits
    /// (only the *used* bits after shrinking).
    pub locked: Netlist,
    /// The correct key (values of the locked netlist's key inputs).
    pub key: Vec<bool>,
    /// The fabric the sub-circuit was mapped to.
    pub fabric: Fabric,
    /// The full fabric bitstream (pre-shrink view), flat v1 form.
    pub bitstream: Bitstream,
    /// The same configuration in the canonical frame-addressed form:
    /// per-frame CRC + SECDED ECC, device-style addresses, ready for
    /// readback and partial reconfiguration (see [`shell_fabric::frame`]).
    pub framed: FramedBitstream,
    /// The partition that was redacted.
    pub partition_cells: usize,
    /// Mux share of the redacted cells.
    pub route_cells: usize,
    /// Fabric tiles used / total (Fig. 2's utilization).
    pub utilization: f64,
    /// Whether the shrink step ran.
    pub shrunk: bool,
    /// Key length before shrinking (all config bits).
    pub key_bits_before_shrink: usize,
    /// The fit ladder's journal: one record per mapping attempt.
    pub attempts: Vec<AttemptRecord>,
    /// Budget-degraded stages, propagated from [`shell_pnr::PnrResult`].
    pub degraded: Vec<String>,
}

impl RedactionOutcome {
    /// Key length of the locked design.
    pub fn key_bits(&self) -> usize {
        self.key.len()
    }
}

/// Runs the complete SheLL flow on `design` with a FABulous chain fabric.
///
/// # Errors
///
/// Propagates [`PnrError`] when the sub-circuit cannot be mapped, and
/// reports assembly failures as [`PnrError::VerificationFailed`].
pub fn shell_lock(design: &Netlist, options: &ShellOptions) -> Result<RedactionOutcome, PnrError> {
    let selection = select_subcircuit(design, &options.selection);
    shell_lock_cells(design, &selection.cells, options)
}

/// SheLL flow on a *hierarchical* design (the paper's SoC-level entry,
/// Fig. 3a/3c): step 1's flatten/uniquify runs first, then the flat flow.
///
/// # Errors
///
/// Reports flattening problems as [`PnrError::Unsupported`]; otherwise the
/// same conditions as [`shell_lock`].
pub fn shell_lock_design(
    design: &shell_netlist::Design,
    options: &ShellOptions,
) -> Result<RedactionOutcome, PnrError> {
    let flat = design
        .flatten()
        .map_err(|e| PnrError::Unsupported(format!("flatten failed: {e}")))?;
    shell_lock(&flat, options)
}

/// SheLL flow with an explicit cell selection (used when reproducing the
/// paper's named TfR targets instead of score-driven selection).
///
/// # Errors
///
/// Same as [`shell_lock`].
pub fn shell_lock_cells(
    design: &Netlist,
    cells: &[CellId],
    options: &ShellOptions,
) -> Result<RedactionOutcome, PnrError> {
    shell_lock_cells_with_fabric(design, cells, FabricConfig::fabulous_style(true), options)
}

/// SheLL flow with score-driven selection on an explicit fabric
/// architecture — the design-space explorer's entry point
/// (`shell-explore` sweeps [`FabricConfig`] knobs through here).
///
/// Chain-enabled configs run the dual-synthesis chain flow; chainless
/// configs LUT-map the whole sub-circuit at the config's `lut_k` (the
/// baseline-style mapping). Both paths get the fit retry ladder.
///
/// # Errors
///
/// [`PnrError::Unsupported`] for an invalid `config`; otherwise the same
/// conditions as [`shell_lock`].
pub fn shell_lock_with_fabric(
    design: &Netlist,
    config: FabricConfig,
    options: &ShellOptions,
) -> Result<RedactionOutcome, PnrError> {
    let selection = select_subcircuit(design, &options.selection);
    shell_lock_cells_with_fabric(design, &selection.cells, config, options)
}

/// [`shell_lock_with_fabric`] with an explicit cell selection.
///
/// # Errors
///
/// Same as [`shell_lock_with_fabric`].
pub fn shell_lock_cells_with_fabric(
    design: &Netlist,
    cells: &[CellId],
    config: FabricConfig,
    options: &ShellOptions,
) -> Result<RedactionOutcome, PnrError> {
    let _span = shell_trace::span!("lock.flow");
    config
        .validate()
        .map_err(|e| PnrError::Unsupported(format!("invalid fabric config: {e}")))?;
    let partition = partition_by_cells(design, cells);
    let (pnr, attempts) = map_with_ladder(&partition.sub, config, options)?;
    finish(design, partition, pnr, options.skip_shrink, attempts)
}

/// One mapping attempt for the fit ladder: the chain flow for chain-enabled
/// fabrics, LUT-map-everything + plain PnR otherwise.
fn map_once(
    sub: &Netlist,
    config: FabricConfig,
    pnr_options: &PnrOptions,
) -> Result<PnrResult, PnrError> {
    if config.mux_chains {
        place_and_route_with_chains(sub, config, pnr_options)
    } else {
        let mapped = lut_map(sub, config.lut_k)
            .map_err(|e| PnrError::Unsupported(e.to_string()))?
            .netlist;
        place_and_route(&mapped, config, pnr_options)
    }
}

/// The retry ladder around the mapping flow. Fit failures escalate one knob
/// per rung — wider routing channels, then more fabric-expansion headroom,
/// then more placement starts — and every attempt lands in the journal.
/// Budget exhaustion and structural errors abort immediately: no knob fixes
/// a spent deadline or an unsupported netlist.
fn map_with_ladder(
    sub: &Netlist,
    mut config: FabricConfig,
    options: &ShellOptions,
) -> Result<(shell_pnr::PnrResult, Vec<AttemptRecord>), PnrError> {
    let mut pnr_options = options.pnr.clone();
    let mut attempts = Vec::new();
    let mut action = String::from("baseline");
    let rungs = options.max_ladder_attempts.max(1);
    for attempt in 1..=rungs {
        // One span per ladder rung — it brackets exactly the work the
        // matching `AttemptRecord` journals.
        let _rung_span = shell_trace::span!("lock.ladder_rung", attempt = attempt);
        shell_trace::counter_add("lock.ladder_attempts", 1);
        match map_once(sub, config.clone(), &pnr_options) {
            Ok(result) => {
                attempts.push(AttemptRecord {
                    attempt,
                    action,
                    outcome: "ok".into(),
                });
                return Ok((result, attempts));
            }
            Err(err @ (PnrError::DoesNotFit(_) | PnrError::Unroutable(_))) => {
                attempts.push(AttemptRecord {
                    attempt,
                    action: std::mem::take(&mut action),
                    outcome: err.to_string(),
                });
                if attempt == rungs {
                    return Err(err);
                }
                match attempt {
                    1 => {
                        config.channel_width += 4;
                        action = format!("channel_width -> {}", config.channel_width);
                    }
                    2 => {
                        pnr_options.max_fit_attempts += 8;
                        action =
                            format!("max_fit_attempts -> {}", pnr_options.max_fit_attempts);
                    }
                    _ => {
                        pnr_options.place_starts += 2;
                        action = format!("place_starts -> {}", pnr_options.place_starts);
                    }
                }
            }
            Err(err) => {
                attempts.push(AttemptRecord {
                    attempt,
                    action,
                    outcome: err.to_string(),
                });
                return Err(err);
            }
        }
    }
    unreachable!("ladder loop returns on its last rung")
}

/// Shared tail of every redaction flow: emit the locked fabric netlist,
/// optionally shrink, reassemble with the host, and extract the key.
pub(crate) fn finish(
    design: &Netlist,
    partition: RedactionPartition,
    pnr: shell_pnr::PnrResult,
    skip_shrink: bool,
    attempts: Vec<AttemptRecord>,
) -> Result<RedactionOutcome, PnrError> {
    let locked_fabric = to_locked_netlist(&pnr.fabric, &pnr.io_map);
    let key_bits_before_shrink = locked_fabric.key_inputs().len();
    let (fabric_netlist, key, shrunk) = if skip_shrink {
        let key: Vec<bool> = pnr.bitstream.as_bools().to_vec();
        (locked_fabric, key, false)
    } else {
        let shrunken = shrink_locked_netlist(&locked_fabric, &pnr.bitstream);
        let key: Vec<bool> = (0..pnr.bitstream.len())
            .filter(|&i| pnr.bitstream.is_used(i))
            .map(|i| pnr.bitstream.bit(i))
            .collect();
        debug_assert_eq!(key.len(), shrunken.key_inputs().len());
        (shrunken, key, true)
    };
    let locked = partition
        .reassemble(fabric_netlist)
        .map_err(|e| PnrError::VerificationFailed(format!("reassembly failed: {e}")))?;
    let _ = design;
    let framed = FramedBitstream::from_flat(&pnr.fabric, &pnr.bitstream)
        .map_err(|e| PnrError::VerificationFailed(format!("frame packing failed: {e}")))?;
    Ok(RedactionOutcome {
        locked,
        key,
        fabric: pnr.fabric,
        bitstream: pnr.bitstream,
        framed,
        partition_cells: partition.cells_moved,
        route_cells: partition.route_cells,
        utilization: pnr.utilization,
        shrunk,
        key_bits_before_shrink,
        attempts,
        degraded: pnr.degraded,
    })
}

/// Activates a redaction outcome: binds the correct key, producing the
/// unkeyed design an authorized fab would ship. The result may be large
/// (un-shrunk baseline fabrics bring their whole mux mesh); run
/// [`shell_synth::propagate_constants_cyclic`] on it for a compact view.
pub fn activate(outcome: &RedactionOutcome) -> Netlist {
    shell_fabric::shrink::bind_keys(&outcome.locked, &outcome.key)
}

/// Binds an arbitrary `key` into the locked netlist — the piracy scenario:
/// a fab without the bitstream guessing configuration bits. Wrong keys
/// generally corrupt the function (see the wrong-key tests and the
/// `shell-verify` negative suite); `key` must have one bit per key input.
///
/// # Panics
///
/// Panics if `key.len()` differs from the locked netlist's key-input count.
pub fn activate_with_key(outcome: &RedactionOutcome, key: &[bool]) -> Netlist {
    assert_eq!(
        key.len(),
        outcome.locked.key_inputs().len(),
        "activate_with_key: key width mismatch"
    );
    shell_fabric::shrink::bind_keys(&outcome.locked, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_circuits::common::cells_of_block;
    use shell_circuits::{axi_xbar, generate, Benchmark, Scale};
    use shell_netlist::equiv::{equiv_random, equiv_sequential_random};
    use shell_synth::propagate_constants_cyclic;

    fn assert_activates_correctly(original: &Netlist, outcome: &RedactionOutcome) {
        let activated = activate(outcome);
        let activated = propagate_constants_cyclic(&activated);
        let ok = if original.is_combinational() && activated.is_combinational() {
            equiv_random(original, &activated, &[], &[], 256, 0xACE).is_equivalent()
        } else {
            equiv_sequential_random(original, &activated, &[], &[], 48, 0xACE).is_equivalent()
        };
        assert!(ok, "correct key must restore the original function");
    }

    #[test]
    fn shell_lock_xbar_end_to_end() {
        let n = axi_xbar(4, 2);
        let outcome = shell_lock(&n, &ShellOptions::default()).expect("flow succeeds");
        assert!(outcome.shrunk);
        assert!(outcome.key_bits() > 0);
        assert!(
            outcome.key_bits() < outcome.key_bits_before_shrink,
            "shrinking must reduce the exposed key"
        );
        assert!(outcome.route_cells > 0);
        assert_activates_correctly(&n, &outcome);
    }

    #[test]
    fn shell_lock_named_targets_picosoc() {
        let n = generate(Benchmark::PicoSoc, Scale::small());
        let t = Benchmark::PicoSoc.redaction_targets();
        let mut cells = cells_of_block(&n, t.shell_route);
        cells.extend(cells_of_block(&n, t.shell_lgc));
        cells.sort_unstable();
        cells.dedup();
        let outcome =
            shell_lock_cells(&n, &cells, &ShellOptions::default()).expect("flow succeeds");
        assert!(outcome.partition_cells == cells.len());
        assert_activates_correctly(&n, &outcome);
    }

    #[test]
    fn skip_shrink_keeps_all_bits() {
        let n = axi_xbar(4, 1);
        let opts = ShellOptions {
            skip_shrink: true,
            ..Default::default()
        };
        let outcome = shell_lock(&n, &opts).expect("flow succeeds");
        assert!(!outcome.shrunk);
        assert_eq!(outcome.key_bits(), outcome.key_bits_before_shrink);
        assert_activates_correctly(&n, &outcome);
    }

    #[test]
    fn soc_level_flow_on_hierarchical_design() {
        // Fig. 3a/3c: the hierarchical SoC platform goes through flatten +
        // lock; the Xbar muxes land on fabric chains.
        let design = shell_circuits::soc_platform(3, 2);
        let flat = design.flatten().unwrap();
        let outcome = shell_lock_design(&design, &ShellOptions::default())
            .expect("SoC-level flow");
        assert!(outcome.route_cells > 0);
        let activated = propagate_constants_cyclic(&activate(&outcome));
        assert!(
            equiv_sequential_random(&flat, &activated, &[], &[], 32, 0x50C).is_equivalent(),
            "activated SoC equals the flattened original"
        );
    }

    #[test]
    fn wrong_key_breaks_function() {
        let n = axi_xbar(4, 2);
        let outcome = shell_lock(&n, &ShellOptions::default()).expect("flow succeeds");
        // Flip a used key bit: the activated design must now diverge.
        let mut bad_key = outcome.key.clone();
        assert!(!bad_key.is_empty());
        // Flip several bits to dodge don't-care survivors.
        for i in 0..bad_key.len().min(8) {
            bad_key[i] = !bad_key[i];
        }
        let broken = shell_fabric::shrink::bind_keys(&outcome.locked, &bad_key);
        let broken = propagate_constants_cyclic(&broken);
        // A wrong key may even configure a combinational loop — that counts
        // as (very) corrupted.
        if broken.topo_order().is_err() {
            return;
        }
        let same = if broken.is_combinational() {
            equiv_random(&n, &broken, &[], &[], 256, 7).is_equivalent()
        } else {
            equiv_sequential_random(&n, &broken, &[], &[], 48, 7).is_equivalent()
        };
        assert!(!same, "flipping key bits must corrupt the function");
    }
}
