//! Packing and placement.
//!
//! Packing turns a LUT-mapped netlist into **slots** (LUT + optional fused
//! register, or a constant generator); placement assigns slots to CLB sites
//! with simulated annealing on half-perimeter wirelength; IO assignment
//! binds primary inputs/outputs to boundary pads near their logic.

use shell_fabric::Fabric;
use shell_guard::{Budget, Exhausted};
use shell_netlist::{CellId, CellKind, LutMask, NetId, Netlist};
use shell_util::Rng;
use std::collections::HashMap;

/// What a CLB slot implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotContent {
    /// A LUT (optionally registered). `lut_cell` is the source LUT cell,
    /// `dff_cell` the fused register, if any.
    Lut {
        /// Source LUT cell.
        lut_cell: CellId,
        /// Fused DFF, when the LUT output is registered.
        dff_cell: Option<CellId>,
    },
    /// A standalone register: identity LUT + FF. `pin_net` is the data net.
    Reg {
        /// Source DFF cell.
        dff_cell: CellId,
    },
    /// A constant generator (mask all-ones or all-zeros).
    Const {
        /// Source constant cell.
        cell: CellId,
        /// The constant value.
        value: bool,
    },
}

/// A packed slot: content plus the nets on its pins.
#[derive(Debug, Clone)]
pub struct Slot {
    /// Implementation of the slot.
    pub content: SlotContent,
    /// Input nets, in LUT-pin order (empty for constants).
    pub input_nets: Vec<NetId>,
    /// LUT truth table (already padded to the fabric's k).
    pub mask: u64,
    /// Whether the FF output is selected.
    pub registered: bool,
    /// The net this slot drives.
    pub output_net: NetId,
}

/// Packs a LUT-mapped netlist into slots.
///
/// Accepted cells: `Lut` (arity ≤ k), `Dff`, `Const`. A DFF whose data input
/// is a single-fanout LUT fuses into that LUT's slot; other DFFs get a
/// passthrough-LUT slot.
///
/// # Errors
///
/// Returns a message naming the first unmappable cell (wrong kind or LUT
/// arity above the fabric's k).
pub fn pack(netlist: &Netlist, k: usize) -> Result<Vec<Slot>, String> {
    pack_filtered(netlist, k, |_| true)
}

/// Like [`pack`], but cells whose kind fails `include` are skipped instead
/// of rejected — used by the hybrid chain flow, where mux cells map to
/// chain blocks rather than CLB slots.
///
/// # Errors
///
/// Same conditions as [`pack`] for the included cells.
pub fn pack_filtered(
    netlist: &Netlist,
    k: usize,
    include: impl Fn(CellKind) -> bool,
) -> Result<Vec<Slot>, String> {
    let fanout = netlist.fanout_table();
    let mut fused_dff: HashMap<CellId, CellId> = HashMap::new(); // lut -> dff
    let mut fused_luts: HashMap<CellId, CellId> = HashMap::new(); // dff -> lut
    for (cid, c) in netlist.cells() {
        if c.kind != CellKind::Dff {
            continue;
        }
        let d = c.inputs[0];
        if let Some(drv) = netlist.net(d).driver {
            let dc = netlist.cell(drv);
            let single_fanout =
                fanout[d.index()].len() == 1 && !netlist.is_primary_output(d);
            if matches!(dc.kind, CellKind::Lut(_)) && single_fanout {
                fused_dff.insert(drv, cid);
                fused_luts.insert(cid, drv);
            }
        }
    }
    let mut slots = Vec::new();
    for (cid, c) in netlist.cells() {
        if !include(c.kind) {
            continue;
        }
        match c.kind {
            CellKind::Lut(mask) => {
                if mask.arity() > k {
                    return Err(format!(
                        "LUT `{}` has arity {} > fabric k {}",
                        c.name,
                        mask.arity(),
                        k
                    ));
                }
                let dff_cell = fused_dff.get(&cid).copied();
                let (output_net, registered) = match dff_cell {
                    Some(d) => (netlist.cell(d).output, true),
                    None => (c.output, false),
                };
                slots.push(Slot {
                    content: SlotContent::Lut {
                        lut_cell: cid,
                        dff_cell,
                    },
                    input_nets: c.inputs.clone(),
                    mask: pad_mask(mask, k),
                    registered,
                    output_net,
                });
            }
            CellKind::Dff => {
                if fused_luts.contains_key(&cid) {
                    continue; // carried by its LUT's slot
                }
                // Identity LUT on pin 0: mask = pin0 pattern padded to k.
                let identity = pad_mask(LutMask::new(0b10, 1), k);
                slots.push(Slot {
                    content: SlotContent::Reg { dff_cell: cid },
                    input_nets: vec![c.inputs[0]],
                    mask: identity,
                    registered: true,
                    output_net: c.output,
                });
            }
            CellKind::Const(v) => {
                slots.push(Slot {
                    content: SlotContent::Const { cell: cid, value: v },
                    input_nets: Vec::new(),
                    mask: if v { u64::MAX } else { 0 },
                    registered: false,
                    output_net: c.output,
                });
            }
            other => {
                return Err(format!(
                    "cell `{}` of kind {} is not LUT-mapped",
                    c.name, other
                ))
            }
        }
    }
    Ok(slots)
}

/// Extends a LUT mask of arity `a` to arity `k` by ignoring the extra pins.
fn pad_mask(mask: LutMask, k: usize) -> u64 {
    let a = mask.arity();
    debug_assert!(a <= k);
    let mut out = 0u64;
    for row in 0..(1usize << k) {
        let low = row & ((1 << a) - 1);
        if (mask.mask() >> low) & 1 == 1 {
            out |= 1 << row;
        }
    }
    out
}

/// A placement: slot index → CLB site, plus IO pad bindings.
#[derive(Debug, Clone, Default)]
pub struct Placement {
    /// `slot index → (x, y, clb slot)`.
    pub sites: Vec<(usize, usize, usize)>,
    /// `primary input index → input pad`.
    pub input_pads: Vec<usize>,
    /// `primary output index → output pad`.
    pub output_pads: Vec<usize>,
    /// Final half-perimeter wirelength.
    pub hpwl: f64,
    /// Why annealing stopped early, when it did. The placement is still
    /// legal (the best configuration seen so far), just lower quality than
    /// a full anneal would produce.
    pub degraded: Option<Exhausted>,
}

/// Places `slots` onto `fabric` with simulated annealing, then assigns IO
/// pads greedily near the placed logic.
///
/// Deterministic for a given `seed`.
///
/// # Errors
///
/// Returns a message when the fabric lacks LUT sites or IO pads.
pub fn place(
    netlist: &Netlist,
    slots: &[Slot],
    fabric: &Fabric,
    seed: u64,
) -> Result<Placement, String> {
    place_with_hints(
        netlist,
        slots,
        fabric,
        seed,
        &HashMap::new(),
        &std::collections::HashSet::new(),
    )
}

/// Like [`place`], but `pin_hints` supplies extra tile locations reading or
/// driving a net (e.g. chain-block pins, which are placed before the CLB
/// pass) so IO pads land near *all* consumers of a port, not only slots.
///
/// # Errors
///
/// Same conditions as [`place`].
pub fn place_with_hints(
    netlist: &Netlist,
    slots: &[Slot],
    fabric: &Fabric,
    seed: u64,
    pin_hints: &HashMap<NetId, Vec<(usize, usize)>>,
    pad_averse_tiles: &std::collections::HashSet<(usize, usize)>,
) -> Result<Placement, String> {
    place_with_hints_budgeted(
        netlist,
        slots,
        fabric,
        seed,
        pin_hints,
        pad_averse_tiles,
        &Budget::unlimited(),
    )
}

/// Like [`place_with_hints`], but polls `budget` while annealing. When the
/// budget runs out mid-anneal the best configuration seen so far is kept,
/// IO assignment proceeds normally, and the returned placement carries a
/// [`Placement::degraded`] marker instead of an error — a worse placement
/// beats no placement. With an unlimited budget this is byte-identical to
/// [`place_with_hints`].
///
/// # Errors
///
/// Same conditions as [`place`] (capacity shortages, not budget).
#[allow(clippy::too_many_arguments)]
pub fn place_with_hints_budgeted(
    netlist: &Netlist,
    slots: &[Slot],
    fabric: &Fabric,
    seed: u64,
    pin_hints: &HashMap<NetId, Vec<(usize, usize)>>,
    pad_averse_tiles: &std::collections::HashSet<(usize, usize)>,
    budget: &Budget,
) -> Result<Placement, String> {
    let _span = shell_trace::span!("place.anneal");
    let per_clb = fabric.config().luts_per_clb;
    let capacity = fabric.lut_sites();
    if slots.len() > capacity {
        return Err(format!(
            "{} slots exceed {} LUT sites",
            slots.len(),
            capacity
        ));
    }
    if netlist.inputs().len() + netlist.key_inputs().len() > fabric.io_input_count() {
        return Err("not enough input pads".into());
    }
    if netlist.outputs().len() > fabric.io_output_count() {
        return Err("not enough output pads".into());
    }
    let mut rng = Rng::seed_from_u64(seed);

    // Site list: (x, y, s).
    let site_of = |i: usize| -> (usize, usize, usize) {
        let tile = i / per_clb;
        (tile % fabric.width(), tile / fabric.width(), i % per_clb)
    };
    // slot_at[site] = Some(slot index). Initial placement spreads slots
    // round-robin over tiles: clustering them into the first tiles would
    // swamp those tiles' routing channels before annealing even starts.
    // Chain tiles are skipped first (their tracks belong to the chain pins)
    // and only used when the rest of the grid is full.
    let tiles = fabric.tile_count();
    let mut tile_order: Vec<usize> = (0..tiles).collect();
    tile_order.sort_by_key(|&t| {
        let xy = (t % fabric.width(), t / fabric.width());
        pad_averse_tiles.contains(&xy)
    });
    let mut slot_at: Vec<Option<usize>> = vec![None; capacity];
    for s in 0..slots.len() {
        let tile = tile_order[s % tiles];
        let site = tile * per_clb + (s / tiles);
        slot_at[site] = Some(s);
    }

    // Connectivity: for HPWL we need, per net, the slots touching it.
    // Build net → participating slot indices (+ IO flags handled as fixed
    // boundary pull towards edges, approximated by ignoring them here).
    let mut net_slots: HashMap<NetId, Vec<usize>> = HashMap::new();
    for (si, slot) in slots.iter().enumerate() {
        for &n in &slot.input_nets {
            net_slots.entry(n).or_default().push(si);
        }
        net_slots.entry(slot.output_net).or_default().push(si);
    }
    // Net terminals: movable slot members plus fixed tiles (chain-block
    // pins placed before the CLB pass, passed in as hints).
    let nets: Vec<(Vec<usize>, Vec<(usize, usize)>)> = net_slots
        .iter()
        .map(|(net, members)| {
            let fixed = pin_hints.get(net).cloned().unwrap_or_default();
            (members.clone(), fixed)
        })
        .filter(|(m, f)| m.len() + f.len() > 1)
        .collect();

    // Per-tile distinct input nets of each slot (for the congestion term).
    let channel = fabric.config().channel_width;
    let track_budget = channel.saturating_sub(2).max(1) as f64;
    let hpwl = |positions: &[(usize, usize, usize)]| -> f64 {
        let mut total = 0.0;
        for (members, fixed) in &nets {
            let (mut x0, mut x1, mut y0, mut y1) = (usize::MAX, 0, usize::MAX, 0);
            for &s in members {
                let (x, y, _) = positions[s];
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
            }
            for &(x, y) in fixed {
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
            }
            total += (x1 - x0 + y1 - y0) as f64;
        }
        // Congestion term: every slot pin needs a track at its tile; tiles
        // whose distinct-net demand exceeds the channel budget are strongly
        // penalized — wirelength alone rewards exactly the clustering that
        // makes tiles unroutable.
        let mut tile_nets: HashMap<(usize, usize), std::collections::HashSet<NetId>> =
            HashMap::new();
        for (si, slot) in slots.iter().enumerate() {
            let (x, y, _) = positions[si];
            let entry = tile_nets.entry((x, y)).or_default();
            for &n in &slot.input_nets {
                entry.insert(n);
            }
            // The slot output also claims a track at this tile (its source
            // attachment) whenever anything reads it.
            entry.insert(slot.output_net);
        }
        for demand in tile_nets.values() {
            let overflow = demand.len() as f64 - track_budget;
            if overflow > 0.0 {
                total += overflow * 40.0;
            }
        }
        // Slots on chain tiles compete with the chain's own pin tracks.
        for (si, _) in slots.iter().enumerate() {
            let (x, y, _) = positions[si];
            if pad_averse_tiles.contains(&(x, y)) {
                total += 25.0;
            }
        }
        total
    };

    let mut positions: Vec<(usize, usize, usize)> = vec![(0, 0, 0); slots.len()];
    let rebuild_positions =
        |slot_at: &[Option<usize>], positions: &mut Vec<(usize, usize, usize)>| {
            for (site, s) in slot_at.iter().enumerate() {
                if let Some(s) = s {
                    positions[*s] = site_of(site);
                }
            }
        };
    rebuild_positions(&slot_at, &mut positions);
    let mut cost = hpwl(&positions);

    // Simulated annealing over site swaps.
    let moves = 200 * capacity.max(slots.len()).max(8);
    let mut temperature = (cost / nets.len().max(1) as f64).max(1.0);
    let _ = &nets;
    // Best-so-far snapshot: the walk may sit on an uphill excursion when
    // the budget runs out, so an early exit restores the cheapest
    // configuration seen rather than wherever the anneal happened to be.
    let mut best_slot_at = slot_at.clone();
    let mut best_cost = cost;
    let mut degraded = None;
    let mut moves_done = 0u64;
    for m in 0..moves {
        moves_done += 1;
        if m % 256 == 0 {
            if let Err(why) = budget.checkpoint() {
                degraded = Some(why);
                break;
            }
        }
        let a = rng.gen_range(0..capacity);
        let b = rng.gen_range(0..capacity);
        if a == b || (slot_at[a].is_none() && slot_at[b].is_none()) {
            continue;
        }
        slot_at.swap(a, b);
        rebuild_positions(&slot_at, &mut positions);
        let new_cost = hpwl(&positions);
        let delta = new_cost - cost;
        let accept = delta <= 0.0 || rng.gen_f64() < (-delta / temperature).exp();
        if accept {
            cost = new_cost;
            if cost < best_cost {
                best_cost = cost;
                best_slot_at.clone_from(&slot_at);
            }
        } else {
            slot_at.swap(a, b);
            rebuild_positions(&slot_at, &mut positions);
        }
        if m % 64 == 63 {
            temperature *= 0.9;
        }
    }
    if degraded.is_some() {
        slot_at = best_slot_at;
    }
    rebuild_positions(&slot_at, &mut positions);
    cost = hpwl(&positions);
    shell_trace::counter_add("place.moves", moves_done);
    shell_trace::gauge("place.hpwl", cost);

    // IO assignment: each PI pad near the centroid of its reading slots;
    // each PO pad near its driving slot. Greedy with uniqueness. Input and
    // output pads share one `used` set: pad `i`'s input attaches at the very
    // boundary track node pad `i`'s output reads, so a PI and a PO on the
    // same index would contend for that node forever.
    // Corner tiles expose the same track node through pads of two sides, so
    // uniqueness is tracked per *attachment node*, not per pad index.
    let mut used_nodes: std::collections::HashSet<(usize, usize, usize)> =
        std::collections::HashSet::new();
    let tiles_of = |members: &[usize], net: NetId| -> Vec<(usize, usize)> {
        let mut tiles: Vec<(usize, usize)> = members
            .iter()
            .map(|&m| (positions[m].0, positions[m].1))
            .collect();
        if let Some(hints) = pin_hints.get(&net) {
            tiles.extend(hints.iter().copied());
        }
        tiles
    };
    let mut input_pads = Vec::with_capacity(netlist.inputs().len());
    for &pi in netlist.inputs() {
        let readers: Vec<usize> = net_slots.get(&pi).cloned().unwrap_or_default();
        let tiles = tiles_of(&readers, pi);
        let (cx, cy) = tile_centroid(&tiles, fabric);
        let pad = best_pad(fabric, cx, cy, &used_nodes, pad_averse_tiles, &tiles, &mut rng)
            .ok_or_else(|| "ran out of input pads".to_string())?;
        used_nodes.insert(pad_node(fabric, pad));
        input_pads.push(pad);
    }
    let mut output_pads = Vec::with_capacity(netlist.outputs().len());
    for (_, net) in netlist.outputs() {
        let drivers: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.output_net == *net)
            .map(|(i, _)| i)
            .collect();
        let tiles = tiles_of(&drivers, *net);
        let (cx, cy) = tile_centroid(&tiles, fabric);
        let pad = best_pad(fabric, cx, cy, &used_nodes, pad_averse_tiles, &tiles, &mut rng)
            .ok_or_else(|| "ran out of output pads".to_string())?;
        used_nodes.insert(pad_node(fabric, pad));
        output_pads.push(pad);
    }

    Ok(Placement {
        sites: positions,
        input_pads,
        output_pads,
        hpwl: cost,
        degraded,
    })
}

/// Runs [`place_with_hints`] from `starts` independently derived seeds (in
/// parallel when workers are available) and keeps the lowest-HPWL result.
///
/// Start `i` anneals with seed `base_seed + i·φ64`; start 0 is therefore
/// exactly the single-start placement, so `starts = 1` reproduces
/// [`place_with_hints`] unchanged. The winner is chosen by `(hpwl, start
/// index)` — comparing in start order with a strict `<` makes the earliest
/// start win ties, so the choice does not depend on how the parallel map
/// was scheduled.
///
/// Every start polls the shared `budget`; a start interrupted mid-anneal
/// still competes with its best-so-far configuration (see
/// [`place_with_hints_budgeted`]).
///
/// # Errors
///
/// Returns the first start's error when every start fails.
#[allow(clippy::too_many_arguments)]
pub fn place_multi_start(
    netlist: &Netlist,
    slots: &[Slot],
    fabric: &Fabric,
    base_seed: u64,
    starts: usize,
    pin_hints: &HashMap<NetId, Vec<(usize, usize)>>,
    pad_averse_tiles: &std::collections::HashSet<(usize, usize)>,
    budget: &Budget,
) -> Result<Placement, String> {
    let seeds: Vec<u64> = (0..starts.max(1) as u64)
        .map(|i| base_seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();
    let results = shell_exec::parallel_map(&seeds, |&seed| {
        place_with_hints_budgeted(
            netlist,
            slots,
            fabric,
            seed,
            pin_hints,
            pad_averse_tiles,
            budget,
        )
    });
    let mut best: Option<Placement> = None;
    let mut first_err: Option<String> = None;
    for result in results {
        match result {
            Ok(p) => {
                if best.as_ref().map(|b| p.hpwl < b.hpwl).unwrap_or(true) {
                    best = Some(p);
                }
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        };
    }
    best.ok_or_else(|| first_err.unwrap_or_else(|| "no placement starts".into()))
}

fn tile_centroid(tiles: &[(usize, usize)], fabric: &Fabric) -> (f64, f64) {
    if tiles.is_empty() {
        return (fabric.width() as f64 / 2.0, fabric.height() as f64 / 2.0);
    }
    let (mut sx, mut sy) = (0.0, 0.0);
    for &(x, y) in tiles {
        sx += x as f64;
        sy += y as f64;
    }
    (sx / tiles.len() as f64, sy / tiles.len() as f64)
}

fn pad_node(fabric: &Fabric, pad: usize) -> (usize, usize, usize) {
    match fabric.io_input_attachment(pad).0 {
        shell_fabric::SignalRef::Track { x, y, t } => (x, y, t),
        _ => unreachable!("pads attach to tracks"),
    }
}

fn best_pad(
    fabric: &Fabric,
    cx: f64,
    cy: f64,
    used_nodes: &std::collections::HashSet<(usize, usize, usize)>,
    pad_averse_tiles: &std::collections::HashSet<(usize, usize)>,
    own_tiles: &[(usize, usize)],
    rng: &mut Rng,
) -> Option<usize> {
    // Cap pads per boundary tile at half the channel width so pass-through
    // routing always finds free tracks next to the pads.
    let cap = (fabric.config().channel_width / 2).max(1);
    let mut tile_load: HashMap<(usize, usize), usize> = HashMap::new();
    for &(x, y, _) in used_nodes {
        *tile_load.entry((x, y)).or_insert(0) += 1;
    }
    let mut best: Option<(usize, f64)> = None;
    let mut fallback: Option<(usize, f64)> = None;
    for pad in 0..fabric.io_input_count() {
        let (x, y, t) = pad_node(fabric, pad);
        if used_nodes.contains(&(x, y, t)) {
            continue;
        }
        let mut d = (x as f64 - cx).abs() + (y as f64 - cy).abs();
        // Seed-dependent jitter so retry attempts explore different pad
        // assignments (a deterministic greedy can wall a pad in between two
        // pinned neighbors forever).
        d += rng.gen_f64() * 0.9;
        // A pad on a chain tile burns one of that block's scarce tracks:
        // strongly discourage it for nets that do not sink there.
        if pad_averse_tiles.contains(&(x, y)) && !own_tiles.contains(&(x, y)) {
            d += 1000.0;
        }
        if tile_load.get(&(x, y)).copied().unwrap_or(0) < cap {
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((pad, d));
            }
        } else if fallback.map(|(_, bd)| d < bd).unwrap_or(true) {
            fallback = Some((pad, d));
        }
    }
    best.or(fallback).map(|(p, _)| p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_fabric::FabricConfig;
    use shell_synth::lut_map;

    fn adder_mapped() -> Netlist {
        use shell_netlist::NetlistBuilder;
        let mut b = NetlistBuilder::new("adder");
        let x = b.input_bus("x", 3);
        let y = b.input_bus("y", 3);
        let (s, c) = b.adder(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        lut_map(&b.finish(), 4).expect("acyclic").netlist
    }

    #[test]
    fn pack_adder() {
        let n = adder_mapped();
        let slots = pack(&n, 4).expect("packable");
        assert!(!slots.is_empty());
        for s in &slots {
            assert!(s.input_nets.len() <= 4);
        }
    }

    #[test]
    fn pack_fuses_single_fanout_dff() {
        let mut n = Netlist::new("r");
        let a = n.add_input("a");
        let l = n.add_cell("l", CellKind::Lut(LutMask::new(0b01, 1)), vec![a]);
        let q = n.add_cell("q", CellKind::Dff, vec![l]);
        n.add_output("q", q);
        let slots = pack(&n, 4).expect("packable");
        assert_eq!(slots.len(), 1);
        assert!(slots[0].registered);
        assert!(matches!(
            slots[0].content,
            SlotContent::Lut { dff_cell: Some(_), .. }
        ));
    }

    #[test]
    fn pack_standalone_dff_gets_identity_slot() {
        let mut n = Netlist::new("r2");
        let a = n.add_input("a");
        // DFF fed directly by a PI.
        let q = n.add_cell("q", CellKind::Dff, vec![a]);
        n.add_output("q", q);
        let slots = pack(&n, 4).expect("packable");
        assert_eq!(slots.len(), 1);
        assert!(matches!(slots[0].content, SlotContent::Reg { .. }));
        // Identity mask: rows with bit0 set are 1.
        for row in 0..16u64 {
            let expect = row & 1 == 1;
            assert_eq!((slots[0].mask >> row) & 1 == 1, expect);
        }
    }

    #[test]
    fn pack_dff_not_fused_when_lut_has_other_readers() {
        let mut n = Netlist::new("r3");
        let a = n.add_input("a");
        let l = n.add_cell("l", CellKind::Lut(LutMask::new(0b01, 1)), vec![a]);
        let q = n.add_cell("q", CellKind::Dff, vec![l]);
        n.add_output("q", q);
        n.add_output("comb", l); // second reader
        let slots = pack(&n, 4).expect("packable");
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn pack_rejects_random_logic() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::And, vec![a, b]);
        n.add_output("f", f);
        assert!(pack(&n, 4).is_err());
    }

    #[test]
    fn pack_rejects_oversized_lut() {
        let mut n = Netlist::new("big");
        let ins: Vec<NetId> = (0..6).map(|i| n.add_input(format!("i{i}"))).collect();
        let f = n.add_cell("f", CellKind::Lut(LutMask::new(0, 6)), ins);
        n.add_output("f", f);
        assert!(pack(&n, 4).is_err());
    }

    #[test]
    fn place_assigns_unique_sites_and_pads() {
        let n = adder_mapped();
        let slots = pack(&n, 4).unwrap();
        let tiles = slots.len().div_ceil(4).max(2);
        let side = (tiles as f64).sqrt().ceil() as usize;
        let f = Fabric::generate(FabricConfig::fabulous_style(false), side + 1, side + 1);
        let p = place(&n, &slots, &f, 42).expect("placeable");
        // Unique sites.
        let mut seen = std::collections::HashSet::new();
        for &s in &p.sites {
            assert!(seen.insert(s), "duplicate site {s:?}");
        }
        // Unique pads.
        let mut ip = std::collections::HashSet::new();
        for &pad in &p.input_pads {
            assert!(ip.insert(pad));
        }
        let mut op = std::collections::HashSet::new();
        for &pad in &p.output_pads {
            assert!(op.insert(pad));
        }
        assert_eq!(p.input_pads.len(), n.inputs().len());
        assert_eq!(p.output_pads.len(), n.outputs().len());
    }

    #[test]
    fn place_deterministic_per_seed() {
        let n = adder_mapped();
        let slots = pack(&n, 4).unwrap();
        let f = Fabric::generate(FabricConfig::fabulous_style(false), 4, 4);
        let p1 = place(&n, &slots, &f, 7).unwrap();
        let p2 = place(&n, &slots, &f, 7).unwrap();
        assert_eq!(p1.sites, p2.sites);
        assert_eq!(p1.input_pads, p2.input_pads);
    }

    #[test]
    fn cancelled_budget_degrades_but_still_places() {
        let n = adder_mapped();
        let slots = pack(&n, 4).unwrap();
        let f = Fabric::generate(FabricConfig::fabulous_style(false), 4, 4);
        let budget = Budget::unlimited();
        budget.cancel();
        let p = place_with_hints_budgeted(
            &n,
            &slots,
            &f,
            7,
            &HashMap::new(),
            &std::collections::HashSet::new(),
            &budget,
        )
        .expect("a degraded placement is still a placement");
        assert_eq!(p.degraded, Some(Exhausted::Cancelled));
        assert_eq!(p.sites.len(), slots.len());
        let mut seen = std::collections::HashSet::new();
        for &s in &p.sites {
            assert!(seen.insert(s), "duplicate site {s:?}");
        }
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_placement() {
        let n = adder_mapped();
        let slots = pack(&n, 4).unwrap();
        let f = Fabric::generate(FabricConfig::fabulous_style(false), 4, 4);
        let p1 = place(&n, &slots, &f, 7).unwrap();
        let p2 = place_with_hints_budgeted(
            &n,
            &slots,
            &f,
            7,
            &HashMap::new(),
            &std::collections::HashSet::new(),
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(p1.sites, p2.sites);
        assert_eq!(p1.degraded, None);
        assert_eq!(p2.degraded, None);
    }

    #[test]
    fn place_fails_on_tiny_fabric() {
        let n = adder_mapped();
        let slots = pack(&n, 4).unwrap();
        let f = Fabric::generate(FabricConfig::fabulous_style(false), 1, 1);
        if slots.len() > 4 {
            assert!(place(&n, &slots, &f, 0).is_err());
        }
    }

    #[test]
    fn pad_mask_extension() {
        // XOR2 padded to 4 pins ignores pins 2,3.
        let m = pad_mask(LutMask::new(0b0110, 2), 4);
        for row in 0..16u64 {
            let expect = ((row & 1) ^ ((row >> 1) & 1)) == 1;
            assert_eq!((m >> row) & 1 == 1, expect, "row {row}");
        }
    }
}
