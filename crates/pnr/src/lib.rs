//! Place and route for the modeled eFPGA fabrics (the VPR/nextPNR stand-in).
//!
//! Steps 6–7 of the SheLL flow map synthesized sub-circuits onto a fabric
//! and check the fit, expanding the fabric when placement or routing fails.
//! This crate implements that pipeline from scratch:
//!
//! * [`place`] — packing of LUT/DFF cells into CLB slots, simulated-annealing
//!   placement minimizing half-perimeter wirelength, and boundary IO pad
//!   assignment,
//! * [`route`] — a PathFinder-style negotiated-congestion router over the
//!   fabric's track graph (one signal per track node, history + present
//!   congestion costs, rip-up and re-route iterations),
//! * [`flow`] — the complete flows:
//!   [`flow::place_and_route`] for LUT-mapped (LGC) netlists, and
//!   [`flow::place_and_route_with_chains`] for ROUTE netlists whose mux
//!   cascades map onto the FABulous-style chain blocks; both emit a
//!   [`shell_fabric::Bitstream`] and are verified by comparing
//!   [`shell_fabric::to_configured_netlist`] against the input netlist, and
//!   both include the fit-check/expand loop of step 7.

pub mod flow;
pub mod place;
pub mod route;

pub use flow::{place_and_route, place_and_route_with_chains, PnrError, PnrOptions, PnrResult};
pub use place::{Placement, Slot, SlotContent};
pub use route::{RouteError, RouteRequest, Router, SinkKind, SourceKind};
