//! The complete place-and-route flows with the fit-check/expand loop
//! (steps 6–7 of the SheLL pipeline), bitstream emission and functional
//! verification.

use crate::place::{self, Slot};
use crate::route::{RouteError, RouteRequest, Router, SinkKind, SourceKind};
use shell_fabric::{Bitstream, Fabric, FabricConfig, FabricUsage, IoMap};
use shell_guard::Budget;
use shell_netlist::equiv::{
    equiv, equiv_exhaustive, equiv_random, equiv_sequential_random, sat_backend_installed,
    EquivResult, Method,
};
use shell_netlist::{CellId, CellKind, NetId, Netlist};
use shell_synth::lut_map_hybrid;
use std::collections::HashMap;
use std::fmt;

/// Options of the PnR flows.
#[derive(Debug, Clone)]
pub struct PnrOptions {
    /// Seed for the annealer.
    pub seed: u64,
    /// Negotiated-congestion iterations per routing attempt.
    pub max_route_iterations: usize,
    /// Fabric expansion attempts (step 7 retries).
    pub max_fit_attempts: usize,
    /// Independent annealing starts per placement; the lowest-HPWL start
    /// wins ([`place::place_multi_start`]). Starts run in parallel when
    /// workers are available, so extra starts are close to free on
    /// multi-core machines; `1` reproduces the single-start flow.
    pub place_starts: usize,
    /// Verify the configured fabric against the input netlist.
    pub verify: bool,
    /// Lower bound `(w, h)` on the fabric dimensions. The fit loop derives
    /// its starting size from demand and clamps it to this floor, so a
    /// sweep can ask for deliberately oversized arrays (more unused tiles →
    /// more configuration bits → a bigger post-shrink key). The structural
    /// minimum of 2×2 always applies.
    pub min_dims: (usize, usize),
    /// Shared resource budget. Placement polls it and degrades to its
    /// best-so-far configuration; routing and the fit loop abort with
    /// [`PnrError::Exhausted`]. Defaults to [`Budget::from_env`], so
    /// `SHELL_DEADLINE_MS` bounds a whole flow end to end.
    pub budget: Budget,
}

impl Default for PnrOptions {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            max_route_iterations: 96,
            max_fit_attempts: 18,
            place_starts: 2,
            verify: true,
            min_dims: (2, 2),
            budget: Budget::from_env(),
        }
    }
}

/// Errors of the PnR flows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PnrError {
    /// The netlist contains cells the target flow cannot map.
    Unsupported(String),
    /// Packing failed.
    Pack(String),
    /// No fabric size within the attempt budget could fit the design.
    DoesNotFit(String),
    /// A net could not be routed legally within the iteration limit; the
    /// fit loop treats this as congestion and expands the fabric, so it
    /// only escapes when every size within the attempt budget failed.
    Unroutable(String),
    /// The shared [`Budget`] ran out (deadline, quota or cancellation)
    /// before the flow could finish; retrying without more budget is
    /// pointless, so the fit loop aborts immediately.
    Exhausted(String),
    /// The configured fabric does not match the input netlist.
    VerificationFailed(String),
}

impl fmt::Display for PnrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PnrError::Unsupported(m) => write!(f, "unsupported input: {m}"),
            PnrError::Pack(m) => write!(f, "packing failed: {m}"),
            PnrError::DoesNotFit(m) => write!(f, "design does not fit: {m}"),
            PnrError::Unroutable(m) => write!(f, "unroutable: {m}"),
            PnrError::Exhausted(m) => write!(f, "budget exhausted: {m}"),
            PnrError::VerificationFailed(m) => write!(f, "verification failed: {m}"),
        }
    }
}

impl std::error::Error for PnrError {}

/// Result of a successful PnR run.
#[derive(Debug, Clone)]
pub struct PnrResult {
    /// The (possibly expanded) fabric the design fits in.
    pub fabric: Fabric,
    /// The programming bitstream (used bits marked).
    pub bitstream: Bitstream,
    /// Port-to-pad binding.
    pub io_map: IoMap,
    /// CLB slots used.
    pub slots_used: usize,
    /// Chain elements carrying mapped muxes.
    pub chain_elements_used: usize,
    /// Tiles with at least one used slot, chain element or routed track.
    pub tiles_used: usize,
    /// `tiles_used / fabric.tile_count()` — the Fig. 2 utilization metric.
    pub utilization: f64,
    /// Router iterations of the final attempt.
    pub route_iterations: usize,
    /// Track nodes occupied.
    pub wirelength: usize,
    /// Fit attempts consumed (1 = first size fit).
    pub fit_attempts: usize,
    /// Usage counters for Table I-style resource accounting.
    pub usage: FabricUsage,
    /// Stages that ran out of budget but produced a usable (if lower
    /// quality) result anyway, e.g. `"place: deadline"`. Empty for a
    /// full-quality run.
    pub degraded: Vec<String>,
}

/// Maps a LUT-mapped (LGC) netlist onto a fabric: pack → place → route →
/// bitstream, growing the fabric until everything fits.
///
/// # Errors
///
/// See [`PnrError`]. Key-locked netlists are rejected (the key of an
/// eFPGA-redacted design *is* the bitstream).
pub fn place_and_route(
    netlist: &Netlist,
    config: FabricConfig,
    options: &PnrOptions,
) -> Result<PnrResult, PnrError> {
    if !netlist.key_inputs().is_empty() {
        return Err(PnrError::Unsupported(
            "netlist has key inputs; map the unlocked design".into(),
        ));
    }
    let slots = place::pack(netlist, config.lut_k).map_err(PnrError::Pack)?;
    run_fit_loop(netlist, &slots, &[], config, options)
}

/// A mux cell assigned to a chain element.
#[derive(Debug, Clone)]
struct ChainAssignment {
    /// Chains: each a list of mux cells, head (deepest) first. Every chain
    /// occupies one or more whole chain blocks.
    chains: Vec<Vec<CellId>>,
}

/// Maps a mixed ROUTE+LGC netlist: mux cascades go to the fabric's chain
/// blocks, the remaining logic is LUT-mapped into CLBs (SheLL's dual
/// synthesis, steps 5–6).
///
/// The input is any combinational/sequential netlist; it is hybrid-mapped
/// first ([`shell_synth::lut_map_hybrid`]).
///
/// # Errors
///
/// See [`PnrError`]. Requires a chain-enabled fabric config.
pub fn place_and_route_with_chains(
    netlist: &Netlist,
    config: FabricConfig,
    options: &PnrOptions,
) -> Result<PnrResult, PnrError> {
    if !netlist.key_inputs().is_empty() {
        return Err(PnrError::Unsupported(
            "netlist has key inputs; map the unlocked design".into(),
        ));
    }
    if !config.mux_chains {
        return Err(PnrError::Unsupported(
            "chain mapping needs a chain-enabled fabric".into(),
        ));
    }
    let hybrid = lut_map_hybrid(netlist, config.lut_k)
        .map_err(|e| PnrError::Unsupported(e.to_string()))?
        .netlist;
    // Partition: mux cells → chains; everything else → slots.
    let mux_cells: Vec<CellId> = hybrid
        .cells()
        .filter(|(_, c)| c.kind.is_mux())
        .map(|(id, _)| id)
        .collect();
    let chains = link_chains(&hybrid, &mux_cells);
    let slots = pack_non_mux(&hybrid, config.lut_k).map_err(PnrError::Pack)?;
    let assignment = ChainAssignment { chains };
    let result = run_fit_loop_hybrid(&hybrid, netlist, &slots, &assignment, config, options)?;
    Ok(result)
}

/// Groups mux cells into linear chains: a cell's `d0`-side input that is a
/// single-fanout mux becomes its predecessor. Chains are returned head
/// (deepest element) first.
fn link_chains(netlist: &Netlist, mux_cells: &[CellId]) -> Vec<Vec<CellId>> {
    let fanout = netlist.fanout_table();
    let is_mux_cell: std::collections::HashSet<CellId> = mux_cells.iter().copied().collect();
    // predecessor via the d0-position input: Mux4 pin 2, Mux2 pin 1.
    let link_pin = |kind: CellKind| match kind {
        CellKind::Mux4 => 2usize,
        CellKind::Mux2 => 1usize,
        _ => unreachable!(),
    };
    let mut pred: HashMap<CellId, CellId> = HashMap::new();
    let mut has_succ: std::collections::HashSet<CellId> = std::collections::HashSet::new();
    for &cid in mux_cells {
        let c = netlist.cell(cid);
        let d0 = c.inputs[link_pin(c.kind)];
        if netlist.is_primary_output(d0) {
            continue;
        }
        let Some(drv) = netlist.net(d0).driver else {
            continue;
        };
        if !is_mux_cell.contains(&drv) || has_succ.contains(&drv) {
            continue;
        }
        if fanout[d0.index()].len() != 1 {
            continue;
        }
        pred.insert(cid, drv);
        has_succ.insert(drv);
    }
    // Tails: cells that are nobody's predecessor target... walk from cells
    // with no successor backwards.
    let mut chains = Vec::new();
    for &cid in mux_cells {
        if has_succ.contains(&cid) {
            continue; // interior or head of someone's chain
        }
        // cid is a tail; walk predecessors to the head.
        let mut chain = vec![cid];
        let mut cur = cid;
        while let Some(&p) = pred.get(&cur) {
            chain.push(p);
            cur = p;
        }
        chain.reverse(); // head (deepest) first
        chains.push(chain);
    }
    chains
}

/// Packs every non-mux cell (LUT/DFF/Const) of a hybrid netlist.
fn pack_non_mux(netlist: &Netlist, k: usize) -> Result<Vec<Slot>, String> {
    // Reuse place::pack on a filtered view: pack() walks cells directly, so
    // emulate by checking kinds here and calling the slot constructor logic
    // through a temporary netlist is overkill — instead, duplicate the loop
    // via place::pack on the full netlist minus muxes. Easiest correct
    // route: error from pack() on mux cells is avoided by a pre-filter.
    place::pack_filtered(netlist, k, |kind| !kind.is_mux())
}

// ----------------------------------------------------------------------
// Shared fit loop
// ----------------------------------------------------------------------

fn initial_dims(
    config: &FabricConfig,
    slots: usize,
    chain_blocks: usize,
    ports: usize,
    min_dims: (usize, usize),
) -> (usize, usize) {
    let tiles_for_slots = slots.div_ceil(config.luts_per_clb.max(1));
    let tiles = tiles_for_slots.max(chain_blocks).max(1);
    let mut w = (tiles as f64).sqrt().ceil() as usize;
    let mut h = tiles.div_ceil(w);
    // A single row/column fabric cannot change track indices (the rotation
    // needs vertical hops) — start at 2x2 minimum, and make sure the
    // perimeter offers pad headroom (2 boundary nodes per port). The
    // caller-provided floor stacks on top of the structural minimum.
    w = w.max(2).max(min_dims.0);
    h = h.max(2).max(min_dims.1);
    while config.channel_width * 2 * (w + h) < 3 * ports {
        if w <= h {
            w += 1;
        } else {
            h += 1;
        }
    }
    (w, h)
}

fn run_fit_loop(
    netlist: &Netlist,
    slots: &[Slot],
    _unused: &[()],
    config: FabricConfig,
    options: &PnrOptions,
) -> Result<PnrResult, PnrError> {
    let empty = ChainAssignment { chains: Vec::new() };
    run_fit_loop_hybrid(netlist, netlist, slots, &empty, config, options)
}

/// The shared engine: `mapped` is the netlist whose cells are being placed
/// (slots + chains); `reference` is the netlist to verify against (the
/// original design in the chain flow, `mapped` itself otherwise).
fn run_fit_loop_hybrid(
    mapped: &Netlist,
    reference: &Netlist,
    slots: &[Slot],
    assignment: &ChainAssignment,
    config: FabricConfig,
    options: &PnrOptions,
) -> Result<PnrResult, PnrError> {
    let _span = shell_trace::span!("pnr.fit");
    let chain_blocks: usize = assignment
        .chains
        .iter()
        .map(|c| c.len().div_ceil(config.chain_len.max(1)))
        .sum();
    let ports = mapped.inputs().len() + mapped.outputs().len();
    let (mut w, mut h) =
        initial_dims(&config, slots.len(), chain_blocks, ports, options.min_dims);
    let mut last_err = String::new();
    let mut last_unroutable = false;
    for attempt in 1..=options.max_fit_attempts {
        options
            .budget
            .checkpoint()
            .map_err(|why| PnrError::Exhausted(format!("fit loop: {why}")))?;
        let _attempt_span = shell_trace::span!("pnr.fit_attempt", attempt = attempt);
        shell_trace::counter_add("pnr.fit_attempts", 1);
        let fabric = Fabric::generate(config.clone(), w, h);
        if std::env::var("PNR_DEBUG").is_ok() {
            eprintln!("attempt {attempt}: {}x{}", fabric.width(), fabric.height());
        }
        match try_once(mapped, slots, assignment, &fabric, options, attempt) {
            Ok(mut result) => {
                if options.verify {
                    verify(reference, &result)?;
                }
                result.fit_attempts = attempt;
                return Ok(result);
            }
            Err(err @ (PnrError::DoesNotFit(_) | PnrError::Unroutable(_))) => {
                last_unroutable = matches!(err, PnrError::Unroutable(_));
                let (PnrError::DoesNotFit(m) | PnrError::Unroutable(m)) = err else {
                    unreachable!()
                };
                // The paper's footnote 5: the *type* of shortage reported by
                // the mapping tool drives how the fabric is expanded.
                // Capacity shortages (chain blocks, LUT sites, pads) need
                // area — grow both dimensions; routing congestion
                // (including a flat-out unroutable net) needs
                // perimeter/relief — grow the smaller dimension, with
                // acceleration for port-heavy designs.
                let capacity_shortage = m.contains("chain blocks")
                    || m.contains("LUT sites")
                    || m.contains("pads");
                last_err = m;
                let step = 1 + attempt / 6;
                if capacity_shortage {
                    w += step;
                    h += step;
                } else if w <= h {
                    w += step;
                } else {
                    h += step;
                }
            }
            Err(other) => return Err(other),
        }
    }
    let msg = format!(
        "gave up after {} attempts: {last_err}",
        options.max_fit_attempts
    );
    Err(if last_unroutable {
        PnrError::Unroutable(msg)
    } else {
        PnrError::DoesNotFit(msg)
    })
}

fn try_once(
    mapped: &Netlist,
    slots: &[Slot],
    assignment: &ChainAssignment,
    fabric: &Fabric,
    options: &PnrOptions,
    attempt: usize,
) -> Result<PnrResult, PnrError> {
    let config = fabric.config().clone();
    // Chain block capacity check.
    let blocks_needed: usize = assignment
        .chains
        .iter()
        .map(|c| c.len().div_ceil(config.chain_len.max(1)))
        .sum();
    if blocks_needed > fabric.tile_count() && config.mux_chains {
        return Err(PnrError::DoesNotFit(format!(
            "{blocks_needed} chain blocks > {} tiles",
            fabric.tile_count()
        )));
    }
    // Chain segment assignment first (placement-independent): fill tiles
    // row-major so pad assignment can aim at the chain pins.
    #[derive(Debug, Clone)]
    struct ElementSite {
        x: usize,
        y: usize,
        j: usize,
        /// Index of the segment-final element in this tile's block
        /// (elements after it are transparent fill).
        last_j: usize,
    }
    let mut element_sites: HashMap<CellId, ElementSite> = HashMap::new();
    let mut used_blocks: Vec<(usize, usize)> = Vec::new(); // tiles hosting segments
    {
        // Demand-aware segmentation: a block's pins (data + dynamic selects)
        // all arrive over the tile's tracks, so the distinct nets a segment
        // pulls in must leave track headroom. Split segments greedily.
        let track_budget = config.channel_width.saturating_sub(4).max(2);
        let mut next_tile = 0usize;
        for chain in &assignment.chains {
            let mut segments: Vec<Vec<CellId>> = Vec::new();
            let mut current: Vec<CellId> = Vec::new();
            let mut demand: std::collections::HashSet<NetId> = std::collections::HashSet::new();
            for &cell in chain {
                let c = mapped.cell(cell);
                let mut cell_nets: Vec<NetId> = Vec::new();
                match c.kind {
                    CellKind::Mux4 => {
                        // d0 is hard-wired except at a segment start.
                        if current.is_empty() {
                            cell_nets.push(c.inputs[2]);
                        }
                        cell_nets.extend([c.inputs[3], c.inputs[4], c.inputs[5]]);
                        for s in [c.inputs[0], c.inputs[1]] {
                            if net_constant(mapped, s).is_none() {
                                cell_nets.push(s);
                            }
                        }
                    }
                    CellKind::Mux2 => {
                        if current.is_empty() {
                            cell_nets.push(c.inputs[1]);
                        }
                        cell_nets.push(c.inputs[2]);
                        if net_constant(mapped, c.inputs[0]).is_none() {
                            cell_nets.push(c.inputs[0]);
                        }
                    }
                    _ => unreachable!(),
                }
                let mut trial = demand.clone();
                trial.extend(cell_nets.iter().copied());
                let over_budget = trial.len() > track_budget;
                let over_length = current.len() >= config.chain_len.max(1);
                if (over_budget || over_length) && !current.is_empty() {
                    segments.push(std::mem::take(&mut current));
                    demand.clear();
                    // Re-account for this cell as a segment head (d0 now
                    // arrives over a track).
                    let c = mapped.cell(cell);
                    match c.kind {
                        CellKind::Mux4 => {
                            demand.insert(c.inputs[2]);
                            demand.extend([c.inputs[3], c.inputs[4], c.inputs[5]]);
                            for s in [c.inputs[0], c.inputs[1]] {
                                if net_constant(mapped, s).is_none() {
                                    demand.insert(s);
                                }
                            }
                        }
                        CellKind::Mux2 => {
                            demand.insert(c.inputs[1]);
                            demand.insert(c.inputs[2]);
                            if net_constant(mapped, c.inputs[0]).is_none() {
                                demand.insert(c.inputs[0]);
                            }
                        }
                        _ => unreachable!(),
                    }
                } else {
                    demand = trial;
                }
                current.push(cell);
            }
            if !current.is_empty() {
                segments.push(current);
            }
            for seg in segments {
                if next_tile >= fabric.tile_count() {
                    return Err(PnrError::DoesNotFit("out of chain blocks".into()));
                }
                let (x, y) = (next_tile % fabric.width(), next_tile / fabric.width());
                used_blocks.push((x, y));
                let last_j = seg.len() - 1;
                for (j, &cell) in seg.iter().enumerate() {
                    element_sites.insert(cell, ElementSite { x, y, j, last_j });
                }
                next_tile += 1;
            }
        }
    }
    // Pin hints: every net a chain element reads or drives is anchored at
    // its tile, steering the pad assignment toward the chain blocks.
    let mut pin_hints: HashMap<NetId, Vec<(usize, usize)>> = HashMap::new();
    for (&cell, site) in &element_sites {
        let c = mapped.cell(cell);
        for &n in &c.inputs {
            pin_hints.entry(n).or_default().push((site.x, site.y));
        }
        pin_hints
            .entry(c.output)
            .or_default()
            .push((site.x, site.y));
    }

    // Placement. Chain tiles are pad-averse: a foreign pad on a chain tile
    // burns a track the block's pins need.
    let chain_tiles: std::collections::HashSet<(usize, usize)> =
        used_blocks.iter().copied().collect();
    let placement = place::place_multi_start(
        mapped,
        slots,
        fabric,
        options.seed + attempt as u64,
        options.place_starts,
        &pin_hints,
        &chain_tiles,
        &options.budget,
    )
    .map_err(PnrError::DoesNotFit)?;
    let mut degraded = Vec::new();
    if let Some(why) = placement.degraded {
        degraded.push(format!("place: {why}"));
    }

    // ------------------------------------------------------------------
    // Build route requests.
    // ------------------------------------------------------------------
    // Net sources.
    let mut source_of: HashMap<NetId, SourceKind> = HashMap::new();
    for (i, &pi) in mapped.inputs().iter().enumerate() {
        source_of.insert(pi, SourceKind::Pad(placement.input_pads[i]));
    }
    for (si, slot) in slots.iter().enumerate() {
        let (x, y, s) = placement.sites[si];
        source_of.insert(slot.output_net, SourceKind::Slot { x, y, slot: s });
    }
    // Chain outputs: only segment-final elements are visible, as the block
    // output (after transparent fill elements).
    let mut internal_chain_nets: std::collections::HashSet<NetId> =
        std::collections::HashSet::new();
    for (&cell, site) in &element_sites {
        let c = mapped.cell(cell);
        if site.j == site.last_j {
            source_of.insert(c.output, SourceKind::ChainBlock { x: site.x, y: site.y });
        } else {
            internal_chain_nets.insert(c.output);
        }
    }

    // Net sinks, dedup per (net, tile) for pin sinks.
    let mut sinks_of: HashMap<NetId, Vec<SinkKind>> = HashMap::new();
    let mut pin_tiles: HashMap<NetId, std::collections::HashSet<(usize, usize)>> =
        HashMap::new();
    let mut add_pin_sink = |net: NetId, x: usize, y: usize| {
        if internal_chain_nets.contains(&net) {
            return; // hard-wired inside a block
        }
        if pin_tiles.entry(net).or_default().insert((x, y)) {
            sinks_of
                .entry(net)
                .or_default()
                .push(SinkKind::AnyTrackAt { x, y });
        }
    };
    for (si, slot) in slots.iter().enumerate() {
        let (x, y, _) = placement.sites[si];
        for &net in &slot.input_nets {
            add_pin_sink(net, x, y);
        }
    }
    // Chain element pins: data pins (except hard-wired) and dynamic selects.
    // Iterate in cell order: the per-net sink lists feed the router, whose
    // results depend on sink order — hash order here would make bitstreams
    // nondeterministic for a fixed seed.
    let mut ordered_elements: Vec<(CellId, &ElementSite)> =
        element_sites.iter().map(|(&c, s)| (c, s)).collect();
    ordered_elements.sort_unstable_by_key(|&(c, _)| c);
    for &(cell, site) in &ordered_elements {
        let c = mapped.cell(cell);
        let data_nets: Vec<Option<NetId>> = match c.kind {
            // Mux4 netlist order [s1, s0, d0..d3] → element data pins 0..3.
            CellKind::Mux4 => vec![
                Some(c.inputs[2]),
                Some(c.inputs[3]),
                Some(c.inputs[4]),
                Some(c.inputs[5]),
            ],
            // Mux2 [s, a, b] → d0 = a, d1 = b.
            CellKind::Mux2 => vec![Some(c.inputs[1]), Some(c.inputs[2]), None, None],
            _ => unreachable!(),
        };
        for (pin, net) in data_nets.iter().enumerate() {
            let Some(net) = net else { continue };
            if site.j > 0 && pin == 0 {
                continue; // hard-wired to the previous element
            }
            add_pin_sink(*net, site.x, site.y);
        }
        let select_nets: Vec<Option<NetId>> = match c.kind {
            CellKind::Mux4 => vec![Some(c.inputs[1]), Some(c.inputs[0])], // [s0, s1]
            CellKind::Mux2 => vec![Some(c.inputs[0]), None],
            _ => unreachable!(),
        };
        for net in select_nets.into_iter().flatten() {
            if net_constant(mapped, net).is_none() {
                add_pin_sink(net, site.x, site.y);
            }
        }
    }
    // Primary outputs.
    for (oi, (_, net)) in mapped.outputs().iter().enumerate() {
        sinks_of.entry(*net).or_default().push(SinkKind::OutputPad {
            pad: placement.output_pads[oi],
        });
    }

    // Assemble requests (nets with sinks and a source), in net order: the
    // router's initial pass routes against growing occupancy, so request
    // order steers every downstream decision and must not be hash order.
    let mut requests = Vec::new();
    let mut net_ids: Vec<NetId> = Vec::new();
    let mut ordered_nets: Vec<(&NetId, &Vec<SinkKind>)> = sinks_of.iter().collect();
    ordered_nets.sort_unstable_by_key(|&(net, _)| *net);
    for (net, sinks) in ordered_nets {
        if sinks.is_empty() {
            continue;
        }
        let Some(&source) = source_of.get(net) else {
            // Constants are generated by slots already; a sink on a net
            // without source means the net is a constant-driver net handled
            // by its const slot, or floating — reject.
            if net_constant(mapped, *net).is_some() {
                continue; // consts handled at the consuming pin
            }
            return Err(PnrError::Unsupported(format!(
                "net `{}` has no mappable source",
                mapped.net(*net).name
            )));
        };
        let id = requests.len();
        net_ids.push(*net);
        requests.push(RouteRequest {
            net: id,
            source,
            sinks: sinks.clone(),
        });
    }

    // Route.
    let mut router = Router::new(fabric);
    let routing = router
        .route_all_budgeted(&requests, options.max_route_iterations, &options.budget)
        .map_err(|e| match e {
            RouteError::Unroutable { net } => PnrError::Unroutable(format!(
                "net `{}`",
                mapped.net(net_ids[net]).name
            )),
            RouteError::Exhausted(why) => PnrError::Exhausted(format!("route: {why}")),
        })?;

    // Track lookup: (net, tile) → track index carrying it.
    let mut track_at: HashMap<(NetId, (usize, usize)), usize> = HashMap::new();
    for (rid, routed) in &routing.nets {
        let net = net_ids[*rid];
        for &(x, y, t) in routed.nodes.keys() {
            track_at.entry((net, (x, y))).or_insert(t);
        }
    }

    // ------------------------------------------------------------------
    // Emit the bitstream.
    // ------------------------------------------------------------------
    let mut bs = Bitstream::zeros(fabric.config_bit_count());
    // Routed switches.
    for (rid, routed) in &routing.nets {
        let _ = rid;
        for (&(x, y, t), &sel) in &routed.nodes {
            let (base, width) = fabric.track_select_field(x, y, t);
            bs.set_field(base, width, sel as u64);
        }
    }
    // Slots.
    for (si, slot) in slots.iter().enumerate() {
        let (x, y, s) = placement.sites[si];
        let mut first_used_track = None;
        for (pin, &net) in slot.input_nets.iter().enumerate() {
            let t = resolve_pin_track(mapped, &track_at, net, (x, y)).ok_or_else(|| {
                PnrError::DoesNotFit(format!(
                    "pin net `{}` missing at tile ({x},{y})",
                    mapped.net(net).name
                ))
            })?;
            first_used_track.get_or_insert(t);
            let (base, width) = fabric.clb_input_field(x, y, s, pin);
            bs.set_field(base, width, t as u64);
        }
        // Unused pins must not point at a track carrying this slot's own
        // output (the mask ignores them functionally, but the LUT read tree
        // would close a structural loop). A track already feeding a used
        // pin is provably upstream; otherwise pick any track not carrying
        // the slot's output.
        let own_tracks: std::collections::HashSet<usize> = routing
            .nets
            .iter()
            .filter(|(rid, _)| net_ids[**rid] == slot.output_net)
            .flat_map(|(_, routed)| {
                routed
                    .nodes
                    .keys()
                    .filter(|&&(nx, ny, _)| nx == x && ny == y)
                    .map(|&(_, _, t)| t)
            })
            .collect();
        let safe_track = first_used_track.unwrap_or_else(|| {
            (0..config.channel_width)
                .find(|t| !own_tracks.contains(t))
                .unwrap_or(0)
        });
        for pin in slot.input_nets.len()..config.lut_k {
            let (base, width) = fabric.clb_input_field(x, y, s, pin);
            for b in 0..width {
                bs.set_unused(base + b, (safe_track >> b) & 1 == 1);
            }
        }
        let mask_base = fabric.lut_mask_base(x, y, s);
        for row in 0..config.bits_per_lut() {
            bs.set(mask_base + row, (slot.mask >> row) & 1 == 1);
        }
        // The FF-bypass bit is secret only when the register path is live;
        // step 8 physically removes unused FFs, so unregistered slots tie
        // the bypass to the combinational path.
        if slot.registered {
            bs.set(fabric.ff_bypass_bit(x, y, s), true);
        } else {
            bs.set_unused(fabric.ff_bypass_bit(x, y, s), false);
        }
    }
    // Chain elements.
    let mut chain_elements_used = 0usize;
    for (&cell, site) in &element_sites {
        chain_elements_used += 1;
        let c = mapped.cell(cell);
        let (x, y, j) = (site.x, site.y, site.j);
        let data_nets: Vec<Option<NetId>> = match c.kind {
            CellKind::Mux4 => vec![
                Some(c.inputs[2]),
                Some(c.inputs[3]),
                Some(c.inputs[4]),
                Some(c.inputs[5]),
            ],
            CellKind::Mux2 => vec![Some(c.inputs[1]), Some(c.inputs[2]), None, None],
            _ => unreachable!(),
        };
        let mut first_data_track: Option<usize> = None;
        for (pin, net) in data_nets.iter().enumerate() {
            if j > 0 && pin == 0 {
                continue; // hard-wired
            }
            let (base, width) = fabric.chain_data_field(x, y, j, pin);
            match net {
                Some(net) if !internal_chain_nets.contains(net) => {
                    let t = resolve_pin_track(mapped, &track_at, *net, (x, y))
                        .ok_or_else(|| {
                            PnrError::DoesNotFit(format!(
                                "chain data net `{}` missing at ({x},{y})",
                                mapped.net(*net).name
                            ))
                        })?;
                    first_data_track.get_or_insert(t);
                    bs.set_field(base, width, t as u64);
                }
                _ => {
                    // Unused data pin: point it at a track already feeding a
                    // real pin (provably upstream — never a structural
                    // loop through the element's own block output).
                    let safe = first_data_track.unwrap_or(0);
                    for b in 0..width {
                        bs.set_unused(base + b, (safe >> b) & 1 == 1);
                    }
                }
            }
        }
        // Selects: netlist [s1, s0] → element select pins [0] = s0, [1] = s1.
        let sel_nets: [Option<NetId>; 2] = match c.kind {
            CellKind::Mux4 => [Some(c.inputs[1]), Some(c.inputs[0])],
            CellKind::Mux2 => [Some(c.inputs[0]), None],
            _ => unreachable!(),
        };
        for (pin, sel) in sel_nets.iter().enumerate() {
            let (val_bit, mode_bit) = fabric.chain_select_bits(x, y, j, pin);
            match sel {
                None => {
                    // Unused high select: constant 0.
                    bs.set(mode_bit, false);
                    bs.set(val_bit, false);
                }
                Some(net) => match net_constant(mapped, *net) {
                    Some(v) => {
                        bs.set(mode_bit, false);
                        bs.set(val_bit, v);
                    }
                    None => {
                        let t = resolve_pin_track(mapped, &track_at, *net, (x, y))
                            .ok_or_else(|| {
                                PnrError::DoesNotFit(format!(
                                    "chain select net `{}` missing at ({x},{y})",
                                    mapped.net(*net).name
                                ))
                            })?;
                        let (cbase, cwidth) = fabric.chain_sel_conn_field(x, y, j, pin);
                        bs.set_field(cbase, cwidth, t as u64);
                        bs.set(mode_bit, true);
                        bs.set(val_bit, false);
                    }
                },
            }
        }
        // Transparent fill after the segment's last element.
        if j == site.last_j {
            for fill in (site.last_j + 1)..config.chain_len {
                for pin in 0..2 {
                    let (val_bit, mode_bit) = fabric.chain_select_bits(x, y, fill, pin);
                    bs.set_unused(mode_bit, false);
                    bs.set_unused(val_bit, false);
                }
            }
        }
    }

    // IO map.
    let io_map = IoMap {
        inputs: mapped
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &n)| (mapped.net(n).name.clone(), placement.input_pads[i]))
            .collect(),
        outputs: mapped
            .outputs()
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.clone(), placement.output_pads[i]))
            .collect(),
    };

    // Utilization: tiles hosting slots, chain blocks or routed tracks.
    let mut tile_used = vec![false; fabric.tile_count()];
    for &(x, y, _) in &placement.sites {
        tile_used[y * fabric.width() + x] = true;
    }
    for &(x, y) in &used_blocks {
        tile_used[y * fabric.width() + x] = true;
    }
    for routed in routing.nets.values() {
        for &(x, y, _) in routed.nodes.keys() {
            tile_used[y * fabric.width() + x] = true;
        }
    }
    let tiles_used = tile_used.iter().filter(|&&u| u).count();

    // Usage counters (Table I accounting).
    let clb_pins: usize = slots.iter().map(|s| s.input_nets.len()).sum();
    let registered_slots = slots.iter().filter(|s| s.registered).count();
    let mut chain_pins = 0usize;
    for (&cell, site) in &element_sites {
        let c = mapped.cell(cell);
        match c.kind {
            CellKind::Mux4 => {
                chain_pins += if site.j == 0 { 4 } else { 3 };
                for s in [c.inputs[0], c.inputs[1]] {
                    if net_constant(mapped, s).is_none() {
                        chain_pins += 1;
                    }
                }
            }
            CellKind::Mux2 => {
                chain_pins += if site.j == 0 { 2 } else { 1 };
                if net_constant(mapped, c.inputs[0]).is_none() {
                    chain_pins += 1;
                }
            }
            _ => unreachable!(),
        }
    }
    let usage = FabricUsage {
        track_switches: routing.wirelength,
        clb_pins,
        lut_slots: slots.len(),
        registered_slots,
        chain_elements: chain_elements_used,
        chain_pins,
        config_bits: bs.used_count(),
        tiles_used,
    };
    Ok(PnrResult {
        fabric: fabric.clone(),
        bitstream: bs,
        io_map,
        slots_used: slots.len(),
        chain_elements_used,
        tiles_used,
        utilization: tiles_used as f64 / fabric.tile_count() as f64,
        route_iterations: routing.iterations,
        wirelength: routing.wirelength,
        fit_attempts: 1,
        usage,
        degraded,
    })
}

/// Value of a net when it is driven by a constant cell.
fn net_constant(netlist: &Netlist, net: NetId) -> Option<bool> {
    let drv = netlist.net(net).driver?;
    match netlist.cell(drv).kind {
        CellKind::Const(v) => Some(v),
        _ => None,
    }
}

/// Track carrying `net` at `tile`; constant nets fall back to their
/// generating slot's route.
fn resolve_pin_track(
    _netlist: &Netlist,
    track_at: &HashMap<(NetId, (usize, usize)), usize>,
    net: NetId,
    tile: (usize, usize),
) -> Option<usize> {
    track_at.get(&(net, tile)).copied()
}

fn verify(reference: &Netlist, result: &PnrResult) -> Result<(), PnrError> {
    let configured =
        shell_fabric::to_configured_netlist(&result.fabric, &result.bitstream, &result.io_map)
            .map_err(|e| PnrError::VerificationFailed(e.to_string()))?;
    let outcome = if !reference.is_combinational() {
        equiv_sequential_random(reference, &configured, &[], &[], 64, 0xE0)
    } else if reference.inputs().len() <= 12 {
        equiv_exhaustive(reference, &configured, &[], &[])
    } else if sat_backend_installed() {
        // Wide combinational cone and a SAT backend is registered (see
        // `shell_verify::install`): a miter proof replaces sampling.
        match equiv(reference, &configured, &[], &[], Method::Sat) {
            // Budget exhaustion or unsupported structure: fall back to
            // Monte Carlo rather than failing the flow.
            EquivResult::Incomparable(_) => {
                equiv_random(reference, &configured, &[], &[], 512, 0xE0)
            }
            decided => decided,
        }
    } else {
        equiv_random(reference, &configured, &[], &[], 512, 0xE0)
    };
    match outcome {
        EquivResult::Equivalent => Ok(()),
        other => Err(PnrError::VerificationFailed(format!("{other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_netlist::NetlistBuilder;
    use shell_synth::lut_map;

    fn adder(width: usize) -> Netlist {
        let mut b = NetlistBuilder::new("adder");
        let x = b.input_bus("x", width);
        let y = b.input_bus("y", width);
        let (s, c) = b.adder(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        b.finish()
    }

    fn xbar(words: usize, width: usize) -> Netlist {
        // One-hot chained crossbar column: out = g_{n-1} ? d_{n-1} : (... d0)
        let mut b = NetlistBuilder::new("xbar");
        let grants: Vec<NetId> = (0..words - 1)
            .map(|i| b.input(&format!("g{i}")))
            .collect();
        let data: Vec<Vec<NetId>> = (0..words)
            .map(|i| b.input_bus(&format!("d{i}"), width))
            .collect();
        for bit in 0..width {
            let mut acc = data[0][bit];
            for w in 1..words {
                acc = b.mux2(grants[w - 1], acc, data[w][bit]);
            }
            b.output(&format!("o[{bit}]"), acc);
        }
        b.finish()
    }

    #[test]
    fn lut_flow_small_adder() {
        let n = adder(3);
        let mapped = lut_map(&n, 4).expect("acyclic").netlist;
        let cfg = FabricConfig::fabulous_style(false);
        let res = place_and_route(&mapped, cfg, &PnrOptions::default()).expect("fits");
        assert!(res.slots_used > 0);
        assert!(res.utilization > 0.0 && res.utilization <= 1.0);
        assert!(res.bitstream.used_count() > 0);
        // `verify: true` already proved equivalence against `mapped`;
        // double-check against the original RTL netlist too.
        let configured =
            shell_fabric::to_configured_netlist(&res.fabric, &res.bitstream, &res.io_map)
                .unwrap();
        assert!(equiv_exhaustive(&n, &configured, &[], &[]).is_equivalent());
    }

    #[test]
    fn lut_flow_openfpga_squares() {
        let n = adder(2);
        let mapped = lut_map(&n, 4).expect("acyclic").netlist;
        let cfg = FabricConfig::openfpga_style();
        let res = place_and_route(&mapped, cfg, &PnrOptions::default()).expect("fits");
        assert_eq!(res.fabric.width(), res.fabric.height());
    }

    #[test]
    fn lut_flow_sequential() {
        let mut b = NetlistBuilder::new("seqd");
        let en = b.input("en");
        let d = b.input("d");
        let g = b.and2(en, d);
        let q = b.dff(g);
        let o = b.xor2(q, en);
        b.output("o", o);
        let n = b.finish();
        let mapped = lut_map(&n, 4).expect("acyclic").netlist;
        let res = place_and_route(&mapped, FabricConfig::fabulous_style(false), &PnrOptions::default())
            .expect("fits");
        let configured =
            shell_fabric::to_configured_netlist(&res.fabric, &res.bitstream, &res.io_map)
                .unwrap();
        assert!(
            equiv_sequential_random(&n, &configured, &[], &[], 48, 3).is_equivalent()
        );
    }

    #[test]
    fn lut_flow_rejects_keyed_netlist() {
        let mut n = Netlist::new("k");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);
        assert!(matches!(
            place_and_route(&n, FabricConfig::fabulous_style(false), &PnrOptions::default()),
            Err(PnrError::Unsupported(_))
        ));
    }

    #[test]
    fn lut_flow_rejects_raw_gates() {
        let mut n = Netlist::new("g");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::And, vec![a, b]);
        n.add_output("f", f);
        assert!(matches!(
            place_and_route(&n, FabricConfig::fabulous_style(false), &PnrOptions::default()),
            Err(PnrError::Pack(_))
        ));
    }

    #[test]
    fn chain_flow_one_hot_xbar() {
        let n = xbar(4, 2);
        let cfg = FabricConfig::fabulous_style(true);
        let res = place_and_route_with_chains(&n, cfg, &PnrOptions::default()).expect("fits");
        assert!(res.chain_elements_used > 0, "muxes mapped to chains");
        let configured =
            shell_fabric::to_configured_netlist(&res.fabric, &res.bitstream, &res.io_map)
                .unwrap();
        assert!(equiv_exhaustive(&n, &configured, &[], &[]).is_equivalent());
    }

    #[test]
    fn chain_flow_uses_fewer_luts_than_lut_flow() {
        let n = xbar(8, 1);
        let cfg = FabricConfig::fabulous_style(true);
        let chain_res =
            place_and_route_with_chains(&n, cfg.clone(), &PnrOptions::default()).expect("fits");
        let lut_res = place_and_route(&lut_map(&n, 4).expect("acyclic").netlist, cfg, &PnrOptions::default())
            .expect("fits");
        assert!(
            chain_res.slots_used < lut_res.slots_used,
            "chains {} vs luts {}",
            chain_res.slots_used,
            lut_res.slots_used
        );
    }

    #[test]
    fn chain_flow_requires_chain_fabric() {
        let n = xbar(4, 1);
        assert!(matches!(
            place_and_route_with_chains(
                &n,
                FabricConfig::fabulous_style(false),
                &PnrOptions::default()
            ),
            Err(PnrError::Unsupported(_))
        ));
    }

    #[test]
    fn fit_loop_expands() {
        // A design too large for the initial estimate must still fit after
        // expansion (tight routing forces retries).
        let n = adder(5);
        let mapped = lut_map(&n, 4).expect("acyclic").netlist;
        let res = place_and_route(&mapped, FabricConfig::fabulous_style(false), &PnrOptions::default())
            .expect("fits eventually");
        assert!(res.fit_attempts >= 1);
        let configured =
            shell_fabric::to_configured_netlist(&res.fabric, &res.bitstream, &res.io_map)
                .unwrap();
        assert!(equiv_random(&n, &configured, &[], &[], 400, 9).is_equivalent());
    }

    #[test]
    fn long_chain_splits_across_blocks() {
        // A 16:1 one-hot chain (15 mux2) cannot fit one chain block; it
        // must split into segments linked through tracks and still verify.
        let n = xbar(16, 1);
        let cfg = FabricConfig::fabulous_style(true);
        let res = place_and_route_with_chains(&n, cfg, &PnrOptions::default())
            .expect("long chain maps");
        assert!(
            res.chain_elements_used >= 8,
            "chain elements {}",
            res.chain_elements_used
        );
        let configured =
            shell_fabric::to_configured_netlist(&res.fabric, &res.bitstream, &res.io_map)
                .unwrap();
        assert!(equiv_random(&n, &configured, &[], &[], 600, 3).is_equivalent());
    }

    #[test]
    fn chain_flow_handles_mixed_logic() {
        // One-hot route + adder residue: chains AND CLBs used together.
        let mut b = NetlistBuilder::new("mixed");
        let g: Vec<shell_netlist::NetId> =
            (0..3).map(|i| b.input(&format!("g{i}"))).collect();
        let d: Vec<Vec<shell_netlist::NetId>> =
            (0..4).map(|i| b.input_bus(&format!("d{i}"), 3)).collect();
        let mut sel = d[0].clone();
        for w in 1..4 {
            sel = sel
                .iter()
                .zip(&d[w])
                .map(|(&a, &x)| b.mux2(g[w - 1], a, x))
                .collect();
        }
        let extra = b.input_bus("e", 3);
        let (sum, c) = b.adder(&sel, &extra);
        b.output_bus("s", &sum);
        b.output("c", c);
        let n = b.finish();
        let res = place_and_route_with_chains(
            &n,
            FabricConfig::fabulous_style(true),
            &PnrOptions::default(),
        )
        .expect("mixed maps");
        assert!(res.chain_elements_used > 0, "chains used");
        assert!(res.slots_used > 0, "CLBs used for the adder residue");
        let configured =
            shell_fabric::to_configured_netlist(&res.fabric, &res.bitstream, &res.io_map)
                .unwrap();
        assert!(equiv_random(&n, &configured, &[], &[], 600, 4).is_equivalent());
    }

    #[test]
    fn utilization_reported() {
        let n = adder(2);
        let mapped = lut_map(&n, 4).expect("acyclic").netlist;
        let res = place_and_route(&mapped, FabricConfig::fabulous_style(false), &PnrOptions::default())
            .expect("fits");
        assert!(res.tiles_used >= 1);
        assert!(res.wirelength > 0);
    }
}
