//! Negotiated-congestion routing over the fabric track graph.
//!
//! The routing resource is the **track node** `(x, y, t)`: each carries one
//! signal, chosen by its switch mux. A signal enters the graph at its source
//! attachment (a CLB slot output, chain block output, or boundary input pad)
//! and propagates tile to tile along the same track index. Sinks are either
//! *any* track of a tile (CLB/chain pins pick their track with a connection
//! mux) or a *specific* boundary track (output pads are hard-wired).
//!
//! The algorithm is PathFinder-lite: route every net by BFS with node costs
//! `1 + present_congestion + history`; when nodes end up shared, rip up and
//! re-route with increased penalties until the routing is legal or the
//! iteration budget runs out.

use shell_fabric::{Fabric, SignalRef};
use shell_guard::{Budget, Exhausted};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Why routing stopped without a legal solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// `net` (the request's id) could not be routed legally within the
    /// iteration limit — congestion, or an unreachable sink.
    Unroutable {
        /// Id of the offending request.
        net: usize,
    },
    /// The shared budget ran out mid-negotiation. Unlike placement, a
    /// half-negotiated routing is illegal (nets still share track nodes),
    /// so there is no best-so-far to degrade to.
    Exhausted(Exhausted),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unroutable { net } => write!(f, "net {net} is unroutable"),
            RouteError::Exhausted(why) => write!(f, "routing budget exhausted ({why})"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Where a routed signal originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Output of CLB slot `slot` of tile `(x, y)`.
    Slot {
        /// Tile x.
        x: usize,
        /// Tile y.
        y: usize,
        /// Slot index.
        slot: usize,
    },
    /// Output of the chain block of tile `(x, y)` (its last element).
    ChainBlock {
        /// Tile x.
        x: usize,
        /// Tile y.
        y: usize,
    },
    /// Fabric input pad.
    Pad(usize),
}

/// Where a routed signal must arrive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkKind {
    /// Any track of tile `(x, y)` (CLB pins / chain pins connect through a
    /// connection mux). The router reports which track it used.
    AnyTrackAt {
        /// Tile x.
        x: usize,
        /// Tile y.
        y: usize,
    },
    /// The specific boundary track read by output pad `pad`.
    OutputPad {
        /// Output pad index.
        pad: usize,
    },
}

/// One net to route: a source and its sinks.
#[derive(Debug, Clone)]
pub struct RouteRequest {
    /// Net identifier (caller-defined, reported back in results).
    pub net: usize,
    /// Signal origin.
    pub source: SourceKind,
    /// All destinations.
    pub sinks: Vec<SinkKind>,
}

/// A routed net: the track nodes it occupies, the mux selection per node,
/// and the track index satisfying each sink.
#[derive(Debug, Clone, Default)]
pub struct RoutedNet {
    /// `(x, y, t) → chosen switch-mux input index`.
    pub nodes: HashMap<(usize, usize, usize), usize>,
    /// For each sink (same order as the request), the track index `t` at the
    /// sink tile that carries the signal.
    pub sink_tracks: Vec<usize>,
}

/// Routing outcome for a batch of nets.
#[derive(Debug, Clone, Default)]
pub struct RoutingResult {
    /// Per-net routes, keyed by the request's `net` id.
    pub nets: HashMap<usize, RoutedNet>,
    /// Negotiation iterations used.
    pub iterations: usize,
    /// Total track nodes occupied.
    pub wirelength: usize,
}

/// The router. Holds the fabric topology and congestion state.
#[derive(Debug)]
pub struct Router<'f> {
    fabric: &'f Fabric,
    width: usize,
    height: usize,
    tracks: usize,
    /// Accumulated history cost per node.
    history: Vec<f64>,
}

impl<'f> Router<'f> {
    /// Creates a router for `fabric`.
    pub fn new(fabric: &'f Fabric) -> Self {
        let width = fabric.width();
        let height = fabric.height();
        let tracks = fabric.config().channel_width;
        Self {
            fabric,
            width,
            height,
            tracks,
            history: vec![0.0; width * height * tracks],
        }
    }

    #[inline]
    fn node_index(&self, x: usize, y: usize, t: usize) -> usize {
        (y * self.width + x) * self.tracks + t
    }

    /// Track nodes a source can drive directly, with the mux input index the
    /// node must select.
    fn source_attachments(&self, src: SourceKind) -> Vec<((usize, usize, usize), usize)> {
        match src {
            SourceKind::Slot { x, y, slot } => {
                // Every track of the tile can select clb output `slot` at
                // mux input position 4 + slot.
                (0..self.tracks)
                    .map(|t| ((x, y, t), 4 + slot))
                    .collect()
            }
            SourceKind::ChainBlock { x, y } => {
                let pos = 4 + self.fabric.config().luts_per_clb;
                (0..self.tracks).map(|t| ((x, y, t), pos)).collect()
            }
            SourceKind::Pad(idx) => {
                let (sig, pos) = self.fabric.io_input_attachment(idx);
                match sig {
                    SignalRef::Track { x, y, t } => vec![((x, y, t), pos)],
                    _ => unreachable!("pads attach to tracks"),
                }
            }
        }
    }

    /// Routes all requests. Sinks of the same net may share track nodes; no
    /// two different nets may.
    ///
    /// # Errors
    ///
    /// Returns the id of the first net that could not be routed legally
    /// within `max_iterations`.
    pub fn route_all(
        &mut self,
        requests: &[RouteRequest],
        max_iterations: usize,
    ) -> Result<RoutingResult, usize> {
        self.route_all_budgeted(requests, max_iterations, &Budget::unlimited())
            .map_err(|e| match e {
                RouteError::Unroutable { net } => net,
                // An unlimited, unshared budget cannot exhaust.
                RouteError::Exhausted(_) => unreachable!("unlimited budget exhausted"),
            })
    }

    /// Like [`Router::route_all`], but polls `budget` once per negotiation
    /// iteration and per offender re-route, returning
    /// [`RouteError::Exhausted`] when it runs out. With an unlimited budget
    /// this is byte-identical to [`Router::route_all`].
    ///
    /// # Errors
    ///
    /// [`RouteError`] — an unroutable net or an exhausted budget.
    pub fn route_all_budgeted(
        &mut self,
        requests: &[RouteRequest],
        max_iterations: usize,
        budget: &Budget,
    ) -> Result<RoutingResult, RouteError> {
        let _span = shell_trace::span!("route.negotiate");
        let unroutable = |net: usize| RouteError::Unroutable { net };
        let n_nodes = self.width * self.height * self.tracks;
        let mut routes: HashMap<usize, RoutedNet> = HashMap::new();
        let mut occupancy: Vec<u32> = vec![0; n_nodes];
        let by_id: HashMap<usize, &RouteRequest> =
            requests.iter().map(|r| (r.net, r)).collect();

        // Initial pass, in two deterministic stages. Stage 1 computes a
        // candidate route per net in parallel against a *frozen* snapshot
        // (empty occupancy — a pure function of fabric and history, so the
        // candidates are identical at any worker count). Stage 2 commits
        // sequentially in request order: a candidate whose nodes are still
        // free is taken as-is; one that collides with already-committed
        // nodes is re-routed on the spot against the live occupancy, which
        // is exactly what a fully sequential pass would have done for it.
        // Both stages depend only on request order, never on thread
        // scheduling, so the routing (and the bitstream downstream) is
        // byte-identical at every `SHELL_JOBS` setting.
        let candidates: Vec<Option<RoutedNet>> = {
            let this: &Router<'f> = self;
            let empty = vec![0u32; n_nodes];
            shell_exec::parallel_map(requests, |req| this.route_one(req, &empty, 0))
        };
        for (req, candidate) in requests.iter().zip(candidates) {
            let candidate = candidate.ok_or(unroutable(req.net))?;
            let collides = candidate
                .nodes
                .keys()
                .any(|&(x, y, t)| occupancy[self.node_index(x, y, t)] > 0);
            let routed = if collides {
                self.route_one(req, &occupancy, 0).ok_or(unroutable(req.net))?
            } else {
                candidate
            };
            for &(x, y, t) in routed.nodes.keys() {
                occupancy[self.node_index(x, y, t)] += 1;
            }
            routes.insert(req.net, routed);
        }

        // Negotiation: rip up and re-route only the nets sitting on
        // overused nodes; everyone else keeps their (visible) routing.
        let mut iterations = 1;
        for iter in 1..max_iterations {
            budget.checkpoint().map_err(RouteError::Exhausted)?;
            let _pass = shell_trace::span!("route.pass", iteration = iter);
            iterations = iter + 1;
            // Rebuild occupancy from the authoritative route set: the
            // incremental bookkeeping must never drift, and a stale phantom
            // count would look like permanent congestion.
            occupancy.iter_mut().for_each(|o| *o = 0);
            for routed in routes.values() {
                for &(x, y, t) in routed.nodes.keys() {
                    occupancy[self.node_index(x, y, t)] += 1;
                }
            }
            // Offenders, in deterministic order.
            let mut offenders: Vec<usize> = routes
                .iter()
                .filter(|(_, routed)| {
                    routed
                        .nodes
                        .keys()
                        .any(|&(x, y, t)| occupancy[self.node_index(x, y, t)] > 1)
                })
                .map(|(&id, _)| id)
                .collect();
            offenders.sort_unstable();
            if offenders.is_empty() {
                let wirelength = routes.values().map(|r| r.nodes.len()).sum();
                return Ok(RoutingResult {
                    nets: routes,
                    iterations,
                    wirelength,
                });
            }
            // Accumulate history on every overused node.
            let mut over = 0usize;
            for o in occupancy.iter() {
                if *o > 1 {
                    over += 1;
                }
            }
            shell_trace::gauge("route.overuse", over as f64);
            for (i, o) in occupancy.iter().enumerate() {
                if *o > 1 {
                    self.history[i] += (*o - 1) as f64;
                }
            }
            if std::env::var("PNR_DEBUG").is_ok() {
                eprintln!("iter {iter}: {over} overused, {} offenders", offenders.len());
            }
            for id in offenders {
                budget.checkpoint().map_err(RouteError::Exhausted)?;
                let old = routes.remove(&id).expect("offender routed");
                for &(x, y, t) in old.nodes.keys() {
                    occupancy[self.node_index(x, y, t)] -= 1;
                }
                let req = by_id[&id];
                let routed = self.route_one(req, &occupancy, iter).ok_or(unroutable(id))?;
                for &(x, y, t) in routed.nodes.keys() {
                    occupancy[self.node_index(x, y, t)] += 1;
                }
                routes.insert(id, routed);
            }
        }
        // Final legality check after the last iteration's re-routes.
        if occupancy.iter().all(|&o| o <= 1) {
            let wirelength = routes.values().map(|r| r.nodes.len()).sum();
            return Ok(RoutingResult {
                nets: routes,
                iterations,
                wirelength,
            });
        }
        if std::env::var("PNR_DEBUG").is_ok() {
            for (i, &o) in occupancy.iter().enumerate() {
                if o > 1 {
                    let t = i % self.tracks;
                    let tile = i / self.tracks;
                    eprintln!(
                        "overused node ({},{},{t}) x{o}",
                        tile % self.width,
                        tile / self.width
                    );
                }
            }
            for (id, routed) in &routes {
                let mut nodes: Vec<_> = routed.nodes.iter().collect();
                nodes.sort();
                eprintln!("net {id}: {nodes:?}");
            }
        }
        // Identify a culprit: a net occupying an over-used node.
        for (id, routed) in &routes {
            for &(x, y, t) in routed.nodes.keys() {
                if occupancy[self.node_index(x, y, t)] > 1 {
                    return Err(unroutable(*id));
                }
            }
        }
        Err(unroutable(requests.first().map(|r| r.net).unwrap_or(0)))
    }

    /// Routes one net against current occupancy. Returns `None` when some
    /// sink is unreachable even ignoring congestion.
    fn route_one(
        &self,
        req: &RouteRequest,
        occupancy: &[u32],
        iteration: usize,
    ) -> Option<RoutedNet> {
        let present_penalty = 1.0 + iteration as f64 * 2.0;
        // Relaxations are counted locally and flushed once per call: the
        // total is a pure function of the request stream, so the counter is
        // identical at any `SHELL_JOBS` even though calls run on workers.
        let mut relaxations = 0u64;
        let mut tree = RoutedNet {
            nodes: HashMap::new(),
            sink_tracks: Vec::with_capacity(req.sinks.len()),
        };
        let attachments = self.source_attachments(req.source);
        for sink in &req.sinks {
            // BFS (uniform-ish cost: use Dijkstra-lite with BinaryHeap on
            // f64-scaled integer costs).
            let mut dist: Vec<f64> = vec![f64::INFINITY; self.width * self.height * self.tracks];
            let mut from: Vec<i64> = vec![-2; dist.len()]; // -2 unset, -1 source, else predecessor node
            let mut sel: Vec<usize> = vec![usize::MAX; dist.len()];
            let mut queue: VecDeque<usize> = VecDeque::new();
            // Seed: existing tree nodes (free) + source attachments.
            // Seed in sorted node order: relaxation order breaks cost ties,
            // and hash-order seeding would make the routing tree (and thus
            // the bitstream) differ run-to-run for the same seed.
            let mut tree_seeds: Vec<((usize, usize, usize), usize)> =
                tree.nodes.iter().map(|(&n, &s)| (n, s)).collect();
            tree_seeds.sort_unstable();
            for ((x, y, t), s) in tree_seeds {
                let i = self.node_index(x, y, t);
                dist[i] = 0.0;
                from[i] = -1;
                sel[i] = s;
                queue.push_back(i);
            }
            for &((x, y, t), s) in &attachments {
                let i = self.node_index(x, y, t);
                let cost = self.node_cost(i, occupancy, present_penalty);
                if cost < dist[i] {
                    dist[i] = cost;
                    from[i] = -1;
                    sel[i] = s;
                    queue.push_back(i);
                }
            }
            // SPFA-style relaxation (costs are small positive; fine here).
            while let Some(u) = queue.pop_front() {
                relaxations += 1;
                let du = dist[u];
                let t = u % self.tracks;
                let tile = u / self.tracks;
                let (x, y) = (tile % self.width, tile / self.width);
                // Neighbors that can select this node: direction index is
                // the *neighbor's* view: neighbor east of us selects its
                // west input (0) to read us, etc. Every vertical hop
                // *increments* the track index (see
                // `Fabric::track_mux_inputs`): both the north and the south
                // neighbor read us through their track `t + 1`.
                let w = self.tracks;
                let neigh: [(i64, i64, usize, usize); 4] = [
                    (x as i64 + 1, y as i64, 0, t), // east neighbor reads west
                    (x as i64 - 1, y as i64, 1, t), // west neighbor reads east
                    (x as i64, y as i64 + 1, 2, (t + 1) % w), // north reads south
                    (x as i64, y as i64 - 1, 3, (t + 1) % w), // south reads north
                ];
                for (nx, ny, pos, nt) in neigh {
                    if nx < 0 || ny < 0 || nx as usize >= self.width || ny as usize >= self.height
                    {
                        continue;
                    }
                    let v = self.node_index(nx as usize, ny as usize, nt);
                    let step = self.node_cost(v, occupancy, present_penalty);
                    if du + step < dist[v] {
                        dist[v] = du + step;
                        from[v] = u as i64;
                        sel[v] = pos;
                        queue.push_back(v);
                    }
                }
            }
            // Pick the best node satisfying the sink.
            let target = match *sink {
                SinkKind::AnyTrackAt { x, y } => (0..self.tracks)
                    .map(|t| self.node_index(x, y, t))
                    .filter(|&i| dist[i].is_finite())
                    .min_by(|&a, &b| dist[a].partial_cmp(&dist[b]).expect("finite")),
                SinkKind::OutputPad { pad } => {
                    let sig = self.fabric.io_output_source(pad);
                    match sig {
                        SignalRef::Track { x, y, t } => {
                            let i = self.node_index(x, y, t);
                            dist[i].is_finite().then_some(i)
                        }
                        _ => None,
                    }
                }
            };
            let Some(target) = target else {
                shell_trace::counter_add("route.spfa_relaxations", relaxations);
                return None;
            };
            // Walk back, adding nodes to the tree.
            tree.sink_tracks.push(target % self.tracks);
            let mut cur = target as i64;
            while cur >= 0 {
                let i = cur as usize;
                let t = i % self.tracks;
                let tile = i / self.tracks;
                let (x, y) = (tile % self.width, tile / self.width);
                if tree.nodes.contains_key(&(x, y, t)) {
                    break; // merged into existing tree
                }
                tree.nodes.insert((x, y, t), sel[i]);
                cur = from[i];
            }
        }
        shell_trace::counter_add("route.spfa_relaxations", relaxations);
        Some(tree)
    }

    fn node_cost(&self, i: usize, occupancy: &[u32], present_penalty: f64) -> f64 {
        1.0 + occupancy[i] as f64 * present_penalty + self.history[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_fabric::FabricConfig;

    fn fabric(w: usize, h: usize) -> Fabric {
        Fabric::generate(FabricConfig::fabulous_style(true), w, h)
    }

    /// West input pad feeding track (0, y, t).
    fn west_pad(f: &Fabric, y: usize, t: usize) -> usize {
        (0..f.io_input_count())
            .find(|&i| {
                let (sig, pos) = f.io_input_attachment(i);
                pos == 0
                    && matches!(sig, SignalRef::Track { x, y: yy, t: tt } if x == 0 && yy == y && tt == t)
            })
            .expect("west pad")
    }

    /// Output pad reading track (x, y, t) on the east edge.
    fn east_out_pad(f: &Fabric, y: usize, t: usize) -> usize {
        (0..f.io_output_count())
            .find(|&i| {
                matches!(f.io_output_source(i),
                    SignalRef::Track { x, y: yy, t: tt } if x == f.width() - 1 && yy == y && tt == t)
            })
            .expect("east out pad")
    }

    #[test]
    fn route_pad_across_fabric() {
        let f = fabric(3, 1);
        let mut r = Router::new(&f);
        let req = RouteRequest {
            net: 7,
            source: SourceKind::Pad(west_pad(&f, 0, 2)),
            sinks: vec![SinkKind::OutputPad {
                pad: east_out_pad(&f, 0, 2),
            }],
        };
        let res = r.route_all(&[req], 8).expect("routable");
        let net = &res.nets[&7];
        // Path spans all three tiles on track 2.
        assert_eq!(net.nodes.len(), 3);
        for x in 0..3 {
            assert!(net.nodes.contains_key(&(x, 0, 2)), "tile {x}");
        }
        // Boundary node selects west (0); interior nodes select west (0).
        assert_eq!(net.nodes[&(0, 0, 2)], 0);
        assert_eq!(net.sink_tracks, vec![2]);
    }

    #[test]
    fn route_slot_to_clb_pin() {
        let f = fabric(2, 2);
        let mut r = Router::new(&f);
        let req = RouteRequest {
            net: 1,
            source: SourceKind::Slot { x: 0, y: 0, slot: 2 },
            sinks: vec![SinkKind::AnyTrackAt { x: 1, y: 1 }],
        };
        let res = r.route_all(&[req], 8).expect("routable");
        let net = &res.nets[&1];
        // Source tile node selects clb input 4 + 2 = 6.
        let src_node = net
            .nodes
            .iter()
            .find(|((x, y, _), _)| *x == 0 && *y == 0)
            .expect("source tile used");
        assert_eq!(*src_node.1, 6);
        // Two hops (manhattan) + source node.
        assert_eq!(net.nodes.len(), 3);
    }

    #[test]
    fn multi_sink_reuses_tree() {
        let f = fabric(3, 1);
        let mut r = Router::new(&f);
        let req = RouteRequest {
            net: 5,
            source: SourceKind::Slot { x: 0, y: 0, slot: 0 },
            sinks: vec![
                SinkKind::AnyTrackAt { x: 2, y: 0 },
                SinkKind::AnyTrackAt { x: 1, y: 0 },
            ],
        };
        let res = r.route_all(&[req], 8).expect("routable");
        let net = &res.nets[&5];
        // The second sink lies on the path of the first: 3 nodes total.
        assert_eq!(net.nodes.len(), 3);
        assert_eq!(net.sink_tracks.len(), 2);
    }

    #[test]
    fn congestion_negotiation_separates_nets() {
        // Two nets crossing the same column must end on different tracks.
        let f = fabric(3, 1);
        let mut r = Router::new(&f);
        let reqs = vec![
            RouteRequest {
                net: 0,
                source: SourceKind::Pad(west_pad(&f, 0, 0)),
                sinks: vec![SinkKind::OutputPad {
                    pad: east_out_pad(&f, 0, 0),
                }],
            },
            RouteRequest {
                net: 1,
                source: SourceKind::Slot { x: 0, y: 0, slot: 1 },
                sinks: vec![SinkKind::AnyTrackAt { x: 2, y: 0 }],
            },
        ];
        let res = r.route_all(&reqs, 16).expect("routable");
        // No shared nodes.
        let a: Vec<_> = res.nets[&0].nodes.keys().collect();
        for k in res.nets[&1].nodes.keys() {
            assert!(!a.contains(&k), "node {k:?} shared");
        }
    }

    #[test]
    fn cancelled_budget_stops_negotiation_with_typed_error() {
        // Same congested setup as above: the initial pass overlaps the two
        // nets, so negotiation must run — and the cancelled budget stops it
        // at the first iteration boundary.
        let f = fabric(3, 1);
        let mut r = Router::new(&f);
        let reqs = vec![
            RouteRequest {
                net: 0,
                source: SourceKind::Pad(west_pad(&f, 0, 0)),
                sinks: vec![SinkKind::OutputPad {
                    pad: east_out_pad(&f, 0, 0),
                }],
            },
            RouteRequest {
                net: 1,
                source: SourceKind::Slot { x: 0, y: 0, slot: 1 },
                sinks: vec![SinkKind::AnyTrackAt { x: 2, y: 0 }],
            },
        ];
        let budget = Budget::unlimited();
        budget.cancel();
        match r.route_all_budgeted(&reqs, 16, &budget) {
            Err(RouteError::Exhausted(Exhausted::Cancelled)) => {}
            other => panic!("expected cancellation, got {other:?}"),
        }
    }

    #[test]
    fn saturation_fails_gracefully() {
        // 1x1 fabric has 8 tracks; 9 slot nets each needing a track at the
        // same tile cannot all fit... but slots only number 4; use pads:
        // route more nets than tracks through the single tile.
        let f = fabric(1, 1);
        let mut r = Router::new(&f);
        let reqs: Vec<RouteRequest> = (0..9)
            .map(|i| RouteRequest {
                net: i,
                source: SourceKind::Pad(west_pad(&f, 0, i % 8)),
                sinks: vec![SinkKind::AnyTrackAt { x: 0, y: 0 }],
            })
            .collect();
        assert!(r.route_all(&reqs, 6).is_err());
    }

    #[test]
    fn wirelength_reported() {
        let f = fabric(4, 1);
        let mut r = Router::new(&f);
        let req = RouteRequest {
            net: 0,
            source: SourceKind::Pad(west_pad(&f, 0, 1)),
            sinks: vec![SinkKind::OutputPad {
                pad: east_out_pad(&f, 0, 1),
            }],
        };
        let res = r.route_all(&[req], 4).expect("routable");
        assert_eq!(res.wirelength, 4);
        assert!(res.iterations >= 1);
    }

    #[test]
    fn chain_block_source_position() {
        let f = fabric(2, 1);
        let mut r = Router::new(&f);
        let req = RouteRequest {
            net: 3,
            source: SourceKind::ChainBlock { x: 1, y: 0 },
            sinks: vec![SinkKind::AnyTrackAt { x: 0, y: 0 }],
        };
        let res = r.route_all(&[req], 8).expect("routable");
        let net = &res.nets[&3];
        let src_node = net
            .nodes
            .iter()
            .find(|((x, _, _), _)| *x == 1)
            .expect("chain tile used");
        // Chain input position = 4 + luts_per_clb = 8.
        assert_eq!(*src_node.1, 8);
    }
}
