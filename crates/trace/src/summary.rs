//! Aggregated, human-readable summaries of a trace.
//!
//! Aggregation is strictly **by span name**, never by parent/child path:
//! with `SHELL_JOBS=1` a span emitted inside `shell_exec::parallel_map`
//! nests under its caller (inline execution), while with `SHELL_JOBS=4` it
//! runs on a worker thread with no parent. Name-keyed aggregation makes the
//! two indistinguishable, which is what the determinism contract requires.

use crate::tracer::TraceData;

/// One aggregated row per span name.
#[derive(Debug, Clone)]
pub struct SpanRow {
    /// Span name (dots express the taxonomy, e.g. `attack.sat.dip`).
    pub name: String,
    /// Number of closed spans with this name.
    pub count: u64,
    /// Sum of wall-clock durations, in nanoseconds.
    pub total_ns: u64,
    /// Sum of self times (duration minus same-thread children), ns.
    pub self_ns: u64,
    /// Median span duration, ns.
    pub p50_ns: u64,
    /// 95th-percentile span duration, ns.
    pub p95_ns: u64,
}

/// One aggregated row per gauge name (order-independent statistics only).
#[derive(Debug, Clone)]
pub struct GaugeRow {
    /// Gauge name, e.g. `place.hpwl`.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Smallest sampled value.
    pub min: f64,
    /// Largest sampled value.
    pub max: f64,
}

/// An aggregated view of a [`TraceData`], ready to render.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Span rows, sorted by name.
    pub spans: Vec<SpanRow>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge rows, sorted by name.
    pub gauges: Vec<GaugeRow>,
}

/// How much of a [`Summary`] to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SummaryMode {
    /// Everything, including wall-clock timings. For humans.
    Timed,
    /// Timings stripped: span counts, counter totals, gauge count/min/max.
    /// Byte-identical across `SHELL_JOBS` settings for the same workload —
    /// this is the mode the determinism tests compare.
    Normalized,
}

impl Summary {
    /// Aggregates a snapshot into per-name rows.
    pub fn of(data: &TraceData) -> Summary {
        use std::collections::BTreeMap;
        let mut spans: BTreeMap<&str, (u64, u64, u64, Vec<u64>)> = BTreeMap::new();
        let mut gauges: BTreeMap<&str, (u64, f64, f64)> = BTreeMap::new();
        for t in &data.threads {
            for s in &t.spans {
                let e = spans.entry(s.name).or_insert((0, 0, 0, Vec::new()));
                e.0 += 1;
                e.1 += s.dur_ns;
                e.2 += s.self_ns;
                e.3.push(s.dur_ns);
            }
            for g in &t.gauges {
                let e = gauges
                    .entry(g.name)
                    .or_insert((0, f64::INFINITY, f64::NEG_INFINITY));
                e.0 += 1;
                e.1 = e.1.min(g.value);
                e.2 = e.2.max(g.value);
            }
        }
        let spans = spans
            .into_iter()
            .map(|(name, (count, total_ns, self_ns, mut durs))| {
                durs.sort_unstable();
                SpanRow {
                    name: name.to_string(),
                    count,
                    total_ns,
                    self_ns,
                    p50_ns: percentile(&durs, 50),
                    p95_ns: percentile(&durs, 95),
                }
            })
            .collect();
        let gauges = gauges
            .into_iter()
            .map(|(name, (count, min, max))| GaugeRow {
                name: name.to_string(),
                count,
                min,
                max,
            })
            .collect();
        Summary {
            spans,
            counters: data.counters.clone(),
            gauges,
        }
    }

    /// Renders the summary as text.
    ///
    /// Span rows are sorted by name, and the dotted taxonomy is shown as
    /// indentation (one level per dot), giving a stable hierarchical view
    /// that does not depend on runtime nesting.
    pub fn render(&self, mode: SummaryMode) -> String {
        let mut out = String::new();
        out.push_str("== spans ==\n");
        for row in &self.spans {
            let indent = "  ".repeat(row.name.matches('.').count());
            match mode {
                SummaryMode::Timed => {
                    out.push_str(&format!(
                        "{indent}{name}  count={count}  total={total}  self={self_t}  p50={p50}  p95={p95}\n",
                        name = row.name,
                        count = row.count,
                        total = fmt_ns(row.total_ns),
                        self_t = fmt_ns(row.self_ns),
                        p50 = fmt_ns(row.p50_ns),
                        p95 = fmt_ns(row.p95_ns),
                    ));
                }
                SummaryMode::Normalized => {
                    out.push_str(&format!(
                        "{indent}{name}  count={count}\n",
                        name = row.name,
                        count = row.count,
                    ));
                }
            }
        }
        out.push_str("== counters ==\n");
        for (name, total) in &self.counters {
            out.push_str(&format!("{name}  total={total}\n"));
        }
        out.push_str("== gauges ==\n");
        for g in &self.gauges {
            out.push_str(&format!(
                "{name}  count={count}  min={min}  max={max}\n",
                name = g.name,
                count = g.count,
                min = g.min,
                max = g.max,
            ));
        }
        out
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 for empty input).
fn percentile(sorted: &[u64], pct: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct as usize * sorted.len() + 99) / 100;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Formats nanoseconds with a readable unit (ns / µs / ms / s).
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[], 50), 0);
    }
}
