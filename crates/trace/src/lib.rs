//! shell-trace: zero-dependency structured tracing and metrics for the
//! SheLL flow.
//!
//! The flow spans synthesis → place-and-route → locking → SAT attack, with
//! parallelism (shell-exec) and budgets (shell-guard) layered on top. This
//! crate is the third leg: it makes both measurable. It provides an
//! [`Arc`](std::sync::Arc)-shared [`Tracer`] with nestable spans, monotonic
//! counters, and gauges, and exports either a Chrome-trace JSON (open it in
//! [Perfetto](https://ui.perfetto.dev)) or a human-readable summary with
//! self/total time, count, and p50/p95 per span name.
//!
//! Instrumentation is compiled into the hot paths permanently and gated at
//! runtime: when no tracer is installed, `span!`, [`counter_add`], and
//! [`gauge`] cost a single relaxed atomic load (&lt;10 ns) — see
//! `results/BENCH_trace.json`. Binaries enable it with the `SHELL_TRACE`
//! environment variable via [`init_from_env`].
//!
//! Events from shell-exec worker threads merge deterministically: each
//! thread records into a private shard and every event carries a
//! `(thread index, sequence)` pair. Summaries aggregate by span *name* with
//! order-independent statistics, so the [`SummaryMode::Normalized`] render
//! is byte-identical across `SHELL_JOBS` settings.
//!
//! # Example
//!
//! ```
//! use shell_trace::{SummaryMode, Summary, Tracer};
//!
//! shell_trace::install(Tracer::new());
//! {
//!     let _outer = shell_trace::span!("demo.outer");
//!     for i in 0..3 {
//!         let _inner = shell_trace::span!("demo.inner", iteration = i);
//!         shell_trace::counter_add("demo.items", 10);
//!     }
//!     shell_trace::gauge("demo.hpwl", 42.5);
//! }
//! let tracer = shell_trace::uninstall().unwrap();
//! let data = tracer.snapshot();
//! assert_eq!(data.span_count(), 4);
//! assert_eq!(data.counters, vec![("demo.items".to_string(), 30)]);
//!
//! let text = Summary::of(&data).render(SummaryMode::Normalized);
//! assert!(text.contains("demo.inner  count=3"));
//! // Chrome-trace JSON for Perfetto:
//! let json = shell_trace::chrome_trace(&data).to_string_pretty();
//! assert!(json.contains("\"traceEvents\""));
//! ```

mod chrome;
mod summary;
mod tracer;

pub use chrome::chrome_trace;
pub use summary::{GaugeRow, SpanRow, Summary, SummaryMode};
pub use tracer::{
    counter_add, current, enabled, gauge, init_from_env, install, span, span_arg, uninstall,
    GaugeEvent, Span, SpanEvent, ThreadTrace, TraceData, Tracer,
};

/// Opens a nestable span; the returned guard records the span when dropped.
///
/// ```
/// let _span = shell_trace::span!("route.negotiate");
/// let _with_arg = shell_trace::span!("attack.sat.dip", iteration = 3);
/// ```
///
/// With no tracer installed this is a single atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $key:ident = $value:expr) => {
        $crate::span_arg($name, stringify!($key), $value as f64)
    };
}

/// Writes the two trace artifacts for a snapshot into `dir`:
/// `{name}.json` (Chrome trace format) and `{name}.summary.txt` (timed
/// summary). Creates `dir` if needed and returns both paths.
pub fn write_artifacts(
    dir: &std::path::Path,
    name: &str,
    data: &TraceData,
) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{name}.json"));
    std::fs::write(&json_path, chrome_trace(data).to_string_pretty())?;
    let summary_path = dir.join(format!("{name}.summary.txt"));
    std::fs::write(&summary_path, Summary::of(data).render(SummaryMode::Timed))?;
    Ok((json_path, summary_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The tracer is process-global; tests that install one must not
    /// interleave.
    static GLOBAL_TRACER: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_fast_path_records_nothing() {
        let _lock = GLOBAL_TRACER.lock().unwrap();
        assert!(uninstall().is_none() || true); // ensure clean slate
        assert!(!enabled());
        let span = span!("noop");
        assert!(!span.is_recording());
        drop(span);
        counter_add("noop.counter", 5);
        gauge("noop.gauge", 1.0);
        assert!(current().is_none());
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        let _lock = GLOBAL_TRACER.lock().unwrap();
        install(Tracer::new());
        {
            let _outer = span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let data = uninstall().unwrap().snapshot();
        assert_eq!(data.span_count(), 2);
        let spans: Vec<_> = data.threads.iter().flat_map(|t| &t.spans).collect();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.dur_ns >= inner.dur_ns);
        // outer's self time excludes inner's duration
        assert_eq!(outer.self_ns, outer.dur_ns - inner.dur_ns);
    }

    #[test]
    fn counters_sum_across_threads() {
        let _lock = GLOBAL_TRACER.lock().unwrap();
        install(Tracer::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = span!("worker.step");
                    counter_add("worker.items", 3);
                });
            }
        });
        let data = uninstall().unwrap().snapshot();
        assert_eq!(data.span_count(), 4);
        assert_eq!(data.counters, vec![("worker.items".to_string(), 12)]);
        // every thread got its own shard
        assert_eq!(data.threads.len(), 4);
    }

    #[test]
    fn chrome_trace_round_trips_through_json_parser() {
        let _lock = GLOBAL_TRACER.lock().unwrap();
        install(Tracer::new());
        {
            let _s = span!("demo.span", iteration = 1);
            gauge("demo.gauge", 7.25);
        }
        let data = uninstall().unwrap().snapshot();
        let text = chrome_trace(&data).to_string_pretty();
        let parsed = shell_util::Json::parse(&text).expect("chrome trace parses");
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // metadata + 1 span + 1 gauge
        assert_eq!(events.len(), 3);
        let span_ev = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(span_ev.get("name").unwrap().as_str(), Some("demo.span"));
        assert_eq!(span_ev.get("cat").unwrap().as_str(), Some("demo"));
    }
}
