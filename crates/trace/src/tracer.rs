//! Tracer core: the shared event sink, per-thread shards, and span guards.
//!
//! Design constraints (see `OBSERVABILITY.md` at the repo root):
//!
//! * **No-op fast path.** Every recording entry point first checks a single
//!   process-global relaxed [`AtomicBool`]. When no tracer is installed the
//!   cost of `span!` / [`counter_add`] / [`gauge`] is one load plus a branch —
//!   well under 10 ns — so instrumentation can stay compiled into hot paths.
//! * **Thread-aware, deterministic merge.** Each thread that emits events
//!   registers a private shard with the tracer; events carry a per-thread
//!   sequence number, so a snapshot merges shards by `(thread index, seq)`
//!   without any cross-thread ordering dependence. Counter totals are
//!   order-independent sums, which is what keeps summaries byte-identical
//!   across `SHELL_JOBS` settings.
//! * **Scoped-thread safe.** shell-exec workers are short-lived scoped
//!   threads. A worker's thread-local state dies with it, but the tracer
//!   keeps an `Arc` to every registered shard, so nothing is lost and no
//!   lifetime gymnastics are needed.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// A closed (fully recorded) span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name, e.g. `"route.negotiate"`. Dots express the taxonomy.
    pub name: &'static str,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Total wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
    /// Duration minus the time spent in child spans on the same thread.
    pub self_ns: u64,
    /// Nesting depth on the recording thread (0 = top level).
    pub depth: u32,
    /// Per-thread monotonic sequence number (shared with gauges).
    pub seq: u64,
    /// Optional numeric argument, e.g. `("iteration", 7.0)`.
    pub arg: Option<(&'static str, f64)>,
}

/// A point-in-time gauge sample (e.g. HPWL after an anneal pass).
#[derive(Debug, Clone)]
pub struct GaugeEvent {
    /// Gauge name, e.g. `"place.hpwl"`.
    pub name: &'static str,
    /// Offset from the tracer's epoch, in nanoseconds.
    pub at_ns: u64,
    /// Sampled value.
    pub value: f64,
    /// Per-thread monotonic sequence number (shared with spans).
    pub seq: u64,
}

#[derive(Default)]
struct ShardData {
    spans: Vec<SpanEvent>,
    gauges: Vec<GaugeEvent>,
}

struct Shard {
    thread: usize,
    data: Mutex<ShardData>,
}

struct Inner {
    epoch: Instant,
    shards: Mutex<Vec<Arc<Shard>>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
}

/// A shareable tracing sink. Clones share the same underlying storage.
///
/// A `Tracer` only receives events while it is [`install`]ed as the process
/// tracer; construct one, install it around the region of interest, then
/// [`uninstall`] and inspect the [`Tracer::snapshot`].
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an empty tracer. Its epoch (time zero for all events) is the
    /// moment of construction.
    pub fn new() -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                shards: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    fn register_shard(&self) -> Arc<Shard> {
        let mut shards = self.inner.shards.lock().unwrap();
        let shard = Arc::new(Shard {
            thread: shards.len(),
            data: Mutex::new(ShardData::default()),
        });
        shards.push(Arc::clone(&shard));
        shard
    }

    /// Collects everything recorded so far into an immutable [`TraceData`].
    ///
    /// Shards are ordered by thread index and events within a shard by their
    /// sequence number, so two snapshots of identical workloads agree on
    /// everything except wall-clock timings.
    pub fn snapshot(&self) -> TraceData {
        let shards = self.inner.shards.lock().unwrap();
        let mut threads: Vec<ThreadTrace> = shards
            .iter()
            .map(|s| {
                let data = s.data.lock().unwrap();
                ThreadTrace {
                    thread: s.thread,
                    spans: data.spans.clone(),
                    gauges: data.gauges.clone(),
                }
            })
            .collect();
        threads.sort_by_key(|t| t.thread);
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        TraceData { threads, counters }
    }

    fn add_counter(&self, name: &'static str, delta: u64) {
        *self.inner.counters.lock().unwrap().entry(name).or_insert(0) += delta;
    }
}

/// An immutable snapshot of a [`Tracer`]'s recorded events.
#[derive(Debug, Clone)]
pub struct TraceData {
    /// Per-thread event streams, ordered by thread index.
    pub threads: Vec<ThreadTrace>,
    /// Monotonic counter totals, ordered by counter name.
    pub counters: Vec<(String, u64)>,
}

/// The events recorded by one thread, in emission order.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Registration index of the thread within the tracer.
    pub thread: usize,
    /// Closed spans, in close order (`seq` ascending).
    pub spans: Vec<SpanEvent>,
    /// Gauge samples, in emission order (`seq` ascending).
    pub gauges: Vec<GaugeEvent>,
}

impl TraceData {
    /// Total number of spans across all threads.
    pub fn span_count(&self) -> usize {
        self.threads.iter().map(|t| t.spans.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Process-global installation
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(1);
static CURRENT: OnceLock<RwLock<Option<Tracer>>> = OnceLock::new();

fn current_slot() -> &'static RwLock<Option<Tracer>> {
    CURRENT.get_or_init(|| RwLock::new(None))
}

/// Whether a tracer is currently installed. This is the no-op fast-path
/// check: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `tracer` as the process tracer, replacing any previous one.
///
/// Spans that are still open when the installed tracer changes are silently
/// discarded at close — they belong to neither tracer in full.
pub fn install(tracer: Tracer) {
    let mut slot = current_slot().write().unwrap();
    GENERATION.fetch_add(1, Ordering::Relaxed);
    *slot = Some(tracer);
    ENABLED.store(true, Ordering::Release);
}

/// Removes and returns the process tracer, disabling recording.
pub fn uninstall() -> Option<Tracer> {
    let mut slot = current_slot().write().unwrap();
    ENABLED.store(false, Ordering::Release);
    GENERATION.fetch_add(1, Ordering::Relaxed);
    slot.take()
}

/// A clone of the currently installed tracer, if any.
pub fn current() -> Option<Tracer> {
    if !enabled() {
        return None;
    }
    current_slot().read().unwrap().clone()
}

/// Installs a fresh tracer when the `SHELL_TRACE` environment variable is
/// set to anything other than `""` or `"0"`. Returns whether tracing was
/// enabled. Call this once at the top of a binary's `main`.
pub fn init_from_env() -> bool {
    match std::env::var("SHELL_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" => {
            install(Tracer::new());
            true
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Thread-local recording state
// ---------------------------------------------------------------------------

struct OpenFrame {
    child_ns: u64,
}

struct Local {
    generation: u64,
    tracer: Tracer,
    shard: Arc<Shard>,
    stack: Vec<OpenFrame>,
    seq: u64,
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's recording state for the current tracer,
/// registering a shard on first use. Returns `None` when no tracer is
/// installed (lost the race with `uninstall`).
fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> Option<R> {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let gen = GENERATION.load(Ordering::Relaxed);
        if slot.as_ref().map(|l| l.generation) != Some(gen) {
            let tracer = current_slot().read().unwrap().clone()?;
            let shard = tracer.register_shard();
            *slot = Some(Local {
                generation: gen,
                tracer,
                shard,
                stack: Vec::new(),
                seq: 0,
            });
        }
        slot.as_mut().map(f)
    })
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

struct ActiveSpan {
    name: &'static str,
    arg: Option<(&'static str, f64)>,
    generation: u64,
    start_ns: u64,
    depth: u32,
}

/// An RAII span guard: the span closes (and records its event) on drop.
///
/// Obtained from [`span`], [`span_arg`], or the [`crate::span!`] macro. When
/// tracing is disabled the guard is inert and free to drop.
#[must_use = "a span records its duration when dropped; bind it with `let _span = ...`"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Span {
    /// An inert guard that records nothing. Useful as a placeholder.
    pub fn disabled() -> Span {
        Span { active: None }
    }

    /// Whether this guard will record an event on drop.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

fn open_span(name: &'static str, arg: Option<(&'static str, f64)>) -> Span {
    let active = with_local(|local| {
        let start_ns = local.tracer.inner.epoch.elapsed().as_nanos() as u64;
        local.stack.push(OpenFrame { child_ns: 0 });
        ActiveSpan {
            name,
            arg,
            generation: local.generation,
            start_ns,
            depth: (local.stack.len() - 1) as u32,
        }
    });
    Span { active }
}

/// Opens a span named `name`. Prefer the [`crate::span!`] macro.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    open_span(name, None)
}

/// Opens a span with one numeric argument (e.g. a DIP iteration index).
#[inline]
pub fn span_arg(name: &'static str, key: &'static str, value: f64) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    open_span(name, Some((key, value)))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        LOCAL.with(|cell| {
            let mut slot = cell.borrow_mut();
            let Some(local) = slot.as_mut() else { return };
            if local.generation != active.generation {
                return; // tracer swapped while the span was open: discard
            }
            let Some(frame) = local.stack.pop() else { return };
            let end_ns = local.tracer.inner.epoch.elapsed().as_nanos() as u64;
            let dur_ns = end_ns.saturating_sub(active.start_ns);
            if let Some(parent) = local.stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            let seq = local.seq;
            local.seq += 1;
            local.shard.data.lock().unwrap().spans.push(SpanEvent {
                name: active.name,
                start_ns: active.start_ns,
                dur_ns,
                self_ns: dur_ns.saturating_sub(frame.child_ns),
                depth: active.depth,
                seq,
                arg: active.arg,
            });
        });
    }
}

// ---------------------------------------------------------------------------
// Counters and gauges
// ---------------------------------------------------------------------------

/// Adds `delta` to the monotonic counter `name`.
///
/// Counter totals are plain sums and therefore independent of thread
/// interleaving — the property that keeps normalized summaries identical
/// across `SHELL_JOBS` settings. Call this with batched deltas at span
/// boundaries (e.g. a solver's conflict delta per solve), never inside an
/// inner loop.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    if let Some(t) = with_local(|local| local.tracer.clone()) {
        t.add_counter(name, delta);
    }
}

/// Records a point-in-time sample of gauge `name`.
///
/// Summaries aggregate gauges by count/min/max only — those are the
/// order-independent statistics, so gauge output stays deterministic when
/// samples arrive from parallel workers.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_local(|local| {
        let at_ns = local.tracer.inner.epoch.elapsed().as_nanos() as u64;
        let seq = local.seq;
        local.seq += 1;
        local.shard.data.lock().unwrap().gauges.push(GaugeEvent {
            name,
            at_ns,
            value,
            seq,
        });
    });
}
