//! Chrome trace event format export (loadable in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! Spans become `"ph": "X"` complete events with microsecond `ts`/`dur`;
//! gauges become `"ph": "C"` counter events; monotonic counter totals ride
//! along in a top-level `"counters"` object. All events share `pid` 1 and
//! use the tracer's per-thread registration index as `tid`.

use crate::tracer::TraceData;
use shell_util::Json;

/// Converts a snapshot to a Chrome trace JSON document.
pub fn chrome_trace(data: &TraceData) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(Json::obj([
        ("name", Json::Str("process_name".into())),
        ("ph", Json::Str("M".into())),
        ("pid", Json::Num(1.0)),
        ("tid", Json::Num(0.0)),
        (
            "args",
            Json::obj([("name", Json::Str("shell-lock".into()))]),
        ),
    ]));
    for t in &data.threads {
        let tid = t.thread as f64;
        for s in &t.spans {
            let mut args: Vec<(String, Json)> = Vec::new();
            if let Some((key, value)) = s.arg {
                args.push((key.to_string(), Json::Num(value)));
            }
            events.push(Json::obj([
                ("name", Json::Str(s.name.into())),
                ("cat", Json::Str(category(s.name).into())),
                ("ph", Json::Str("X".into())),
                ("ts", Json::Num(s.start_ns as f64 / 1e3)),
                ("dur", Json::Num(s.dur_ns as f64 / 1e3)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(tid)),
                ("args", Json::Obj(args)),
            ]));
        }
        for g in &t.gauges {
            events.push(Json::obj([
                ("name", Json::Str(g.name.into())),
                ("cat", Json::Str(category(g.name).into())),
                ("ph", Json::Str("C".into())),
                ("ts", Json::Num(g.at_ns as f64 / 1e3)),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(tid)),
                (
                    "args",
                    Json::obj([("value", Json::Num(g.value))]),
                ),
            ]));
        }
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
        (
            "counters",
            Json::Obj(
                data.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
    ])
}

/// The top-level component of a dotted event name (`"route.negotiate"` →
/// `"route"`), used as the Chrome `cat` field.
fn category(name: &str) -> &str {
    name.split('.').next().unwrap_or(name)
}
