//! Typed transient-vs-permanent IO errors and a bounded retry/backoff
//! ladder.
//!
//! The durable layer distinguishes faults that *can clear* (an interrupted
//! syscall, a timeout, a disk that frees up) from faults that *cannot*
//! (missing file, permission denied, corrupt data). Transient faults earn a
//! short, bounded exponential-backoff ladder; permanent faults surface
//! immediately. Every attempt is journaled as a [`RetryAttempt`] — the same
//! shape as shell-lock's `AttemptRecord` ladder, so operators read one
//! retry idiom across the whole workspace.

use shell_util::Json;
use std::io;
use std::time::Duration;

/// Whether an IO error is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// The condition can clear on its own: retry with backoff.
    Transient,
    /// Retrying cannot help: surface immediately.
    Permanent,
}

impl ErrorClass {
    /// Stable lowercase label for logs and journals.
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Transient => "transient",
            ErrorClass::Permanent => "permanent",
        }
    }
}

/// Classifies an IO error. Interrupted reads/writes, timeouts, and ENOSPC
/// (space is routinely reclaimed by eviction or log rotation) are
/// transient; everything else — including corrupt data, which a retry
/// would only re-read — is permanent.
pub fn classify(err: &io::Error) -> ErrorClass {
    use io::ErrorKind::*;
    match err.kind() {
        Interrupted | WouldBlock | TimedOut | StorageFull | ResourceBusy | QuotaExceeded => {
            ErrorClass::Transient
        }
        _ => ErrorClass::Permanent,
    }
}

/// One rung of the retry ladder, journaled for observability.
#[derive(Debug, Clone)]
pub struct RetryAttempt {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The error that ended this attempt (`None` = success).
    pub error: Option<String>,
    /// Classification of that error.
    pub class: Option<ErrorClass>,
    /// Backoff slept *before* the next attempt, in microseconds.
    pub backoff_us: u64,
}

impl RetryAttempt {
    /// JSON shape mirroring shell-lock's `AttemptRecord`:
    /// `{attempt, ok, error?, class?, backoff_us}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("attempt", Json::from(u64::from(self.attempt))),
            ("ok", Json::from(self.error.is_none())),
        ];
        if let Some(err) = &self.error {
            fields.push(("error", Json::from(err.clone())));
        }
        if let Some(class) = self.class {
            fields.push(("class", Json::from(class.label())));
        }
        fields.push(("backoff_us", Json::from(self.backoff_us)));
        Json::obj(fields)
    }
}

/// A bounded exponential-backoff ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first). 1 = no retries.
    pub attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Backoff cap; doubling stops here.
    pub max: Duration,
}

impl Default for RetryPolicy {
    /// 4 attempts, 1ms base doubling to a 20ms cap — tuned for local-disk
    /// transients, cheap enough to sit on every durable commit.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(1),
            max: Duration::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (tests, or latency-critical paths).
    pub fn none() -> RetryPolicy {
        RetryPolicy { attempts: 1, base: Duration::ZERO, max: Duration::ZERO }
    }

    /// Backoff slept after the `attempt`-th failure (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let doubled = self
            .base
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20));
        doubled.min(self.max)
    }
}

/// Runs `op` under `policy`, retrying transient errors with backoff and
/// journaling every rung into `ladder`. Emits `chaos.retries` per retry and
/// `chaos.retry_giveups` when the ladder is exhausted.
///
/// # Errors
///
/// The first permanent error, or the last transient error once `attempts`
/// is exhausted.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    ladder: &mut Vec<RetryAttempt>,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match op() {
            Ok(value) => {
                ladder.push(RetryAttempt {
                    attempt,
                    error: None,
                    class: None,
                    backoff_us: 0,
                });
                return Ok(value);
            }
            Err(err) => {
                let class = classify(&err);
                let exhausted = class == ErrorClass::Permanent || attempt >= policy.attempts;
                let backoff = if exhausted { Duration::ZERO } else { policy.backoff(attempt) };
                ladder.push(RetryAttempt {
                    attempt,
                    error: Some(err.to_string()),
                    class: Some(class),
                    backoff_us: backoff.as_micros() as u64,
                });
                if exhausted {
                    if class == ErrorClass::Transient {
                        shell_trace::counter_add("chaos.retry_giveups", 1);
                    }
                    return Err(err);
                }
                shell_trace::counter_add("chaos.retries", 1);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_taxonomy() {
        let transient = io::Error::new(io::ErrorKind::Interrupted, "eintr");
        let enospc = io::Error::new(io::ErrorKind::StorageFull, "enospc");
        let permanent = io::Error::new(io::ErrorKind::NotFound, "missing");
        let corrupt = io::Error::new(io::ErrorKind::InvalidData, "torn");
        assert_eq!(classify(&transient), ErrorClass::Transient);
        assert_eq!(classify(&enospc), ErrorClass::Transient);
        assert_eq!(classify(&permanent), ErrorClass::Permanent);
        assert_eq!(classify(&corrupt), ErrorClass::Permanent);
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let mut failures_left = 2;
        let mut ladder = Vec::new();
        let policy = RetryPolicy { base: Duration::ZERO, ..RetryPolicy::default() };
        let out = with_retry(&policy, &mut ladder, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(42)
            }
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(ladder.len(), 3);
        assert!(ladder[0].error.is_some() && ladder[2].error.is_none());
        assert_eq!(ladder[0].class, Some(ErrorClass::Transient));
    }

    #[test]
    fn permanent_errors_fail_fast() {
        let mut calls = 0;
        let mut ladder = Vec::new();
        let err = with_retry(&RetryPolicy::default(), &mut ladder, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "denied"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(calls, 1, "permanent errors must not retry");
        assert_eq!(ladder.len(), 1);
    }

    #[test]
    fn ladder_is_bounded_and_reports_giveup() {
        let mut calls = 0;
        let mut ladder = Vec::new();
        let policy = RetryPolicy { attempts: 3, base: Duration::ZERO, max: Duration::ZERO };
        let err = with_retry(&policy, &mut ladder, || -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "stuck"))
        })
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(calls, 3);
        assert_eq!(ladder.len(), 3);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            attempts: 8,
            base: Duration::from_millis(1),
            max: Duration::from_millis(20),
        };
        assert_eq!(policy.backoff(1), Duration::from_millis(1));
        assert_eq!(policy.backoff(2), Duration::from_millis(2));
        assert_eq!(policy.backoff(5), Duration::from_millis(16));
        assert_eq!(policy.backoff(6), Duration::from_millis(20));
        assert_eq!(policy.backoff(30), Duration::from_millis(20));
    }

    #[test]
    fn attempt_json_mirrors_attempt_record_shape() {
        let rung = RetryAttempt {
            attempt: 2,
            error: Some("eintr".into()),
            class: Some(ErrorClass::Transient),
            backoff_us: 2000,
        };
        let doc = rung.to_json();
        assert_eq!(doc.get("attempt").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("class").and_then(Json::as_str), Some("transient"));
        assert_eq!(doc.get("backoff_us").and_then(Json::as_u64), Some(2000));
    }
}
