//! The durable-commit discipline: atomic publication and a write-ahead
//! intent journal with a recovery scan.
//!
//! ## Why two layers
//!
//! [`atomic_write`] (temp file in the same directory, fsync, rename) is
//! enough for *self-describing* files whose loss is tolerable — an attack
//! checkpoint that fails to parse simply resumes from scratch. The journal
//! adds the stronger guarantee the job queue and artifact cache need:
//! after a crash at **any** primitive operation of a commit, recovery
//! restores the target to exactly the old value or exactly the new value.
//!
//! ## Commit sequence
//!
//! ```text
//! 1. write  journal/<id>.intent   { target, len, fnv }     (write-ahead)
//! 2. sync   journal/<id>.intent
//! 3. write  journal/<id>.tmp      <the new bytes>
//! 4. sync   journal/<id>.tmp
//! 5. rename journal/<id>.tmp  ->  target                   (atomic publish)
//! 6. remove journal/<id>.intent                            (commit complete)
//! ```
//!
//! ## Recovery
//!
//! A lingering `.intent` means the process died between steps 1 and 6:
//!
//! * Intent unreadable/unparseable → death during step 1: the target was
//!   never touched. Drop the intent (**rollback**, old value stands).
//! * Intent parseable, target's bytes match the recorded length + FNV →
//!   death after step 5: the publish happened. Drop the intent (**roll
//!   forward**, new value stands).
//! * Anything else → death before the rename landed: the target still
//!   holds the old value (or never existed). Drop the intent and the temp
//!   file (**rollback**).
//!
//! Torn bytes can only ever live in `.tmp`/`.intent` files inside the
//! journal directory, and the scan removes all of them — so a recovered
//! tree contains no hybrid state anywhere. `tests/prop_atomic.rs` proves
//! the old-or-new property for arbitrary seeded crash points.

use crate::io::{read_string, Io};
use shell_util::Json;
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Extension of write-ahead intent entries inside a journal directory.
pub const INTENT_EXT: &str = "intent";
/// Extension of in-flight temp files (journal directory and
/// [`atomic_write`] targets alike).
pub const TMP_EXT: &str = "tmp";

/// FNV-1a 64-bit over `bytes` — the journal's content fingerprint. Not
/// cryptographic (the artifact cache layers SHA-256 integrity on top); it
/// only has to distinguish a completed publish from a missing one.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Atomically publishes `bytes` at `path`: same-directory temp file, fsync,
/// rename. A reader (or a crash) never observes a torn `path` — only the
/// old content, the new content, or temp litter swept by [`sweep_tmp`].
///
/// # Errors
///
/// Filesystem errors from any step; on error the target is untouched.
pub fn atomic_write(io: &dyn Io, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        io.create_dir_all(dir)?;
    }
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::new(ErrorKind::InvalidInput, "atomic_write: no file name"))?;
    let tmp = path.with_file_name(format!(".{name}.{}.{TMP_EXT}", std::process::id()));
    io.write(&tmp, bytes)?;
    io.sync(&tmp)?;
    io.rename(&tmp, path)
}

/// Removes stale temp litter (`*.tmp`, [`atomic_write`]'s hidden temps)
/// from one directory. Run at startup, before any reader walks the tree.
/// Returns how many files were swept.
pub fn sweep_tmp(io: &dyn Io, dir: &Path) -> usize {
    let Ok(entries) = io.list_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for path in entries {
        let is_tmp = path
            .extension()
            .and_then(|e| e.to_str())
            .is_some_and(|e| e == TMP_EXT);
        if is_tmp && io.remove_file(&path).is_ok() {
            swept += 1;
            shell_trace::counter_add("journal.tmp_swept", 1);
        }
    }
    swept
}

/// What a [`Journal::recover`] scan did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Commits whose publish had landed: intent dropped, new value kept.
    pub rolled_forward: usize,
    /// Commits undone: intent (and temp) dropped, old value kept.
    pub rolled_back: usize,
    /// Temp files swept from the journal directory.
    pub tmp_swept: usize,
}

impl RecoveryReport {
    /// Total interrupted commits the scan resolved.
    pub fn interrupted(&self) -> usize {
        self.rolled_forward + self.rolled_back
    }
}

/// A write-ahead intent journal governing atomic commits to targets
/// anywhere on the same filesystem. One journal directory per durable
/// subsystem (job queue, artifact cache); commits may run concurrently —
/// intent ids are derived from target path and content so two writers of
/// the same artifact collide harmlessly.
#[derive(Debug, Clone)]
pub struct Journal {
    io: Arc<dyn Io>,
    dir: PathBuf,
}

impl Journal {
    /// Opens (creating) the journal directory.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(io: Arc<dyn Io>, dir: impl Into<PathBuf>) -> io::Result<Journal> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        Ok(Journal { io, dir })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn intent_id(target: &Path, bytes: &[u8]) -> String {
        let mut tag = fnv64(target.as_os_str().as_encoded_bytes());
        tag ^= fnv64(bytes).rotate_left(1);
        format!("{tag:016x}")
    }

    /// Commits `bytes` to `target` under write-ahead intent (see the module
    /// docs for the exact sequence and its crash-recovery contract).
    ///
    /// # Errors
    ///
    /// Filesystem errors from any step. On error the target holds either
    /// its old value or the new one — never a hybrid — and a later
    /// [`Journal::recover`] resolves the lingering intent.
    pub fn commit(&self, target: &Path, bytes: &[u8]) -> io::Result<()> {
        let id = Self::intent_id(target, bytes);
        let intent_path = self.dir.join(format!("{id}.{INTENT_EXT}"));
        let tmp_path = self.dir.join(format!("{id}.{TMP_EXT}"));
        let intent = Json::obj([
            ("target", Json::from(target.display().to_string())),
            ("len", Json::from(bytes.len())),
            ("fnv", Json::from(format!("{:016x}", fnv64(bytes)))),
        ]);
        if let Some(parent) = target.parent().filter(|p| !p.as_os_str().is_empty()) {
            self.io.create_dir_all(parent)?;
        }
        self.io.write(&intent_path, intent.to_string_pretty().as_bytes())?;
        self.io.sync(&intent_path)?;
        self.io.write(&tmp_path, bytes)?;
        self.io.sync(&tmp_path)?;
        self.io.rename(&tmp_path, target)?;
        self.io.remove_file(&intent_path)?;
        shell_trace::counter_add("journal.commits", 1);
        Ok(())
    }

    /// Startup recovery scan: resolves every lingering intent (roll forward
    /// or roll back) and sweeps temp litter. Idempotent; call before any
    /// reader touches journaled targets.
    pub fn recover(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let Ok(entries) = self.io.list_dir(&self.dir) else {
            return report;
        };
        for path in &entries {
            let ext = path.extension().and_then(|e| e.to_str());
            if ext != Some(INTENT_EXT) {
                continue;
            }
            if self.resolve_intent(path) {
                report.rolled_forward += 1;
                shell_trace::counter_add("journal.rolled_forward", 1);
            } else {
                report.rolled_back += 1;
                shell_trace::counter_add("journal.rolled_back", 1);
            }
            let _ = self.io.remove_file(path);
        }
        report.tmp_swept = sweep_tmp(&*self.io, &self.dir);
        report
    }

    /// Returns `true` when the intent's publish had completed (the target
    /// holds exactly the recorded bytes) — roll forward. `false` means
    /// roll back; any half-written temp for this intent is removed.
    fn resolve_intent(&self, intent_path: &Path) -> bool {
        let parsed = read_string(&*self.io, intent_path)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|doc| {
                Some((
                    PathBuf::from(doc.get("target")?.as_str()?),
                    doc.get("len")?.as_u64()? as usize,
                    doc.get("fnv")?.as_str()?.to_string(),
                ))
            });
        let Some((target, len, fnv)) = parsed else {
            // Torn intent: death during the write-ahead itself, before the
            // target could possibly have been touched.
            return false;
        };
        match self.io.read(&target) {
            Ok(bytes) if bytes.len() == len && format!("{:016x}", fnv64(&bytes)) == fnv => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{ChaosConfig, ChaosIo, RealIo};
    use std::sync::atomic::{AtomicU64, Ordering};

    static UNIQUE: AtomicU64 = AtomicU64::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shell_chaos_commit_{tag}_{}_{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_publishes_and_leaves_no_litter() {
        let dir = tmp_dir("atomic");
        let io = RealIo;
        let target = dir.join("value.json");
        atomic_write(&io, &target, b"first").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first");
        atomic_write(&io, &target, b"second").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second");
        let listed = io.list_dir(&dir).unwrap();
        assert_eq!(listed, vec![target.clone()], "no temp litter: {listed:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_commit_round_trips_and_clears_intents() {
        let dir = tmp_dir("commit");
        let journal = Journal::open(crate::io::real(), dir.join("journal")).unwrap();
        let target = dir.join("state").join("x.json");
        journal.commit(&target, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"{\"v\":1}");
        assert!(
            RealIo.list_dir(journal.dir()).unwrap().is_empty(),
            "a completed commit leaves an empty journal"
        );
        // Recovery on a clean journal is a no-op.
        assert_eq!(journal.recover(), RecoveryReport::default());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Crash at every primitive op of one commit: recovery must leave the
    /// target at exactly the old or exactly the new bytes.
    #[test]
    fn every_crash_point_recovers_to_old_or_new() {
        let old = b"OLD-OLD-OLD".to_vec();
        let new = b"NEW!NEW!NEW!NEW!".to_vec();
        for crash_at in 0..12u64 {
            for seed in [1u64, 0xBEEF, 0x5EED] {
                let dir = tmp_dir(&format!("xp_{crash_at}_{seed:x}"));
                let target = dir.join("state").join("value.bin");
                // Clean baseline commit of the old value.
                let calm = Journal::open(crate::io::real(), dir.join("journal")).unwrap();
                calm.commit(&target, &old).unwrap();
                // Crashing commit of the new value.
                let chaos = Arc::new(ChaosIo::new(ChaosConfig::crash_at(seed, crash_at)));
                let journal = Journal::open(chaos.clone() as Arc<dyn Io>, dir.join("journal"));
                let outcome = journal.and_then(|j| j.commit(&target, &new).map(|()| j));
                let crashed = chaos.crashed();
                // Recovery runs on a fresh process (real IO).
                let recovered = Journal::open(crate::io::real(), dir.join("journal")).unwrap();
                recovered.recover();
                let observed = std::fs::read(&target).unwrap();
                if outcome.is_ok() {
                    assert!(!crashed, "commit cannot succeed after crashing");
                    assert_eq!(observed, new);
                } else {
                    assert!(
                        observed == old || observed == new,
                        "crash at op {crash_at} (seed {seed:#x}) left a hybrid: {observed:?}"
                    );
                }
                assert!(
                    RealIo.list_dir(&dir.join("journal")).unwrap().is_empty(),
                    "recovery must clear the journal"
                );
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }

    #[test]
    fn torn_intent_rolls_back_without_touching_target() {
        let dir = tmp_dir("torn_intent");
        let journal = Journal::open(crate::io::real(), dir.join("journal")).unwrap();
        let target = dir.join("t.json");
        journal.commit(&target, b"stable").unwrap();
        // Hand-craft a torn intent (prefix of valid JSON).
        std::fs::write(
            journal.dir().join(format!("deadbeef.{INTENT_EXT}")),
            b"{\n  \"target\": \"/nope",
        )
        .unwrap();
        let report = journal.recover();
        assert_eq!(report.rolled_back, 1);
        assert_eq!(std::fs::read(&target).unwrap(), b"stable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_publish_with_lingering_intent_rolls_forward() {
        let dir = tmp_dir("forward");
        let target = dir.join("t.json");
        std::fs::write(&target, b"the-new-value").unwrap();
        let journal = Journal::open(crate::io::real(), dir.join("journal")).unwrap();
        let intent = Json::obj([
            ("target", Json::from(target.display().to_string())),
            ("len", Json::from(b"the-new-value".len())),
            ("fnv", Json::from(format!("{:016x}", fnv64(b"the-new-value")))),
        ]);
        std::fs::write(
            journal.dir().join(format!("cafe.{INTENT_EXT}")),
            intent.to_string_pretty(),
        )
        .unwrap();
        let report = journal.recover();
        assert_eq!(report.rolled_forward, 1);
        assert_eq!(std::fs::read(&target).unwrap(), b"the-new-value");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_tmp_removes_only_temp_litter() {
        let dir = tmp_dir("sweep");
        std::fs::write(dir.join("keep.json"), b"{}").unwrap();
        std::fs::write(dir.join("drop.tmp"), b"partial").unwrap();
        std::fs::write(dir.join(".hidden.9.tmp"), b"partial").unwrap();
        assert_eq!(sweep_tmp(&RealIo, &dir), 2);
        assert!(dir.join("keep.json").exists());
        assert!(!dir.join("drop.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
