//! # shell-chaos — deterministic IO fault injection and durable-commit discipline
//!
//! The locking service's crash-recovery story is only as strong as the
//! worst filesystem behavior it survives. This crate supplies both sides of
//! that proof:
//!
//! * **An [`Io`] seam** ([`io`]): the handful of filesystem primitives the
//!   durable state layer is allowed to use (read, write, fsync, rename,
//!   remove, list, mkdir). Production code runs [`RealIo`]; tests swap in
//!   [`ChaosIo`], a seeded shim that injects torn/partial writes, ENOSPC,
//!   fsync failure, transient read faults, and — the centerpiece — a
//!   **crash at the N-th mutating operation**: the operation applies
//!   *partially* (a prefix of the bytes, a coin-flipped rename) and every
//!   subsequent operation fails, exactly as a process killed mid-syscall
//!   would leave the disk.
//! * **A commit discipline** ([`commit`]): [`atomic_write`] (temp file +
//!   fsync + rename, never a torn target) and [`Journal`], a write-ahead
//!   intent journal whose recovery scan rolls every interrupted commit
//!   forward (intent present, target bytes verify) or back (anything
//!   else), so the observable state of a journaled target is always the
//!   old value or the new value — never a hybrid. The property test in
//!   `tests/prop_atomic.rs` pins exactly that, over arbitrary seeded crash
//!   points, with shrinking.
//! * **A retry taxonomy** ([`retry`]): [`classify`] splits IO errors into
//!   [`ErrorClass::Transient`] (interrupted, timeout, ENOSPC — worth
//!   retrying, the condition can clear) and [`ErrorClass::Permanent`];
//!   [`with_retry`] runs a bounded exponential-backoff ladder and journals
//!   every attempt as an [`RetryAttempt`] — the same shape as shell-lock's
//!   `AttemptRecord` ladder, so operators read one retry idiom everywhere.
//!
//! Everything is deterministic from a seed: the same `(seed, crash_at)`
//! pair reproduces the same torn bytes and the same recovery, which is what
//! lets the crash-point matrix in `shell-serve` enumerate every durable
//! commit step and assert byte-identical recovery at each one.
//!
//! The whole-file commit primitive through the production [`Io`]:
//!
//! ```
//! use shell_chaos::{atomic_write, read_string, real};
//!
//! let io = real();
//! let path = std::env::temp_dir().join(format!("shell_chaos_doc_{}.json", std::process::id()));
//! // Temp file + fsync + rename: readers see the old bytes or these, never a tear.
//! atomic_write(io.as_ref(), &path, b"{\"ok\": true}")?;
//! assert_eq!(read_string(io.as_ref(), &path)?, "{\"ok\": true}");
//! std::fs::remove_file(&path)?;
//! # Ok::<(), std::io::Error>(())
//! ```

pub mod commit;
pub mod io;
pub mod retry;

pub use commit::{atomic_write, sweep_tmp, Journal, RecoveryReport, INTENT_EXT, TMP_EXT};
pub use io::{read_string, real, ChaosConfig, ChaosIo, Io, RealIo};
pub use retry::{classify, with_retry, ErrorClass, RetryAttempt, RetryPolicy};
