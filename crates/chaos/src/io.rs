//! The filesystem seam: a small [`Io`] trait, the production [`RealIo`],
//! and the fault-injecting [`ChaosIo`].
//!
//! The trait is deliberately primitive — one method per syscall-shaped
//! operation, no compound helpers — because fault injection points live
//! *between* primitives: a torn write is a `write` that kept a prefix, a
//! crash between temp-write and rename is a death at the op boundary. Any
//! compound operation (atomic publish, journaled commit) is built on top in
//! [`crate::commit`], where every constituent step is individually
//! interruptible.

use shell_util::split_mix64;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The filesystem operations durable state is allowed to perform.
///
/// Implementations must be thread-safe: the job server calls them from the
/// accept thread, every worker, and the recovery scan.
pub trait Io: Send + Sync + std::fmt::Debug {
    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// Missing files, permission failures, injected faults.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates/truncates `path` and writes `bytes`.
    ///
    /// # Errors
    ///
    /// Filesystem errors and injected faults (torn writes report success to
    /// nobody: the fault model is a crash, so the caller never sees them).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Flushes `path`'s data to stable storage (fsync).
    ///
    /// # Errors
    ///
    /// Filesystem errors and injected sync failures.
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same filesystem).
    ///
    /// # Errors
    ///
    /// Filesystem errors and injected faults.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Filesystem errors and injected faults.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Creates a directory and all missing parents.
    ///
    /// # Errors
    ///
    /// Filesystem errors and injected faults.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Lists a directory's entries, sorted (determinism: recovery must
    /// process entries in the same order on every run).
    ///
    /// # Errors
    ///
    /// Filesystem errors; a missing directory is an empty listing.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;

    /// Whether `path` exists. After an injected crash this reports `false`
    /// — a dead process observes nothing.
    fn exists(&self, path: &Path) -> bool;
}

/// Reads a file as UTF-8 text through an [`Io`].
///
/// # Errors
///
/// Read errors and invalid UTF-8 (as [`io::ErrorKind::InvalidData`]).
pub fn read_string(io: &dyn Io, path: &Path) -> io::Result<String> {
    let bytes = io.read(path)?;
    String::from_utf8(bytes).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not UTF-8: {e}", path.display()),
        )
    })
}

/// The production implementation: straight `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

/// A shared handle to the production [`RealIo`].
pub fn real() -> std::sync::Arc<dyn Io> {
    std::sync::Arc::new(RealIo)
}

impl Io for RealIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let entries = match std::fs::read_dir(path) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        paths.sort();
        Ok(paths)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// What a [`ChaosIo`] injects. All probabilities are per-mille (0..=1000)
/// and decided deterministically from `(seed, op index)`, so the same
/// configuration replays the same faults.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Root seed for every per-op decision.
    pub seed: u64,
    /// Die at this 0-indexed **mutating** operation: the op applies
    /// partially (prefix write, coin-flipped rename/remove), then every
    /// later operation — reads included — fails. `None` never crashes.
    pub crash_at: Option<u64>,
    /// Per-mille of mutating ops that fail with ENOSPC
    /// ([`io::ErrorKind::StorageFull`], classified transient).
    pub enospc_per_mille: u32,
    /// Per-mille of [`Io::sync`] calls that fail (classified transient).
    pub sync_fail_per_mille: u32,
    /// Per-mille of reads that fail with [`io::ErrorKind::Interrupted`]
    /// (the short-read model: the caller must retry, classified transient).
    pub short_read_per_mille: u32,
}

impl ChaosConfig {
    /// No injected faults at all — pure operation counting. The recording
    /// pass of a crash-point matrix runs calm to learn how many mutating
    /// ops a scenario performs.
    pub fn calm(seed: u64) -> Self {
        ChaosConfig {
            seed,
            crash_at: None,
            enospc_per_mille: 0,
            sync_fail_per_mille: 0,
            short_read_per_mille: 0,
        }
    }

    /// Calm until mutating op `at`, then crash (with partial application).
    pub fn crash_at(seed: u64, at: u64) -> Self {
        ChaosConfig {
            crash_at: Some(at),
            ..ChaosConfig::calm(seed)
        }
    }
}

/// Seeded fault-injecting [`Io`] over the real filesystem.
///
/// Mutating operations (`write`, `rename`, `remove_file`, `create_dir_all`,
/// `sync`) are numbered in call order; the number drives every injection
/// decision. After the configured crash the shim is **dead**: all
/// operations fail with a `"chaos: process crashed"` error and `exists`
/// reports false, modelling a killed process whose last syscall half
/// landed. The harness polls [`ChaosIo::crashed`] and tears the server
/// down the way a SIGKILL would.
#[derive(Debug)]
pub struct ChaosIo {
    config: ChaosConfig,
    real: RealIo,
    mutating_ops: AtomicU64,
    crashed: AtomicBool,
    injected: AtomicU64,
    torn: AtomicU64,
}

/// Decision word for op `index`: an independent SplitMix64 draw.
fn decide(seed: u64, index: u64, salt: u64) -> u64 {
    let mut s = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    split_mix64(&mut s)
}

fn crashed_error() -> io::Error {
    io::Error::other("chaos: process crashed")
}

impl ChaosIo {
    /// A new shim with `config`'s fault plan.
    pub fn new(config: ChaosConfig) -> Self {
        ChaosIo {
            config,
            real: RealIo,
            mutating_ops: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            injected: AtomicU64::new(0),
            torn: AtomicU64::new(0),
        }
    }

    /// Mutating operations performed so far (the crash-point index space).
    pub fn mutating_ops(&self) -> u64 {
        self.mutating_ops.load(Ordering::SeqCst)
    }

    /// Whether the configured crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Faults injected so far (ENOSPC, sync failures, short reads, the
    /// crash itself).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// Writes the crash left partially applied (a strict prefix kept).
    pub fn torn_writes(&self) -> u64 {
        self.torn.load(Ordering::SeqCst)
    }

    fn count_injected(&self, what: &'static str) {
        self.injected.fetch_add(1, Ordering::SeqCst);
        shell_trace::counter_add("chaos.injected", 1);
        shell_trace::counter_add(what, 1);
    }

    fn check_dead(&self) -> io::Result<()> {
        if self.crashed() {
            Err(crashed_error())
        } else {
            Ok(())
        }
    }

    /// Claims the next mutating-op index, deciding whether this op crashes
    /// or fails with ENOSPC. Returns `(index, decision_word, crash_now)`.
    fn mutating_op(&self) -> io::Result<(u64, u64, bool)> {
        self.check_dead()?;
        let index = self.mutating_ops.fetch_add(1, Ordering::SeqCst);
        shell_trace::counter_add("chaos.ops", 1);
        let word = decide(self.config.seed, index, 0x0A11_0C8A);
        if self.config.crash_at == Some(index) {
            self.crashed.store(true, Ordering::SeqCst);
            self.count_injected("chaos.crashes");
            return Ok((index, word, true));
        }
        if self.config.enospc_per_mille > 0
            && word % 1000 < u64::from(self.config.enospc_per_mille)
        {
            self.count_injected("chaos.enospc");
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "chaos: injected ENOSPC",
            ));
        }
        Ok((index, word, false))
    }
}

impl Io for ChaosIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_dead()?;
        if self.config.short_read_per_mille > 0 {
            // Reads get their own op counter so a read fault does not shift
            // the crash-point index space of the mutating ops.
            let index = self.mutating_ops.load(Ordering::SeqCst);
            let word = decide(self.config.seed, index, 0x5EAD ^ path.as_os_str().len() as u64);
            if word % 1000 < u64::from(self.config.short_read_per_mille) {
                self.count_injected("chaos.short_reads");
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "chaos: injected short read",
                ));
            }
        }
        self.real.read(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let (_, word, crash) = self.mutating_op()?;
        if crash {
            // The op the process died inside: a prefix of the bytes lands.
            let keep = (word as usize) % (bytes.len() + 1);
            let _ = self.real.write(path, &bytes[..keep]);
            if keep > 0 && keep < bytes.len() {
                self.torn.fetch_add(1, Ordering::SeqCst);
                shell_trace::counter_add("chaos.torn_writes", 1);
            }
            return Err(crashed_error());
        }
        self.real.write(path, bytes)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let (index, _, crash) = self.mutating_op()?;
        if crash {
            // Data not yet flushed may or may not be durable; the tmpfs
            // backing the tests never loses it, so the crash is just death.
            return Err(crashed_error());
        }
        if self.config.sync_fail_per_mille > 0 {
            let word = decide(self.config.seed, index, 0xF5F5_F517);
            if word % 1000 < u64::from(self.config.sync_fail_per_mille) {
                self.count_injected("chaos.sync_fails");
                // EINTR-shaped: the retry ladder classifies it transient.
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "chaos: injected fsync failure",
                ));
            }
        }
        self.real.sync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let (_, word, crash) = self.mutating_op()?;
        if crash {
            // Rename is atomic in the kernel: it either happened before the
            // death or it did not. Coin-flip which.
            if word & (1 << 20) == 0 {
                let _ = self.real.rename(from, to);
            }
            return Err(crashed_error());
        }
        self.real.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let (_, word, crash) = self.mutating_op()?;
        if crash {
            if word & (1 << 21) == 0 {
                let _ = self.real.remove_file(path);
            }
            return Err(crashed_error());
        }
        self.real.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let (_, word, crash) = self.mutating_op()?;
        if crash {
            if word & (1 << 22) == 0 {
                let _ = self.real.create_dir_all(path);
            }
            return Err(crashed_error());
        }
        self.real.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.check_dead()?;
        self.real.list_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        !self.crashed() && self.real.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    static UNIQUE: Counter = Counter::new(0);

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "shell_chaos_io_{tag}_{}_{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::SeqCst)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_round_trips_and_lists_sorted() {
        let dir = tmp_dir("real");
        let io = RealIo;
        io.write(&dir.join("b.txt"), b"bee").unwrap();
        io.write(&dir.join("a.txt"), b"ay").unwrap();
        assert_eq!(io.read(&dir.join("a.txt")).unwrap(), b"ay");
        let listed = io.list_dir(&dir).unwrap();
        assert_eq!(
            listed,
            vec![dir.join("a.txt"), dir.join("b.txt")],
            "listing must be sorted"
        );
        assert_eq!(io.list_dir(&dir.join("missing")).unwrap(), Vec::<PathBuf>::new());
        io.rename(&dir.join("a.txt"), &dir.join("c.txt")).unwrap();
        assert!(io.exists(&dir.join("c.txt")));
        io.remove_file(&dir.join("c.txt")).unwrap();
        assert!(!io.exists(&dir.join("c.txt")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_at_kills_every_later_op() {
        let dir = tmp_dir("crash");
        let io = ChaosIo::new(ChaosConfig::crash_at(7, 1));
        io.write(&dir.join("first"), b"ok").unwrap();
        let err = io.write(&dir.join("second"), b"dies").unwrap_err();
        assert!(err.to_string().contains("crashed"), "{err}");
        assert!(io.crashed());
        // Dead shim: even reads and existence checks fail.
        assert!(io.read(&dir.join("first")).is_err());
        assert!(!io.exists(&dir.join("first")));
        assert!(io.write(&dir.join("third"), b"x").is_err());
        // The real file from before the crash is intact on disk.
        assert_eq!(std::fs::read(dir.join("first")).unwrap(), b"ok");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_write_keeps_a_deterministic_prefix() {
        let payload = vec![0xABu8; 64];
        let observe = |seed: u64| {
            let dir = tmp_dir(&format!("torn_{seed}"));
            let io = ChaosIo::new(ChaosConfig::crash_at(seed, 0));
            let _ = io.write(&dir.join("t"), &payload);
            let kept = std::fs::read(dir.join("t")).map(|b| b.len()).unwrap_or(0);
            let _ = std::fs::remove_dir_all(&dir);
            kept
        };
        for seed in 0..16 {
            let a = observe(seed);
            let b = observe(seed);
            assert_eq!(a, b, "seed {seed}: torn length must be deterministic");
            assert!(a <= payload.len());
        }
        // Across seeds the prefix length varies (otherwise it is no model
        // of a torn write at all).
        let lens: std::collections::BTreeSet<usize> = (0..16).map(observe).collect();
        assert!(lens.len() > 1, "torn lengths never varied: {lens:?}");
    }

    #[test]
    fn enospc_is_deterministic_per_op_index() {
        let run = || {
            let dir = tmp_dir("enospc");
            let io = ChaosIo::new(ChaosConfig {
                enospc_per_mille: 400,
                ..ChaosConfig::calm(0xD15C)
            });
            let outcomes: Vec<bool> = (0..32)
                .map(|i| io.write(&dir.join(format!("f{i}")), b"x").is_ok())
                .collect();
            let _ = std::fs::remove_dir_all(&dir);
            outcomes
        };
        let a = run();
        assert_eq!(a, run(), "fault schedule must replay exactly");
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
        // ENOSPC is typed StorageFull so the retry ladder classifies it.
        let dir = tmp_dir("enospc_kind");
        let io = ChaosIo::new(ChaosConfig {
            enospc_per_mille: 1000,
            ..ChaosConfig::calm(1)
        });
        let err = io.write(&dir.join("f"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mutating_op_count_ignores_reads() {
        let dir = tmp_dir("count");
        let io = ChaosIo::new(ChaosConfig::calm(3));
        io.write(&dir.join("f"), b"x").unwrap();
        for _ in 0..5 {
            io.read(&dir.join("f")).unwrap();
            io.list_dir(&dir).unwrap();
            assert!(io.exists(&dir.join("f")));
        }
        assert_eq!(io.mutating_ops(), 1, "reads must not shift crash indices");
        io.sync(&dir.join("f")).unwrap();
        io.remove_file(&dir.join("f")).unwrap();
        assert_eq!(io.mutating_ops(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
