//! Property: for arbitrary seeded crash points during a journaled commit,
//! the observable state of the target is always the old value or the new
//! value — never a torn hybrid. Counterexamples shrink via
//! `shell_util::forall` down to the smallest (seed, crash op, payload)
//! triple that violates the invariant.

use shell_chaos::{ChaosConfig, ChaosIo, Io, Journal, RealIo};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "shell_chaos_prop_{tag}_{}_{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One experiment: commit `old` cleanly, then commit `new` under a ChaosIo
/// that crashes at mutating op `crash_at`, recover with real IO, and check
/// the target holds exactly `old` or exactly `new`.
fn run_case(seed: u64, crash_at: u64, old: &[u8], new: &[u8]) -> Result<(), String> {
    let dir = tmp_dir("case");
    let target = dir.join("state").join("value.bin");
    let journal_dir = dir.join("journal");

    let calm = Journal::open(shell_chaos::real(), &journal_dir)
        .map_err(|e| format!("open calm journal: {e}"))?;
    calm.commit(&target, old)
        .map_err(|e| format!("baseline commit: {e}"))?;

    let chaos = Arc::new(ChaosIo::new(ChaosConfig::crash_at(seed, crash_at)));
    let outcome = Journal::open(chaos.clone() as Arc<dyn Io>, &journal_dir)
        .and_then(|j| j.commit(&target, new));

    // Fresh process: recovery always runs on real IO.
    let recovered = Journal::open(shell_chaos::real(), &journal_dir)
        .map_err(|e| format!("reopen journal: {e}"))?;
    recovered.recover();

    let observed = std::fs::read(&target).map_err(|e| format!("read target: {e}"))?;
    let verdict = if outcome.is_ok() && observed != new {
        Err(format!(
            "commit reported success but target holds {} bytes != new",
            observed.len()
        ))
    } else if observed != old && observed != new {
        Err(format!(
            "torn state: {} bytes, neither old ({}) nor new ({})",
            observed.len(),
            old.len(),
            new.len()
        ))
    } else if !RealIo
        .list_dir(&journal_dir)
        .map_err(|e| format!("list journal: {e}"))?
        .is_empty()
    {
        Err("recovery left litter in the journal directory".into())
    } else {
        Ok(())
    };
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

#[test]
fn journaled_commit_is_old_or_new_under_arbitrary_crash_points() {
    // A journaled commit performs a bounded number of mutating ops (mkdir
    // ×2, intent write+sync, tmp write+sync, rename, intent remove = 8);
    // sampling crash points a little past that also covers "no crash".
    shell_util::forall(
        "journaled_commit_old_or_new",
        0x5EED_CA05,
        64,
        |rng| {
            let seed = rng.next_u64();
            let crash_at = rng.bounded(12);
            let old_len = rng.gen_range(0..48);
            let new_len = rng.gen_range(1..48);
            let old: Vec<u8> = (0..old_len).map(|_| rng.bounded(256) as u8).collect();
            let new: Vec<u8> = (0..new_len).map(|_| rng.bounded(256) as u8).collect();
            (seed, crash_at, old, new)
        },
        |(seed, crash_at, old, new)| run_case(*seed, *crash_at, old, new),
    );
}

#[test]
fn atomic_write_is_old_or_new_under_arbitrary_crash_points() {
    shell_util::forall(
        "atomic_write_old_or_new",
        0xA70_0717,
        64,
        |rng| (rng.next_u64(), rng.bounded(6)),
        |&(seed, crash_at)| {
            let dir = tmp_dir("aw");
            let target = dir.join("value.bin");
            let old = b"old-value".to_vec();
            let new = b"replacement-value".to_vec();
            shell_chaos::atomic_write(&RealIo, &target, &old)
                .map_err(|e| format!("baseline: {e}"))?;
            let chaos = ChaosIo::new(ChaosConfig::crash_at(seed, crash_at));
            let outcome = shell_chaos::atomic_write(&chaos, &target, &new);
            shell_chaos::sweep_tmp(&RealIo, &dir);
            let observed = std::fs::read(&target).map_err(|e| format!("read: {e}"))?;
            let verdict = if outcome.is_ok() && observed != new {
                Err("success but target is not the new value".into())
            } else if observed != old && observed != new {
                Err(format!("torn target: {} bytes", observed.len()))
            } else {
                Ok(())
            };
            let _ = std::fs::remove_dir_all(&dir);
            verdict
        },
    );
}
