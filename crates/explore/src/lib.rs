//! **shell-explore** — fabric design-space exploration for eFPGA redaction.
//!
//! The papers behind this repo agree the fabric parameters *are* the
//! security/cost dial of eFPGA logic locking: a bigger or stranger fabric
//! resists the SAT attack longer but ships more silicon. This crate makes
//! that trade-off measurable. A [`SweepGrid`] enumerates fabric
//! configurations (LUT arity, channel width, switch-box topology,
//! MUX-chain length, array-dimension floor); [`run_sweep`] pushes every
//! point through the full lock → overhead-pricing → budgeted-SAT-attack
//! flow on the `shell-exec` worker pool; [`pareto_front`] keeps the
//! non-dominated points (resilience vs area/power/delay); and
//! [`pick_fabric`] answers the ARIANNA-style question directly: *the
//! smallest fabric that survives attack budget B on this circuit*.
//!
//! Sweeps are deterministic (fixed seed, conflict-quota attack budgets,
//! index-ordered merges: the same inputs give byte-identical reports at
//! any `SHELL_JOBS`), journaled (each finished point is atomically
//! committed to `journal_dir`, so an interrupted sweep resumes instead of
//! restarting), budgeted (a sweep-level [`shell_guard::Budget`] is honored
//! between points and inside each lock flow) and traced (`explore.*`
//! spans/counters, see `OBSERVABILITY.md`).
//!
//! # Example
//!
//! A two-point sweep over chain length on a small mux tree, then the
//! auto-customizer verdict:
//!
//! ```
//! use shell_explore::{pick_from_report, run_sweep, SweepGrid, SweepOptions};
//!
//! let design = shell_circuits::mux_tree_circuit(4, 2);
//! let grid = SweepGrid {
//!     lut_k: vec![4],
//!     channel_width: vec![16],
//!     switchbox: vec![shell_explore::Switchbox::Mux4Tree],
//!     chain_len: vec![0, 4],
//!     min_dims: vec![(2, 2)],
//! };
//! let opts = SweepOptions {
//!     attack_quota: 2_000, // budget B: solver conflicts per point
//!     max_attack_iterations: 8,
//!     ..SweepOptions::default()
//! };
//! let report = run_sweep(&design, &grid, &opts).expect("sweep completes");
//! assert_eq!(report.points.len(), 2);
//! assert!(!report.front().is_empty(), "the front is never empty");
//! // The smallest fabric surviving budget B, if any point survived:
//! if let Some(pick) = pick_from_report(&report) {
//!     assert!(pick.verdict.survived());
//! }
//! ```

#![warn(missing_docs)]

pub mod customize;
pub mod grid;
pub mod pareto;
pub mod sweep;

pub use customize::{pick_fabric, pick_from_report};
pub use grid::{FabricPoint, Switchbox, SweepGrid, MAX_POINTS};
pub use pareto::{dominates, pareto_front, pareto_json, resilience_score};
pub use sweep::{
    run_sweep, PointResult, PointVerdict, SweepError, SweepOptions, SweepReport,
};
