//! The sweep driver: lock → attack → price every grid point on the
//! worker pool, journal each finished point, and survive interruption.

use crate::grid::{FabricPoint, SweepGrid};
use shell_attacks::{
    cyclic_reduction, sat_attack, scan_frame, try_scan_frame, SatAttackOptions, SatAttackOutcome,
};
use shell_chaos::{atomic_write, read_string, Io};
use shell_guard::{Budget, Exhausted};
use shell_lock::{evaluate_overhead, shell_lock_with_fabric, ShellOptions};
use shell_netlist::Netlist;
use shell_pnr::{PnrError, PnrOptions};
use shell_util::Json;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Journal schema version; a mismatch evicts the record and re-evaluates.
const JOURNAL_SCHEMA: u64 = 1;

/// Options of a sweep run.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// PnR seed used for every point.
    pub seed: u64,
    /// Budget *B*: solver-conflict quota of the per-point SAT attack. A
    /// point whose attack exhausts this quota counts as **survived**.
    pub attack_quota: u64,
    /// DIP-iteration cap of the per-point attack (structural timeout).
    pub max_attack_iterations: usize,
    /// Skip the shrink step on every point (ablation sweeps).
    pub skip_shrink: bool,
    /// Sweep-level budget. Its deadline and cancellation reach every
    /// point's lock flow and are re-checked between points; its quota is
    /// not consumed (per-point work is bounded by `attack_quota` and the
    /// PnR flow's structural caps instead, so one pathological fabric
    /// cannot starve the rest of the grid).
    pub budget: Budget,
    /// When set, every finished point is committed to
    /// `<dir>/point_<index>.json` via the atomic-commit primitive, and a
    /// later run with the same design/grid/options resumes from the
    /// journal instead of re-evaluating.
    pub journal_dir: Option<PathBuf>,
    /// Filesystem seam for the journal (swap in a `ChaosIo` to test
    /// crash/fault behavior).
    pub io: Arc<dyn Io>,
    /// Evaluate at most this many *unjournaled* points, then return
    /// [`SweepError::Interrupted`] — the deterministic stand-in for a
    /// mid-sweep kill in resume tests.
    pub point_limit: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            attack_quota: 20_000,
            max_attack_iterations: 24,
            skip_shrink: false,
            budget: Budget::from_env(),
            journal_dir: None,
            io: shell_chaos::real(),
            point_limit: None,
        }
    }
}

/// How a sweep run ended early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The grid failed validation.
    InvalidGrid(String),
    /// The sweep-level budget ran out; journaled points are preserved and
    /// a re-run with the same journal resumes from them.
    Exhausted(Exhausted),
    /// `point_limit` stopped the run before every point was evaluated.
    Interrupted {
        /// Points evaluated by this call (journal hits not counted).
        evaluated: usize,
        /// Points still missing a result.
        remaining: usize,
    },
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepError::InvalidGrid(m) => write!(f, "invalid grid: {m}"),
            SweepError::Exhausted(e) => write!(f, "sweep budget exhausted: {e}"),
            SweepError::Interrupted {
                evaluated,
                remaining,
            } => write!(f, "interrupted after {evaluated} points ({remaining} remaining)"),
        }
    }
}

impl std::error::Error for SweepError {}

/// Attack verdict of one point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointVerdict {
    /// The attack exhausted budget *B* — the fabric **survived**.
    Survived {
        /// DIP iterations completed.
        iterations: usize,
        /// Solver conflicts spent.
        conflicts: u64,
    },
    /// The attack terminated without a working key (unformable scan frame,
    /// frame-shape mismatch, or a non-functional extracted key) — survived
    /// for structural reasons rather than budget exhaustion.
    SurvivedStructural {
        /// DIP iterations completed.
        iterations: usize,
    },
    /// The attack recovered a working key within budget *B*.
    Broken {
        /// DIP iterations used.
        iterations: usize,
        /// Solver conflicts the break cost.
        conflicts: u64,
    },
    /// The lock flow itself failed (does not fit, unroutable, …); the
    /// point carries no cost metrics and is excluded from the Pareto front.
    Failed {
        /// The PnR error text.
        error: String,
    },
}

impl PointVerdict {
    /// `true` for both survived kinds.
    pub fn survived(&self) -> bool {
        matches!(
            self,
            PointVerdict::Survived { .. } | PointVerdict::SurvivedStructural { .. }
        )
    }

    /// Stable machine-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            PointVerdict::Survived { .. } => "survived",
            PointVerdict::SurvivedStructural { .. } => "survived-structural",
            PointVerdict::Broken { .. } => "broken",
            PointVerdict::Failed { .. } => "failed",
        }
    }
}

/// The full evaluation of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Position in [`SweepGrid::points`] order.
    pub index: usize,
    /// The fabric knobs evaluated.
    pub point: FabricPoint,
    /// Attack verdict.
    pub verdict: PointVerdict,
    /// Post-shrink key length (0 for failed points).
    pub key_bits: usize,
    /// Fabric tile count (0 for failed points).
    pub tiles: usize,
    /// Fabric utilization (0.0 for failed points).
    pub utilization: f64,
    /// Normalized area overhead (locked / original; 0.0 for failed points).
    pub area: f64,
    /// Normalized power-proxy overhead.
    pub power: f64,
    /// Normalized delay overhead.
    pub delay: f64,
}

impl PointResult {
    /// JSON form (stable key order — journal and artifact schema).
    pub fn to_json(&self) -> Json {
        let (iterations, conflicts, error) = match &self.verdict {
            PointVerdict::Survived {
                iterations,
                conflicts,
            }
            | PointVerdict::Broken {
                iterations,
                conflicts,
            } => (*iterations, *conflicts, Json::Null),
            PointVerdict::SurvivedStructural { iterations } => (*iterations, 0, Json::Null),
            PointVerdict::Failed { error } => (0, 0, Json::from(error.as_str())),
        };
        Json::obj([
            ("index", Json::from(self.index)),
            ("point", self.point.to_json()),
            ("verdict", Json::from(self.verdict.label())),
            ("survived", Json::from(self.verdict.survived())),
            ("iterations", Json::from(iterations)),
            ("conflicts", Json::from(conflicts)),
            ("error", error),
            ("key_bits", Json::from(self.key_bits)),
            ("tiles", Json::from(self.tiles)),
            ("utilization", Json::from(self.utilization)),
            ("area", Json::from(self.area)),
            ("power", Json::from(self.power)),
            ("delay", Json::from(self.delay)),
        ])
    }

    /// Parses the [`Self::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let usize_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("point result: missing '{key}'"))
        };
        let f64_field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("point result: missing '{key}'"))
        };
        let iterations = usize_field("iterations")?;
        let conflicts = doc
            .get("conflicts")
            .and_then(Json::as_u64)
            .ok_or("point result: missing 'conflicts'")?;
        let verdict = match doc.get("verdict").and_then(Json::as_str) {
            Some("survived") => PointVerdict::Survived {
                iterations,
                conflicts,
            },
            Some("survived-structural") => PointVerdict::SurvivedStructural { iterations },
            Some("broken") => PointVerdict::Broken {
                iterations,
                conflicts,
            },
            Some("failed") => PointVerdict::Failed {
                error: doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            },
            _ => return Err("point result: unknown 'verdict'".into()),
        };
        Ok(Self {
            index: usize_field("index")?,
            point: FabricPoint::from_json(
                doc.get("point").ok_or("point result: missing 'point'")?,
            )?,
            verdict,
            key_bits: usize_field("key_bits")?,
            tiles: usize_field("tiles")?,
            utilization: f64_field("utilization")?,
            area: f64_field("area")?,
            power: f64_field("power")?,
            delay: f64_field("delay")?,
        })
    }
}

/// A completed sweep: one [`PointResult`] per grid point, index order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-point results, `points[i].index == i`.
    pub points: Vec<PointResult>,
    /// How many points were restored from the journal rather than
    /// re-evaluated (not part of [`Self::to_json`]: a resumed run must be
    /// byte-identical to an uninterrupted one).
    pub resumed: usize,
}

impl SweepReport {
    /// Indices of the Pareto-optimal points (see [`crate::pareto`]).
    pub fn front(&self) -> Vec<usize> {
        crate::pareto::pareto_front(&self.points)
    }

    /// Deterministic JSON form: the per-point results plus the front.
    /// Identical across worker counts and across interrupted-and-resumed
    /// runs.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(JOURNAL_SCHEMA)),
            (
                "points",
                Json::arr(self.points.iter().map(PointResult::to_json)),
            ),
            (
                "front",
                Json::arr(self.front().into_iter().map(Json::from)),
            ),
        ])
    }
}

/// A cheap structural fingerprint binding journal records to the design,
/// grid point and options that produced them; any drift evicts the record.
fn sweep_fingerprint(design: &Netlist, opts: &SweepOptions) -> String {
    format!(
        "s{} i{} o{} c{} seed{} q{} it{} sk{}",
        JOURNAL_SCHEMA,
        design.inputs().len(),
        design.outputs().len(),
        design.cell_count(),
        opts.seed,
        opts.attack_quota,
        opts.max_attack_iterations,
        opts.skip_shrink
    )
}

fn journal_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("point_{index}.json"))
}

/// Tries to restore one point from the journal. Any parse or fingerprint
/// mismatch is treated as "not journaled".
fn load_journaled(
    io: &dyn Io,
    dir: &Path,
    index: usize,
    point: &FabricPoint,
    fingerprint: &str,
) -> Option<PointResult> {
    let text = read_string(io, &journal_path(dir, index)).ok()?;
    let doc = Json::parse(&text).ok()?;
    if doc.get("fingerprint").and_then(Json::as_str) != Some(fingerprint) {
        return None;
    }
    let result = PointResult::from_json(doc.get("result")?).ok()?;
    (result.index == index && result.point == *point).then_some(result)
}

/// Commits one finished point to the journal (atomic tmp+rename). Journal
/// IO failures are non-fatal: the sweep result is still returned, the
/// point just re-evaluates on resume.
fn store_journaled(io: &dyn Io, dir: &Path, result: &PointResult, fingerprint: &str) {
    let doc = Json::obj([
        ("schema", Json::from(JOURNAL_SCHEMA)),
        ("fingerprint", Json::from(fingerprint)),
        ("result", result.to_json()),
    ]);
    let _ = atomic_write(
        io,
        &journal_path(dir, result.index),
        doc.to_string_pretty().as_bytes(),
    );
}

/// Locks, prices and attacks one grid point.
///
/// Returns `Err` only for sweep-budget exhaustion (deadline/cancel reached
/// the lock flow); every other failure is a journaled [`PointVerdict`].
fn evaluate_point(
    design: &Netlist,
    point: &FabricPoint,
    index: usize,
    opts: &SweepOptions,
) -> Result<PointResult, Exhausted> {
    let _span = shell_trace::span!("explore.point", index = index);
    let failed = |error: String| PointResult {
        index,
        point: point.clone(),
        verdict: PointVerdict::Failed { error },
        key_bits: 0,
        tiles: 0,
        utilization: 0.0,
        area: 0.0,
        power: 0.0,
        delay: 0.0,
    };
    let shell_opts = ShellOptions {
        pnr: PnrOptions {
            seed: opts.seed,
            min_dims: point.min_dims,
            budget: opts.budget.clone(),
            ..PnrOptions::default()
        },
        skip_shrink: opts.skip_shrink,
        ..ShellOptions::default()
    };
    let outcome = match shell_lock_with_fabric(design, point.to_config(), &shell_opts) {
        Ok(outcome) => outcome,
        Err(PnrError::Exhausted(_)) => {
            // The *sweep* budget ran out mid-flow — not a property of the
            // point. Don't journal a verdict; let the caller stop.
            return Err(opts.budget.checkpoint().err().unwrap_or(Exhausted::Deadline));
        }
        Err(e) => {
            shell_trace::counter_add("explore.points_evaluated", 1);
            return Ok(failed(e.to_string()));
        }
    };
    let overhead = evaluate_overhead(design, &outcome);
    let verdict = attack_point(design, &outcome, opts);
    shell_trace::counter_add("explore.points_evaluated", 1);
    match verdict {
        PointVerdict::Broken { .. } => shell_trace::counter_add("explore.points_broken", 1),
        PointVerdict::Failed { .. } => {}
        _ => shell_trace::counter_add("explore.points_survived", 1),
    }
    Ok(PointResult {
        index,
        point: point.clone(),
        verdict,
        key_bits: outcome.key_bits(),
        tiles: outcome.fabric.tile_count(),
        utilization: outcome.utilization,
        area: overhead.area,
        power: overhead.power,
        delay: overhead.delay,
    })
}

/// The standard oracle-guided attack at budget *B*: full-scan frames,
/// cyclic reduction on the locked side, then the quota-capped SAT attack.
/// Mirrors the bench harness's resilience check, with the sweep's knobs.
fn attack_point(design: &Netlist, outcome: &shell_lock::RedactionOutcome, opts: &SweepOptions) -> PointVerdict {
    let oracle_frame = scan_frame(design);
    let locked = if outcome.locked.topo_order().is_ok() {
        outcome.locked.clone()
    } else {
        cyclic_reduction(&outcome.locked).netlist
    };
    let Ok(locked_frame) = try_scan_frame(&locked) else {
        return PointVerdict::SurvivedStructural { iterations: 0 };
    };
    if oracle_frame.inputs().len() != locked_frame.inputs().len()
        || oracle_frame.outputs().len() != locked_frame.outputs().len()
    {
        return PointVerdict::SurvivedStructural { iterations: 0 };
    }
    let attack_opts = SatAttackOptions {
        max_iterations: opts.max_attack_iterations,
        budget: Budget::unlimited().with_quota(opts.attack_quota),
        verify_key: true,
        verify_vectors: 128,
        ..SatAttackOptions::default()
    };
    match sat_attack(&locked_frame, &oracle_frame, &attack_opts) {
        SatAttackOutcome::Broken {
            iterations,
            conflicts,
            ..
        } => PointVerdict::Broken {
            iterations,
            conflicts,
        },
        SatAttackOutcome::Resilient {
            iterations,
            conflicts,
        } => PointVerdict::Survived {
            iterations,
            conflicts,
        },
        SatAttackOutcome::WrongKey { iterations, .. } => {
            PointVerdict::SurvivedStructural { iterations }
        }
    }
}

/// Runs the sweep: every grid point through lock → price → attack on the
/// `shell-exec` pool, with journal resume and cooperative budget checks.
///
/// Deterministic for a fixed design/grid/options: results are merged in
/// point-index order regardless of worker count, and the per-point attack
/// budget is a conflict quota, never wall-clock.
///
/// # Errors
///
/// [`SweepError::InvalidGrid`] before any work; [`SweepError::Exhausted`]
/// when the sweep budget runs out (finished points stay journaled);
/// [`SweepError::Interrupted`] when `point_limit` stopped the run early.
pub fn run_sweep(
    design: &Netlist,
    grid: &SweepGrid,
    opts: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    let _span = shell_trace::span!("explore.sweep");
    grid.validate().map_err(SweepError::InvalidGrid)?;
    let points = grid.points();
    let fingerprint = sweep_fingerprint(design, opts);

    // Restore journaled points first.
    let mut results: Vec<Option<PointResult>> = vec![None; points.len()];
    let mut resumed = 0usize;
    if let Some(dir) = &opts.journal_dir {
        for (i, point) in points.iter().enumerate() {
            if let Some(r) = load_journaled(opts.io.as_ref(), dir, i, point, &fingerprint) {
                results[i] = Some(r);
                resumed += 1;
            }
        }
        if resumed > 0 {
            shell_trace::counter_add("explore.points_resumed", resumed as u64);
        }
    }

    let mut todo: Vec<usize> = (0..points.len()).filter(|&i| results[i].is_none()).collect();
    let total_todo = todo.len();
    let limited = opts.point_limit.is_some_and(|limit| limit < total_todo);
    if let Some(limit) = opts.point_limit {
        todo.truncate(limit);
    }

    opts.budget.checkpoint().map_err(SweepError::Exhausted)?;
    let evaluated: Vec<Result<PointResult, Exhausted>> = shell_exec::parallel_map(&todo, |&i| {
        // Cooperative stop between points: a cancelled or expired sweep
        // stops spawning work, already-running points finish and journal.
        opts.budget.checkpoint()?;
        let result = evaluate_point(design, &points[i], i, opts)?;
        if let Some(dir) = &opts.journal_dir {
            store_journaled(opts.io.as_ref(), dir, &result, &fingerprint);
        }
        Ok(result)
    });

    let mut stopped: Option<Exhausted> = None;
    for entry in evaluated {
        match entry {
            Ok(r) => {
                let i = r.index;
                results[i] = Some(r);
            }
            Err(e) => stopped = Some(e),
        }
    }
    if let Some(e) = stopped {
        return Err(SweepError::Exhausted(e));
    }
    if limited {
        let remaining = results.iter().filter(|r| r.is_none()).count();
        return Err(SweepError::Interrupted {
            evaluated: todo.len(),
            remaining,
        });
    }
    let points: Vec<PointResult> = results.into_iter().map(|r| r.expect("all evaluated")).collect();
    let report = SweepReport { points, resumed };
    shell_trace::gauge("explore.pareto_size", report.front().len() as f64);
    Ok(report)
}
