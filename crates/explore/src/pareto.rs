//! Pareto-front extraction over the sweep's four objectives: SAT-attack
//! resilience (maximize) vs area, power-proxy and delay overhead (each
//! minimized).

use crate::sweep::{PointResult, PointVerdict, SweepReport};
use shell_util::Json;

/// Resilience score of a point, the maximized Pareto axis. Survived points
/// (budget *B* exhausted or structural survival) score `u64::MAX`; broken
/// points score the solver conflicts the break cost (a more expensive
/// break is a harder fabric); failed points score `None` and never enter
/// the front.
pub fn resilience_score(result: &PointResult) -> Option<u64> {
    match &result.verdict {
        PointVerdict::Survived { .. } | PointVerdict::SurvivedStructural { .. } => {
            Some(u64::MAX)
        }
        PointVerdict::Broken { conflicts, .. } => Some(*conflicts),
        PointVerdict::Failed { .. } => None,
    }
}

/// `true` when `a` dominates `b`: no worse on every objective (resilience
/// ≥, area ≤, power ≤, delay ≤) and strictly better on at least one.
/// Failed points neither dominate nor are compared.
pub fn dominates(a: &PointResult, b: &PointResult) -> bool {
    let (Some(sa), Some(sb)) = (resilience_score(a), resilience_score(b)) else {
        return false;
    };
    let no_worse = sa >= sb && a.area <= b.area && a.power <= b.power && a.delay <= b.delay;
    let strictly_better = sa > sb || a.area < b.area || a.power < b.power || a.delay < b.delay;
    no_worse && strictly_better
}

/// Indices (into `points`, which is sweep index order) of the
/// non-dominated points, ascending. Mutually identical points all stay on
/// the front (neither strictly dominates the other).
pub fn pareto_front(points: &[PointResult]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            resilience_score(&points[i]).is_some()
                && (0..points.len()).all(|j| j == i || !dominates(&points[j], &points[i]))
        })
        .collect()
}

/// Plot-ready JSON: every point with its objectives and front membership,
/// plus the front index list. Deterministic (same bytes for the same
/// report, any worker count).
pub fn pareto_json(report: &SweepReport) -> Json {
    let front = report.front();
    Json::obj([
        ("schema", Json::from(1u64)),
        (
            "axes",
            Json::arr(
                ["resilience", "area", "power", "delay"]
                    .iter()
                    .map(|&a| Json::from(a)),
            ),
        ),
        (
            "points",
            Json::arr(report.points.iter().map(|p| {
                Json::obj([
                    ("index", Json::from(p.index)),
                    ("label", Json::from(p.point.label())),
                    ("verdict", Json::from(p.verdict.label())),
                    ("survived", Json::from(p.verdict.survived())),
                    (
                        "resilience",
                        match resilience_score(p) {
                            // u64::MAX is not representable in JSON's f64;
                            // survived points are flagged, not scored.
                            Some(u64::MAX) | None => Json::Null,
                            Some(c) => Json::from(c),
                        },
                    ),
                    ("area", Json::from(p.area)),
                    ("power", Json::from(p.power)),
                    ("delay", Json::from(p.delay)),
                    ("key_bits", Json::from(p.key_bits)),
                    ("tiles", Json::from(p.tiles)),
                    ("on_front", Json::from(front.contains(&p.index))),
                ])
            })),
        ),
        ("front", Json::arr(front.into_iter().map(Json::from))),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{FabricPoint, Switchbox};

    fn point(index: usize, verdict: PointVerdict, area: f64, power: f64, delay: f64) -> PointResult {
        PointResult {
            index,
            point: FabricPoint {
                lut_k: 4,
                channel_width: 12,
                switchbox: Switchbox::Mux4Tree,
                chain_len: 4,
                min_dims: (2, 2),
            },
            verdict,
            key_bits: 10,
            tiles: 4,
            utilization: 1.0,
            area,
            power,
            delay,
        }
    }

    fn survived(index: usize, area: f64) -> PointResult {
        point(
            index,
            PointVerdict::Survived {
                iterations: 5,
                conflicts: 1000,
            },
            area,
            area,
            area,
        )
    }

    fn broken(index: usize, conflicts: u64, area: f64) -> PointResult {
        point(
            index,
            PointVerdict::Broken {
                iterations: 3,
                conflicts,
            },
            area,
            area,
            area,
        )
    }

    #[test]
    fn survived_dominates_equal_cost_broken() {
        let a = survived(0, 2.0);
        let b = broken(1, 500, 2.0);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn cheaper_broken_point_stays_on_front() {
        // A broken-but-cheap point is not dominated by an expensive
        // survivor: the front carries the trade-off curve.
        let pts = vec![survived(0, 3.0), broken(1, 500, 1.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn dominated_point_drops_off() {
        let pts = vec![survived(0, 2.0), broken(1, 500, 2.0), survived(2, 1.5)];
        // 2 dominates 0 (same survival, cheaper) and both dominate 1.
        assert_eq!(pareto_front(&pts), vec![2]);
    }

    #[test]
    fn failed_points_never_enter() {
        let pts = vec![
            point(
                0,
                PointVerdict::Failed {
                    error: "does not fit".into(),
                },
                0.0,
                0.0,
                0.0,
            ),
            survived(1, 2.0),
        ];
        assert_eq!(pareto_front(&pts), vec![1]);
    }

    #[test]
    fn identical_points_both_stay() {
        let pts = vec![survived(0, 2.0), survived(1, 2.0)];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn harder_break_beats_cheaper_break_at_equal_cost() {
        let pts = vec![broken(0, 900, 2.0), broken(1, 100, 2.0)];
        assert_eq!(pareto_front(&pts), vec![0]);
    }
}
