//! The sweep grid: which fabric parameters to explore and how a grid
//! point becomes a [`FabricConfig`].

use shell_fabric::{ConfigStorage, FabricConfig, FabricStyle};
use shell_util::Json;

/// Hard cap on the number of points a grid may expand to — a sweep runs a
/// full lock→attack flow per point, so an unbounded grid is a footgun.
pub const MAX_POINTS: usize = 256;

/// Switch-box topology axis: how routing muxes are decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Switchbox {
    /// MUX2 trees, DFF configuration, square fabric — the OpenFPGA-style
    /// conventions.
    Mux2Tree,
    /// MUX4 trees with the custom-cell optimization, latch configuration,
    /// demand-shaped fabric — the FABulous-style conventions.
    Mux4Tree,
}

impl Switchbox {
    /// Wire-format label.
    pub fn label(self) -> &'static str {
        match self {
            Switchbox::Mux2Tree => "mux2tree",
            Switchbox::Mux4Tree => "mux4tree",
        }
    }

    /// Parses a wire-format label.
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "mux2tree" => Some(Switchbox::Mux2Tree),
            "mux4tree" => Some(Switchbox::Mux4Tree),
            _ => None,
        }
    }
}

/// One point of the design space: the fabric knobs the sweep varies.
///
/// The remaining [`FabricConfig`] fields (storage style, custom-cell
/// factor, square rounding) follow from the switch-box topology, mirroring
/// the two preset families.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricPoint {
    /// LUT arity (2..=6).
    pub lut_k: usize,
    /// Routing tracks per tile (≥ 2).
    pub channel_width: usize,
    /// Switch-box topology (selects the preset family).
    pub switchbox: Switchbox,
    /// MUX4 chain elements per chain block; `0` disables chains and the
    /// whole sub-circuit is LUT-mapped. Relative to the fixed 4 LUTs/CLB
    /// this is the MUX-chain ratio axis.
    pub chain_len: usize,
    /// Floor on the fabric dimensions — the array-dims axis. The fit loop
    /// still grows the fabric on demand; the floor only forces *larger*
    /// arrays (more unused bits → a larger post-shrink key).
    pub min_dims: (usize, usize),
}

impl FabricPoint {
    /// Expands the point into a full [`FabricConfig`].
    pub fn to_config(&self) -> FabricConfig {
        let (storage, style, factor, square) = match self.switchbox {
            Switchbox::Mux2Tree => (ConfigStorage::Dff, FabricStyle::OpenFpga, 1.0, true),
            Switchbox::Mux4Tree => (ConfigStorage::Latch, FabricStyle::Fabulous, 0.7, false),
        };
        FabricConfig {
            lut_k: self.lut_k,
            luts_per_clb: 4,
            channel_width: self.channel_width,
            config_storage: storage,
            mux_chains: self.chain_len > 0,
            chain_len: self.chain_len,
            style,
            custom_cell_factor: factor,
            square_fabric: square,
        }
    }

    /// Validates the point (fabric-config rules plus sane dimension floor).
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.to_config().validate()?;
        let (w, h) = self.min_dims;
        if !(1..=32).contains(&w) || !(1..=32).contains(&h) {
            return Err(format!("min_dims {w}x{h} outside 1..=32"));
        }
        Ok(())
    }

    /// Compact human label, e.g. `k4 w16 mux4tree c4 d3x3`.
    pub fn label(&self) -> String {
        format!(
            "k{} w{} {} c{} d{}x{}",
            self.lut_k,
            self.channel_width,
            self.switchbox.label(),
            self.chain_len,
            self.min_dims.0,
            self.min_dims.1
        )
    }

    /// JSON form (stable key order — journal and artifact schema).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("lut_k", Json::from(self.lut_k)),
            ("channel_width", Json::from(self.channel_width)),
            ("switchbox", Json::from(self.switchbox.label())),
            ("chain_len", Json::from(self.chain_len)),
            (
                "min_dims",
                Json::arr([Json::from(self.min_dims.0), Json::from(self.min_dims.1)]),
            ),
        ])
    }

    /// Parses the [`Self::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let usize_field = |key: &str| -> Result<usize, String> {
            doc.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("point: missing or non-integer '{key}'"))
        };
        let switchbox = doc
            .get("switchbox")
            .and_then(Json::as_str)
            .and_then(Switchbox::from_label)
            .ok_or("point: missing or unknown 'switchbox'")?;
        let dims = doc
            .get("min_dims")
            .and_then(Json::as_arr)
            .filter(|a| a.len() == 2)
            .ok_or("point: 'min_dims' must be a [w, h] pair")?;
        let dim = |i: usize| {
            dims[i]
                .as_usize()
                .ok_or_else(|| format!("point: min_dims[{i}] must be an integer"))
        };
        Ok(Self {
            lut_k: usize_field("lut_k")?,
            channel_width: usize_field("channel_width")?,
            switchbox,
            chain_len: usize_field("chain_len")?,
            min_dims: (dim(0)?, dim(1)?),
        })
    }
}

/// The sweep grid: one value list per axis; the point set is the cartesian
/// product, enumerated with `lut_k` outermost and `min_dims` innermost
/// (point index order is part of the journal contract).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepGrid {
    /// LUT arity axis.
    pub lut_k: Vec<usize>,
    /// Channel-width axis.
    pub channel_width: Vec<usize>,
    /// Switch-box topology axis.
    pub switchbox: Vec<Switchbox>,
    /// Chain-length axis (`0` = no chains).
    pub chain_len: Vec<usize>,
    /// Array-dimension floor axis.
    pub min_dims: Vec<(usize, usize)>,
}

impl Default for SweepGrid {
    /// The benchmark grid: 2 channel widths × chains on/off × 2 dimension
    /// floors on the FABulous-style topology — 8 points.
    fn default() -> Self {
        Self {
            lut_k: vec![4],
            channel_width: vec![12, 16],
            switchbox: vec![Switchbox::Mux4Tree],
            chain_len: vec![0, 4],
            min_dims: vec![(2, 2), (4, 4)],
        }
    }
}

impl SweepGrid {
    /// The 2×2-point smoke grid used by CI: chains on/off × two dimension
    /// floors.
    pub fn tiny() -> Self {
        Self {
            lut_k: vec![4],
            channel_width: vec![16],
            switchbox: vec![Switchbox::Mux4Tree],
            chain_len: vec![0, 4],
            min_dims: vec![(2, 2), (3, 3)],
        }
    }

    /// Number of points the grid expands to.
    pub fn len(&self) -> usize {
        self.lut_k.len()
            * self.channel_width.len()
            * self.switchbox.len()
            * self.chain_len.len()
            * self.min_dims.len()
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the cartesian product in the documented axis order.
    pub fn points(&self) -> Vec<FabricPoint> {
        let mut out = Vec::with_capacity(self.len());
        for &lut_k in &self.lut_k {
            for &channel_width in &self.channel_width {
                for &switchbox in &self.switchbox {
                    for &chain_len in &self.chain_len {
                        for &min_dims in &self.min_dims {
                            out.push(FabricPoint {
                                lut_k,
                                channel_width,
                                switchbox,
                                chain_len,
                                min_dims,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Validates every axis and every expanded point.
    ///
    /// # Errors
    ///
    /// Empty axes, more than [`MAX_POINTS`] points, or any invalid point.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_empty() {
            return Err("grid has an empty axis".into());
        }
        if self.len() > MAX_POINTS {
            return Err(format!("grid expands to {} points (max {MAX_POINTS})", self.len()));
        }
        for p in self.points() {
            p.validate().map_err(|e| format!("{}: {e}", p.label()))?;
        }
        Ok(())
    }

    /// JSON form (axis lists keyed by name).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("lut_k", Json::arr(self.lut_k.iter().map(|&v| Json::from(v)))),
            (
                "channel_width",
                Json::arr(self.channel_width.iter().map(|&v| Json::from(v))),
            ),
            (
                "switchbox",
                Json::arr(self.switchbox.iter().map(|s| Json::from(s.label()))),
            ),
            (
                "chain_len",
                Json::arr(self.chain_len.iter().map(|&v| Json::from(v))),
            ),
            (
                "min_dims",
                Json::arr(
                    self.min_dims
                        .iter()
                        .map(|&(w, h)| Json::arr([Json::from(w), Json::from(h)])),
                ),
            ),
        ])
    }

    /// Parses the [`Self::to_json`] form. Missing axes fall back to the
    /// default grid's value for that axis, so a request may pin only the
    /// axes it cares about.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed axis; the parsed grid
    /// is also validated.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let defaults = SweepGrid::default();
        let usize_axis = |key: &str, fallback: Vec<usize>| -> Result<Vec<usize>, String> {
            match doc.get(key) {
                None => Ok(fallback),
                Some(v) => v
                    .as_arr()
                    .ok_or_else(|| format!("grid: '{key}' must be an array"))?
                    .iter()
                    .map(|j| {
                        j.as_usize()
                            .ok_or_else(|| format!("grid: '{key}' entries must be integers"))
                    })
                    .collect(),
            }
        };
        let switchbox = match doc.get("switchbox") {
            None => defaults.switchbox.clone(),
            Some(v) => v
                .as_arr()
                .ok_or("grid: 'switchbox' must be an array")?
                .iter()
                .map(|j| {
                    j.as_str()
                        .and_then(Switchbox::from_label)
                        .ok_or_else(|| "grid: unknown switchbox label".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let min_dims = match doc.get("min_dims") {
            None => defaults.min_dims.clone(),
            Some(v) => v
                .as_arr()
                .ok_or("grid: 'min_dims' must be an array")?
                .iter()
                .map(|j| {
                    let pair = j.as_arr().filter(|a| a.len() == 2);
                    match pair {
                        Some(a) => match (a[0].as_usize(), a[1].as_usize()) {
                            (Some(w), Some(h)) => Ok((w, h)),
                            _ => Err("grid: min_dims entries must be integer pairs".to_string()),
                        },
                        None => Err("grid: min_dims entries must be [w, h] pairs".to_string()),
                    }
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let grid = Self {
            lut_k: usize_axis("lut_k", defaults.lut_k.clone())?,
            channel_width: usize_axis("channel_width", defaults.channel_width.clone())?,
            switchbox,
            chain_len: usize_axis("chain_len", defaults.chain_len.clone())?,
            min_dims,
        };
        grid.validate()?;
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_tiny_grids_validate() {
        SweepGrid::default().validate().unwrap();
        SweepGrid::tiny().validate().unwrap();
        assert_eq!(SweepGrid::default().len(), 8);
        assert_eq!(SweepGrid::tiny().len(), 4);
    }

    #[test]
    fn point_order_is_documented_nesting() {
        let grid = SweepGrid {
            lut_k: vec![3, 4],
            channel_width: vec![12],
            switchbox: vec![Switchbox::Mux4Tree],
            chain_len: vec![0],
            min_dims: vec![(2, 2), (3, 3)],
        };
        let pts = grid.points();
        assert_eq!(pts.len(), 4);
        assert_eq!((pts[0].lut_k, pts[0].min_dims), (3, (2, 2)));
        assert_eq!((pts[1].lut_k, pts[1].min_dims), (3, (3, 3)));
        assert_eq!((pts[2].lut_k, pts[2].min_dims), (4, (2, 2)));
    }

    #[test]
    fn point_json_round_trips() {
        for p in SweepGrid::default().points() {
            let back = FabricPoint::from_json(&p.to_json()).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn grid_json_round_trips() {
        let grid = SweepGrid::tiny();
        let back = SweepGrid::from_json(&grid.to_json()).unwrap();
        assert_eq!(back, grid);
    }

    #[test]
    fn grid_json_defaults_missing_axes() {
        let doc = Json::parse(r#"{"chain_len": [4]}"#).unwrap();
        let grid = SweepGrid::from_json(&doc).unwrap();
        assert_eq!(grid.chain_len, vec![4]);
        assert_eq!(grid.lut_k, SweepGrid::default().lut_k);
    }

    #[test]
    fn config_expansion_matches_presets() {
        let p = FabricPoint {
            lut_k: 4,
            channel_width: 16,
            switchbox: Switchbox::Mux4Tree,
            chain_len: 4,
            min_dims: (2, 2),
        };
        assert_eq!(p.to_config(), shell_fabric::FabricConfig::fabulous_style(true));
        let p2 = FabricPoint {
            lut_k: 4,
            channel_width: 12,
            switchbox: Switchbox::Mux2Tree,
            chain_len: 0,
            min_dims: (2, 2),
        };
        assert_eq!(p2.to_config(), shell_fabric::FabricConfig::openfpga_style());
    }

    #[test]
    fn validation_rejects_bad_grids() {
        let mut g = SweepGrid::tiny();
        g.lut_k.clear();
        assert!(g.validate().is_err());
        let mut g = SweepGrid::tiny();
        g.lut_k = vec![9];
        assert!(g.validate().is_err());
        let mut g = SweepGrid::tiny();
        g.min_dims = vec![(0, 2)];
        assert!(g.validate().is_err());
        let mut g = SweepGrid::tiny();
        g.chain_len = (0..70).collect();
        g.min_dims = vec![(2, 2); 4];
        assert!(g.validate().is_err(), "point-count cap");
    }
}
