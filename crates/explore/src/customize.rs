//! The ARIANNA-style auto-customizer: pick the smallest fabric that
//! survives attack budget *B* for a given circuit.

use crate::grid::SweepGrid;
use crate::sweep::{run_sweep, PointResult, SweepError, SweepOptions, SweepReport};
use shell_netlist::Netlist;

/// Selects the cheapest surviving point of a finished sweep: minimal area
/// overhead, ties broken by tile count, then by grid index. `None` when no
/// point survived budget *B* (the grid has no fabric worth shipping).
pub fn pick_from_report(report: &SweepReport) -> Option<&PointResult> {
    report
        .points
        .iter()
        .filter(|p| p.verdict.survived())
        .min_by(|a, b| {
            a.area
                .total_cmp(&b.area)
                .then(a.tiles.cmp(&b.tiles))
                .then(a.index.cmp(&b.index))
        })
}

/// Runs the sweep and returns the smallest fabric that survives budget *B*
/// (`opts.attack_quota`) on `design` — or `None` when nothing on the grid
/// survives. The full sweep runs either way: "smallest surviving" is a
/// global property of the grid, not a first-hit search.
///
/// # Errors
///
/// Propagates [`SweepError`] from [`run_sweep`].
pub fn pick_fabric(
    design: &Netlist,
    grid: &SweepGrid,
    opts: &SweepOptions,
) -> Result<Option<PointResult>, SweepError> {
    let report = run_sweep(design, grid, opts)?;
    Ok(pick_from_report(&report).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{FabricPoint, Switchbox};
    use crate::sweep::PointVerdict;

    fn result(index: usize, survived: bool, area: f64, tiles: usize) -> PointResult {
        PointResult {
            index,
            point: FabricPoint {
                lut_k: 4,
                channel_width: 12,
                switchbox: Switchbox::Mux4Tree,
                chain_len: 4,
                min_dims: (2, 2),
            },
            verdict: if survived {
                PointVerdict::Survived {
                    iterations: 4,
                    conflicts: 100,
                }
            } else {
                PointVerdict::Broken {
                    iterations: 2,
                    conflicts: 50,
                }
            },
            key_bits: 8,
            tiles,
            utilization: 1.0,
            area,
            power: area,
            delay: area,
        }
    }

    #[test]
    fn picks_cheapest_survivor() {
        let report = SweepReport {
            points: vec![
                result(0, false, 1.0, 4),
                result(1, true, 3.0, 9),
                result(2, true, 2.0, 9),
            ],
            resumed: 0,
        };
        assert_eq!(pick_from_report(&report).unwrap().index, 2);
    }

    #[test]
    fn tile_count_breaks_area_ties() {
        let report = SweepReport {
            points: vec![result(0, true, 2.0, 16), result(1, true, 2.0, 9)],
            resumed: 0,
        };
        assert_eq!(pick_from_report(&report).unwrap().index, 1);
    }

    #[test]
    fn none_when_everything_breaks() {
        let report = SweepReport {
            points: vec![result(0, false, 1.0, 4)],
            resumed: 0,
        };
        assert!(pick_from_report(&report).is_none());
    }
}
