//! CNF formula types and DIMACS interchange.

use std::fmt;

/// A propositional variable, numbered densely from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a sign, encoded as `2*var + sign` so a literal
/// indexes watch lists directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Self {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a polarity (`true` = positive).
    #[inline]
    pub fn new(v: Var, positive: bool) -> Self {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` when this is the positive literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[inline]
    #[must_use]
    pub fn negated(self) -> Self {
        Lit(self.0 ^ 1)
    }

    /// Dense code usable as a watch-list index (`2*var + sign`).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Self {
        Lit(code as u32)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// A plain CNF formula: a clause list plus a variable count.
///
/// Used for interchange and testing; the [`crate::Solver`] keeps its own
/// internal clause database.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (`Var(0) .. Var(num_vars-1)`).
    pub num_vars: u32,
    /// The clauses; each clause is a disjunction of literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Appends a clause.
    pub fn add_clause(&mut self, lits: impl Into<Vec<Lit>>) {
        self.clauses.push(lits.into());
    }

    /// Clause count.
    pub fn clause_count(&self) -> usize {
        self.clauses.len()
    }

    /// Literal occurrences over all clauses.
    pub fn literal_count(&self) -> usize {
        self.clauses.iter().map(Vec::len).sum()
    }

    /// The clause-to-variable ratio the paper's §II discusses as a SAT
    /// hardness indicator (c2v ratio of \[3\]). Returns 0 for var-free
    /// formulas.
    pub fn clause_to_variable_ratio(&self) -> f64 {
        if self.num_vars == 0 {
            0.0
        } else {
            self.clauses.len() as f64 / self.num_vars as f64
        }
    }

    /// Evaluates the formula under a full assignment (`assignment[v]` is the
    /// value of `Var(v)`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than `num_vars`.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert!(assignment.len() >= self.num_vars as usize);
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }

    /// Serializes to DIMACS `cnf` format.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for l in c {
                let n = l.var().0 as i64 + 1;
                let signed = if l.is_positive() { n } else { -n };
                out.push_str(&signed.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses DIMACS `cnf` format (comments and the problem line tolerated;
    /// variable indices beyond the declared count grow the formula).
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed token.
    pub fn from_dimacs(src: &str) -> Result<Self, String> {
        let mut cnf = Cnf::new();
        let mut current: Vec<Lit> = Vec::new();
        for line in src.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p ") {
                let mut it = rest.split_whitespace();
                if it.next() != Some("cnf") {
                    return Err("expected `p cnf` header".into());
                }
                let vars: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("bad variable count")?;
                cnf.num_vars = cnf.num_vars.max(vars);
                continue;
            }
            for tok in line.split_whitespace() {
                let n: i64 = tok.parse().map_err(|_| format!("bad literal `{tok}`"))?;
                if n == 0 {
                    cnf.clauses.push(std::mem::take(&mut current));
                } else {
                    let v = Var((n.unsigned_abs() - 1) as u32);
                    cnf.num_vars = cnf.num_vars.max(v.0 + 1);
                    current.push(Lit::new(v, n > 0));
                }
            }
        }
        if !current.is_empty() {
            cnf.clauses.push(current);
        }
        Ok(cnf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(5);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(!p, n);
        assert_eq!(p.negated().negated(), p);
        assert_eq!(Lit::from_code(p.code()), p);
        assert_eq!(Lit::new(v, false), n);
    }

    #[test]
    fn eval_formula() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause(vec![Lit::neg(a), Lit::neg(b)]);
        assert!(cnf.eval(&[true, false]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[false, false]));
        assert!(!cnf.eval(&[true, true]));
    }

    #[test]
    fn dimacs_roundtrip() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        let c = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a), Lit::neg(b)]);
        cnf.add_clause(vec![Lit::pos(c)]);
        cnf.add_clause(vec![Lit::neg(a), Lit::pos(b), Lit::neg(c)]);
        let text = cnf.to_dimacs();
        let parsed = Cnf::from_dimacs(&text).unwrap();
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn dimacs_parse_with_comments() {
        let src = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n";
        let cnf = Cnf::from_dimacs(src).unwrap();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clause_count(), 2);
        assert_eq!(cnf.clauses[0], vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
    }

    #[test]
    fn dimacs_parse_error() {
        assert!(Cnf::from_dimacs("p cnf x 2").is_err());
        assert!(Cnf::from_dimacs("1 banana 0").is_err());
    }

    #[test]
    fn c2v_ratio() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let _ = cnf.new_var();
        for _ in 0..6 {
            cnf.add_clause(vec![Lit::pos(a)]);
        }
        assert!((cnf.clause_to_variable_ratio() - 3.0).abs() < 1e-12);
        assert_eq!(Cnf::new().clause_to_variable_ratio(), 0.0);
    }

    #[test]
    fn counts() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a)]);
        cnf.add_clause(vec![Lit::neg(a), Lit::pos(a)]);
        assert_eq!(cnf.clause_count(), 2);
        assert_eq!(cnf.literal_count(), 3);
    }
}
