//! Tseitin encoding of a netlist into CNF.
//!
//! The oracle-guided SAT attack builds a *miter* of two copies of the locked
//! circuit sharing primary-input variables but carrying independent key
//! variables. To support that, [`encode_netlist`] encodes a fresh copy of a
//! netlist directly into a [`Solver`], optionally **reusing** caller-supplied
//! variables for the primary inputs and/or key inputs.
//!
//! Sequential designs are encoded in the full-scan model of the paper's
//! threat model: every DFF output becomes a free *state* variable
//! (scan-loadable) and every DFF input is exposed as a *next-state* variable,
//! so one encoded copy represents one clock cycle of the scanned chip.

use crate::cnf::{Lit, Var};
use crate::solver::Solver;
use shell_netlist::{CellKind, Netlist};

/// Variable map of one encoded circuit copy.
#[derive(Debug, Clone)]
pub struct CircuitCnf {
    /// One variable per primary input, in declaration order.
    pub inputs: Vec<Var>,
    /// One variable per key input, in declaration order.
    pub keys: Vec<Var>,
    /// One variable per primary output, in declaration order.
    pub outputs: Vec<Var>,
    /// Current-state variables (one per DFF, ordered by
    /// [`Netlist::sequential_cells`]).
    pub state: Vec<Var>,
    /// Next-state variables (the DFF data inputs), same order as `state`.
    pub next_state: Vec<Var>,
}

/// Encodes one copy of `netlist` into `solver`.
///
/// When `share_inputs` / `share_keys` are provided, those variables are used
/// for the primary/key inputs instead of fresh ones — this is how the SAT
/// attack shares inputs between its two key-differentiated copies.
///
/// # Panics
///
/// Panics when a shared variable slice has the wrong length, when the
/// netlist contains a transparent latch (latches only appear inside fabric
/// models, which are emulated rather than attacked directly), or when the
/// netlist has a combinational cycle.
pub fn encode_netlist(
    solver: &mut Solver,
    netlist: &Netlist,
    share_inputs: Option<&[Var]>,
    share_keys: Option<&[Var]>,
) -> CircuitCnf {
    let inputs: Vec<Var> = match share_inputs {
        Some(vars) => {
            assert_eq!(vars.len(), netlist.inputs().len(), "shared input width");
            vars.to_vec()
        }
        None => netlist.inputs().iter().map(|_| solver.new_var()).collect(),
    };
    let keys: Vec<Var> = match share_keys {
        Some(vars) => {
            assert_eq!(vars.len(), netlist.key_inputs().len(), "shared key width");
            vars.to_vec()
        }
        None => netlist
            .key_inputs()
            .iter()
            .map(|_| solver.new_var())
            .collect(),
    };

    // Net-to-variable map, created lazily.
    let mut net_var: Vec<Option<Var>> = vec![None; netlist.net_count()];
    for (i, &n) in netlist.inputs().iter().enumerate() {
        net_var[n.index()] = Some(inputs[i]);
    }
    for (i, &n) in netlist.key_inputs().iter().enumerate() {
        net_var[n.index()] = Some(keys[i]);
    }

    let seq = netlist.sequential_cells();
    let mut state = Vec::with_capacity(seq.len());
    for &cid in &seq {
        let c = netlist.cell(cid);
        assert!(
            c.kind == CellKind::Dff,
            "latch `{}` cannot be SAT-encoded; emulate the fabric instead",
            c.name
        );
        let v = solver.new_var();
        net_var[c.output.index()] = Some(v);
        state.push(v);
    }

    let order = netlist.topo_order().expect("combinational cycle");
    let var_of = |solver: &mut Solver, net_var: &mut Vec<Option<Var>>, n: usize| -> Var {
        if let Some(v) = net_var[n] {
            v
        } else {
            let v = solver.new_var();
            net_var[n] = Some(v);
            v
        }
    };

    for cid in order {
        let c = netlist.cell(cid);
        if c.kind.is_sequential() {
            continue;
        }
        let ins: Vec<Var> = c
            .inputs
            .iter()
            .map(|n| var_of(solver, &mut net_var, n.index()))
            .collect();
        let out = var_of(solver, &mut net_var, c.output.index());
        encode_cell(solver, c.kind, &ins, out);
    }

    let outputs: Vec<Var> = netlist
        .outputs()
        .iter()
        .map(|(_, n)| var_of(solver, &mut net_var, n.index()))
        .collect();
    let next_state: Vec<Var> = seq
        .iter()
        .map(|&cid| {
            let d = netlist.cell(cid).inputs[0];
            var_of(solver, &mut net_var, d.index())
        })
        .collect();

    CircuitCnf {
        inputs,
        keys,
        outputs,
        state,
        next_state,
    }
}

/// Emits the CNF constraint `out = kind(ins)` into `solver`.
fn encode_cell(solver: &mut Solver, kind: CellKind, ins: &[Var], out: Var) {
    let o = Lit::pos(out);
    match kind {
        CellKind::And | CellKind::Nand => {
            let o = if kind == CellKind::Nand { !o } else { o };
            // o → in_i, and (∧ in) → o.
            let mut long: Vec<Lit> = ins.iter().map(|&v| Lit::neg(v)).collect();
            long.push(o);
            solver.add_clause(&long);
            for &v in ins {
                solver.add_clause(&[!o, Lit::pos(v)]);
            }
        }
        CellKind::Or | CellKind::Nor => {
            let o = if kind == CellKind::Nor { !o } else { o };
            let mut long: Vec<Lit> = ins.iter().map(|&v| Lit::pos(v)).collect();
            long.push(!o);
            solver.add_clause(&long);
            for &v in ins {
                solver.add_clause(&[o, Lit::neg(v)]);
            }
        }
        CellKind::Xor | CellKind::Xnor => {
            // Fold pairwise with auxiliaries.
            let mut acc = ins[0];
            for &v in &ins[1..] {
                let t = solver.new_var();
                encode_xor2(solver, acc, v, t);
                acc = t;
            }
            // out = acc (or its negation for XNOR).
            let same = kind == CellKind::Xor;
            solver.add_clause(&[Lit::new(out, true), Lit::new(acc, !same)]);
            solver.add_clause(&[Lit::new(out, false), Lit::new(acc, same)]);
        }
        CellKind::Not => {
            solver.add_clause(&[o, Lit::pos(ins[0])]);
            solver.add_clause(&[!o, Lit::neg(ins[0])]);
        }
        CellKind::Buf => {
            solver.add_clause(&[o, Lit::neg(ins[0])]);
            solver.add_clause(&[!o, Lit::pos(ins[0])]);
        }
        CellKind::Mux2 => {
            encode_mux2(solver, ins[0], ins[1], ins[2], out);
        }
        CellKind::Mux4 => {
            // out = mux2(s1, mux2(s0,a,b), mux2(s0,c,d))
            let lo = solver.new_var();
            let hi = solver.new_var();
            encode_mux2(solver, ins[1], ins[2], ins[3], lo);
            encode_mux2(solver, ins[1], ins[4], ins[5], hi);
            encode_mux2(solver, ins[0], lo, hi, out);
        }
        CellKind::Lut(mask) => {
            let k = mask.arity();
            for row in 0..(1usize << k) {
                let val = (mask.mask() >> row) & 1 == 1;
                let mut clause: Vec<Lit> = (0..k)
                    .map(|j| Lit::new(ins[j], (row >> j) & 1 == 0))
                    .collect();
                clause.push(Lit::new(out, val));
                solver.add_clause(&clause);
            }
        }
        CellKind::Const(v) => {
            solver.add_clause(&[Lit::new(out, v)]);
        }
        CellKind::Dff | CellKind::Latch => unreachable!("sequential cells not encoded"),
    }
}

/// `t = a ⊕ b` in four clauses (shared with the miter construction).
pub(crate) fn encode_xor2(solver: &mut Solver, a: Var, b: Var, t: Var) {
    solver.add_clause(&[Lit::neg(a), Lit::neg(b), Lit::neg(t)]);
    solver.add_clause(&[Lit::pos(a), Lit::pos(b), Lit::neg(t)]);
    solver.add_clause(&[Lit::pos(a), Lit::neg(b), Lit::pos(t)]);
    solver.add_clause(&[Lit::neg(a), Lit::pos(b), Lit::pos(t)]);
}

/// `out = s ? b : a`.
fn encode_mux2(solver: &mut Solver, s: Var, a: Var, b: Var, out: Var) {
    let (s, a, b, o) = (Lit::pos(s), Lit::pos(a), Lit::pos(b), Lit::pos(out));
    solver.add_clause(&[s, !a, o]);
    solver.add_clause(&[s, a, !o]);
    solver.add_clause(&[!s, !b, o]);
    solver.add_clause(&[!s, b, !o]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;
    use shell_netlist::{LutMask, Netlist};

    /// Checks that the CNF encoding of `netlist` agrees with functional
    /// simulation on every input pattern.
    fn assert_encoding_matches(netlist: &Netlist) {
        let n = netlist.inputs().len();
        assert!(n <= 10, "test helper limited to 10 inputs");
        for bits in 0..(1u64 << n) {
            let pattern: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            let expected = netlist.eval_comb(&pattern);
            let mut solver = Solver::new();
            let c = encode_netlist(&mut solver, netlist, None, None);
            let assumptions: Vec<Lit> = c
                .inputs
                .iter()
                .zip(&pattern)
                .map(|(&v, &b)| Lit::new(v, b))
                .collect();
            assert_eq!(solver.solve_with_assumptions(&assumptions), SatResult::Sat);
            let got: Vec<bool> = c
                .outputs
                .iter()
                .map(|&v| solver.value(v).expect("assigned"))
                .collect();
            assert_eq!(got, expected, "pattern {bits:b}");
        }
    }

    #[test]
    fn encode_basic_gates() {
        let mut n = Netlist::new("g");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let t0 = n.add_cell("t0", CellKind::And, vec![a, b, c]);
        let t1 = n.add_cell("t1", CellKind::Or, vec![a, t0]);
        let t2 = n.add_cell("t2", CellKind::Nand, vec![t1, c]);
        let t3 = n.add_cell("t3", CellKind::Nor, vec![t2, a]);
        let t4 = n.add_cell("t4", CellKind::Xor, vec![t3, b, c]);
        let t5 = n.add_cell("t5", CellKind::Xnor, vec![t4, a]);
        let t6 = n.add_cell("t6", CellKind::Not, vec![t5]);
        let t7 = n.add_cell("t7", CellKind::Buf, vec![t6]);
        n.add_output("f", t7);
        assert_encoding_matches(&n);
    }

    #[test]
    fn encode_muxes() {
        let mut n = Netlist::new("m");
        let s1 = n.add_input("s1");
        let s0 = n.add_input("s0");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let m2 = n.add_cell("m2", CellKind::Mux2, vec![s0, a, b]);
        let m4 = n.add_cell("m4", CellKind::Mux4, vec![s1, s0, a, b, m2, s1]);
        n.add_output("f", m4);
        assert_encoding_matches(&n);
    }

    #[test]
    fn encode_luts() {
        let mut n = Netlist::new("l");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        // Majority LUT: out when ≥2 inputs set. Rows (c,b,a): 011,101,110,111.
        let maj = LutMask::new(0b1110_1000, 3);
        let f = n.add_cell("maj", CellKind::Lut(maj), vec![a, b, c]);
        n.add_output("f", f);
        assert_encoding_matches(&n);
    }

    #[test]
    fn encode_consts() {
        let mut n = Netlist::new("c");
        let a = n.add_input("a");
        let one = n.add_cell("one", CellKind::Const(true), vec![]);
        let f = n.add_cell("f", CellKind::And, vec![a, one]);
        n.add_output("f", f);
        assert_encoding_matches(&n);
    }

    #[test]
    fn shared_keys_couple_copies() {
        // locked: f = a XOR k. Two copies sharing k must agree on f for the
        // same input.
        let mut n = Netlist::new("lk");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);

        let mut solver = Solver::new();
        let c1 = encode_netlist(&mut solver, &n, None, None);
        let c2 = encode_netlist(&mut solver, &n, Some(&c1.inputs), Some(&c1.keys));
        // Force outputs to differ: must be UNSAT.
        solver.add_clause(&[
            Lit::pos(c1.outputs[0]),
            Lit::pos(c2.outputs[0]),
        ]);
        solver.add_clause(&[
            Lit::neg(c1.outputs[0]),
            Lit::neg(c2.outputs[0]),
        ]);
        assert_eq!(solver.solve(), SatResult::Unsat);
    }

    #[test]
    fn independent_keys_can_differ() {
        let mut n = Netlist::new("lk");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);

        let mut solver = Solver::new();
        let c1 = encode_netlist(&mut solver, &n, None, None);
        let c2 = encode_netlist(&mut solver, &n, Some(&c1.inputs), None);
        solver.add_clause(&[Lit::pos(c1.outputs[0]), Lit::pos(c2.outputs[0])]);
        solver.add_clause(&[Lit::neg(c1.outputs[0]), Lit::neg(c2.outputs[0])]);
        assert_eq!(solver.solve(), SatResult::Sat);
        assert_ne!(solver.value(c1.keys[0]), solver.value(c2.keys[0]));
    }

    #[test]
    fn sequential_scan_model() {
        // q' = d; out = q. One encoded copy exposes state/next_state.
        let mut n = Netlist::new("ff");
        let d = n.add_input("d");
        let q = n.add_cell("ff", CellKind::Dff, vec![d]);
        n.add_output("q", q);
        let mut solver = Solver::new();
        let c = encode_netlist(&mut solver, &n, None, None);
        assert_eq!(c.state.len(), 1);
        assert_eq!(c.next_state.len(), 1);
        // With state forced to 1, output must read 1 regardless of d.
        let r = solver.solve_with_assumptions(&[
            Lit::pos(c.state[0]),
            Lit::neg(c.outputs[0]),
        ]);
        assert_eq!(r, SatResult::Unsat);
        // next_state follows d.
        let r = solver.solve_with_assumptions(&[
            Lit::pos(c.inputs[0]),
            Lit::neg(c.next_state[0]),
        ]);
        assert_eq!(r, SatResult::Unsat);
    }

    #[test]
    #[should_panic(expected = "latch")]
    fn latch_rejected() {
        let mut n = Netlist::new("lat");
        let en = n.add_input("en");
        let d = n.add_input("d");
        let q = n.add_cell("l", CellKind::Latch, vec![en, d]);
        n.add_output("q", q);
        let mut solver = Solver::new();
        encode_netlist(&mut solver, &n, None, None);
    }
}
