//! An incremental CDCL (conflict-driven clause learning) SAT solver.
//!
//! Architecture follows the MiniSat lineage: two-watched-literal unit
//! propagation, first-UIP conflict analysis with non-chronological
//! backjumping, VSIDS variable activity with an indexed max-heap, phase
//! saving, and geometric restarts. The solver is *incremental*: clauses may
//! be added between [`Solver::solve`] calls and solving under
//! [`Solver::solve_with_assumptions`] is supported — both are required by the
//! oracle-guided SAT attack, which grows the formula by two circuit copies
//! per distinguishing input pattern. Learned clauses, VSIDS activity and
//! saved phases all survive across solve calls, so a long-lived solver keeps
//! getting cheaper as the formula grows.
//!
//! Clause storage is a **flat literal arena**: all clauses live contiguously
//! in one `Vec<Lit>` with small `{start, len}` headers, so unit propagation
//! walks cache-linear memory and conflict analysis reads clauses in place
//! without per-conflict allocation. [`Solver::reduce_learnts`] compacts the
//! learnt portion of the database between solves.
//!
//! Long-lived solvers report per-solve costs through the delta API
//! ([`Solver::take_delta`] / [`SolverStats::since`]); summing raw
//! [`Solver::stats`] snapshots across calls double-counts.
//!
//! A **conflict budget** ([`Solver::set_conflict_budget`]) reproduces the
//! paper's 48-hour attack timeout at laptop scale: when the budget is
//! exhausted the solver returns [`SatResult::Unknown`]. A shared
//! [`shell_guard::Budget`] can be attached with [`Solver::set_budget`]: the
//! solver then spends one quota step per conflict and polls the budget's
//! deadline/cancellation flag at every decision, so a single token governs
//! a whole attack across many solver instances. [`Solver::stop_reason`]
//! tells the two kinds of [`SatResult::Unknown`] apart.

use crate::cnf::{Cnf, Lit, Var};
use shell_guard::{Budget, Exhausted};

/// Result of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A model was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget ran out before an answer was reached.
    Unknown,
}

/// Counters exposed for attack reporting and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Total conflicts across all solve calls.
    pub conflicts: u64,
    /// Total decisions.
    pub decisions: u64,
    /// Total literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database. Unlike the other fields
    /// this is a *level*, not a counter: [`SolverStats::since`] carries the
    /// current value through instead of subtracting.
    pub learnt_clauses: usize,
}

impl SolverStats {
    /// Counter deltas accumulated since the `earlier` snapshot (saturating,
    /// so a snapshot from a different solver degrades to zeros rather than
    /// wrapping). `learnt_clauses` is a level and is carried through as-is.
    pub fn since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learnt_clauses: self.learnt_clauses,
        }
    }
}

const UNDEF_CLAUSE: u32 = u32::MAX;

/// The learnt database is reduced when it exceeds this many clauses plus
/// half the input-clause count (checked at each solve-call entry, so a
/// reduction never lands mid-search).
const REDUCE_LEARNTS_BASE: usize = 2000;

/// Header of one clause in the literal arena. Positions `start` and
/// `start + 1` are always the two watched literals — [`Solver::propagate`]
/// maintains that invariant by swapping literals in place.
#[derive(Debug, Clone, Copy)]
struct ClauseHeader {
    start: u32,
    len: u32,
    learnt: bool,
}

/// Indexed max-heap over variable activities (the VSIDS order).
#[derive(Debug, Clone, Default)]
struct VarHeap {
    heap: Vec<Var>,
    /// `positions[v] == usize::MAX` when `v` is not in the heap.
    positions: Vec<usize>,
}

impl VarHeap {
    fn ensure(&mut self, n: usize) {
        while self.positions.len() < n {
            self.positions.push(usize::MAX);
        }
    }

    fn contains(&self, v: Var) -> bool {
        self.positions
            .get(v.index())
            .is_some_and(|&p| p != usize::MAX)
    }

    fn push(&mut self, v: Var, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.ensure(v.index() + 1);
        self.positions[v.index()] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("nonempty");
        self.positions[top.index()] = usize::MAX;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn bump(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.positions.get(v.index()) {
            if p != usize::MAX {
                self.sift_up(p, activity);
            }
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if activity[self.heap[i].index()] > activity[self.heap[parent].index()] {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && activity[self.heap[l].index()] > activity[self.heap[best].index()]
            {
                best = l;
            }
            if r < self.heap.len()
                && activity[self.heap[r].index()] > activity[self.heap[best].index()]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.positions[self.heap[a].index()] = a;
        self.positions[self.heap[b].index()] = b;
    }
}

/// The CDCL solver. See the [module docs](self) for the feature set.
#[derive(Debug, Clone)]
pub struct Solver {
    /// Flat literal storage; clause `i` occupies
    /// `arena[clauses[i].start .. clauses[i].start + clauses[i].len]`.
    arena: Vec<Lit>,
    clauses: Vec<ClauseHeader>,
    /// Learnt clauses currently in the database.
    num_learnt: usize,
    /// `watches[lit.code()]`: clauses in which `lit` is one of the two
    /// watched literals.
    watches: Vec<Vec<u32>>,
    assigns: Vec<Option<bool>>,
    /// Decision level of each assigned variable.
    level: Vec<u32>,
    /// Antecedent clause of each implied variable.
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: VarHeap,
    polarity: Vec<bool>,
    /// `false` once a top-level conflict proves global UNSAT.
    ok: bool,
    stats: SolverStats,
    budget: Option<u64>,
    /// Shared governance token; one quota step is spent per conflict.
    guard: Option<Budget>,
    /// Why the last solve returned [`SatResult::Unknown`], if it did.
    stop_reason: Option<Exhausted>,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Stats snapshot at the last [`Solver::take_delta`] call.
    taken: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self {
            arena: Vec::new(),
            clauses: Vec::new(),
            num_learnt: 0,
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: VarHeap::default(),
            polarity: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            budget: None,
            guard: None,
            stop_reason: None,
            seen: Vec::new(),
            taken: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(None);
        self.level.push(0);
        self.reason.push(UNDEF_CLAUSE);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap.push(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Limits the total number of conflicts future solve calls may spend
    /// (cumulative, compared against [`SolverStats::conflicts`]); `None`
    /// removes the limit.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    /// Attaches a shared [`Budget`]: the solver spends one quota step per
    /// conflict and polls the deadline/cancellation flag at every decision.
    /// Exhaustion makes solve calls return [`SatResult::Unknown`] (see
    /// [`Solver::stop_reason`]). `None` detaches.
    pub fn set_budget(&mut self, guard: Option<Budget>) {
        self.guard = guard;
    }

    /// Why the most recent solve call returned [`SatResult::Unknown`]:
    /// `Some(..)` for an exhausted [`Budget`], `None` for the plain
    /// cumulative conflict cap (or when the call answered Sat/Unsat).
    pub fn stop_reason(&self) -> Option<Exhausted> {
        self.stop_reason
    }

    /// Cumulative solver statistics since construction. For a long-lived
    /// solver, per-solve costs come from [`Solver::take_delta`] — summing
    /// these snapshots across calls double-counts.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.num_learnt;
        s
    }

    /// Statistics accumulated since the previous `take_delta` call (or since
    /// construction), and resets the baseline. This is the API attack
    /// drivers use: `conflicts += solver.take_delta().conflicts` stays
    /// correct whether the solver is fresh per call or persists across many.
    pub fn take_delta(&mut self) -> SolverStats {
        let now = self.stats();
        let delta = now.since(&self.taken);
        self.taken = now;
        delta
    }

    /// Adds a clause. Returns `false` when the clause makes the formula
    /// trivially unsatisfiable at the top level (empty clause or conflicting
    /// unit); the solver then answers [`SatResult::Unsat`] forever.
    ///
    /// Adding a clause after a [`SatResult::Sat`] answer discards the model
    /// (the solver backtracks to level 0 first).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedupe, drop tautologies and false literals.
        let mut c: Vec<Lit> = lits.to_vec();
        c.sort_unstable();
        c.dedup();
        let mut filtered = Vec::with_capacity(c.len());
        for (i, &l) in c.iter().enumerate() {
            if i + 1 < c.len() && c[i + 1] == !l {
                return true; // tautology: x ∨ ¬x (sorted adjacency)
            }
            if i > 0 && c[i - 1] == !l {
                return true;
            }
            match self.lit_value(l) {
                Some(true) => return true, // already satisfied at level 0
                Some(false) => continue,   // falsified at level 0: drop
                None => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(filtered[0], UNDEF_CLAUSE);
                if self.propagate().is_some() {
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(&filtered, false);
                true
            }
        }
    }

    /// Loads all clauses of a [`Cnf`], allocating variables as needed.
    /// Returns `false` when the formula is trivially unsatisfiable.
    pub fn add_cnf(&mut self, cnf: &Cnf) -> bool {
        while self.num_vars() < cnf.num_vars as usize {
            self.new_var();
        }
        for c in &cnf.clauses {
            if !self.add_clause(c) {
                return false;
            }
        }
        true
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        let start = self.arena.len() as u32;
        self.arena.extend_from_slice(lits);
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(ClauseHeader {
            start,
            len: lits.len() as u32,
            learnt,
        });
        if learnt {
            self.num_learnt += 1;
        }
        idx
    }

    /// Value of a variable in the current (partial) assignment — after a
    /// [`SatResult::Sat`] answer this reads the model.
    pub fn value(&self, v: Var) -> Option<bool> {
        self.assigns[v.index()]
    }

    fn lit_value(&self, l: Lit) -> Option<bool> {
        self.assigns[l.var().index()].map(|b| b == l.is_positive())
    }

    /// Solves the formula with no assumptions.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. The assumptions behave as
    /// forced first decisions; [`SatResult::Unsat`] then means "unsat under
    /// these assumptions" and the solver remains usable.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        if !shell_trace::enabled() {
            return self.solve_inner(assumptions);
        }
        // One span per solve; counters carry the stat deltas so the CDCL
        // inner loop itself stays untouched.
        let _span = shell_trace::span!("sat.solve");
        let before = self.stats;
        let carried = self.num_learnt as u64;
        let result = self.solve_inner(assumptions);
        shell_trace::counter_add("sat.conflicts", self.stats.conflicts - before.conflicts);
        shell_trace::counter_add("sat.decisions", self.stats.decisions - before.decisions);
        shell_trace::counter_add(
            "sat.propagations",
            self.stats.propagations - before.propagations,
        );
        shell_trace::counter_add("sat.learned_kept", carried);
        shell_trace::gauge("sat.clauses_db", self.clauses.len() as f64);
        result
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SatResult {
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        self.stop_reason = None;
        if self.num_learnt > REDUCE_LEARNTS_BASE + (self.clauses.len() - self.num_learnt) / 2 {
            self.reduce_learnts();
        }
        let mut conflicts_until_restart = 100u64;
        let mut conflicts_this_epoch = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                // Conflict.
                self.stats.conflicts += 1;
                conflicts_this_epoch += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                if self.decision_level() <= assumptions.len() as u32 {
                    // The conflict depends only on assumptions.
                    self.cancel_until(0);
                    return SatResult::Unsat;
                }
                let (learnt, backtrack) = self.analyze(confl, assumptions.len() as u32);
                self.cancel_until(backtrack);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], UNDEF_CLAUSE);
                } else {
                    let asserting = learnt[0];
                    let idx = self.attach_clause(&learnt, true);
                    self.unchecked_enqueue(asserting, idx);
                }
                self.decay_activity();
                if let Some(b) = self.budget {
                    if self.stats.conflicts >= b {
                        self.cancel_until(0);
                        return SatResult::Unknown;
                    }
                }
                if let Some(guard) = &self.guard {
                    if let Err(why) = guard.spend(1) {
                        self.stop_reason = Some(why);
                        self.cancel_until(0);
                        return SatResult::Unknown;
                    }
                }
                if conflicts_this_epoch >= conflicts_until_restart {
                    conflicts_this_epoch = 0;
                    conflicts_until_restart = (conflicts_until_restart * 3) / 2;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                }
            } else {
                // No conflict: poll the guard (deadline/cancellation can
                // trip without a single conflict), then pick the next
                // assumption or decide.
                if let Some(guard) = &self.guard {
                    if let Err(why) = guard.checkpoint() {
                        self.stop_reason = Some(why);
                        self.cancel_until(0);
                        return SatResult::Unknown;
                    }
                }
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        Some(true) => {
                            // Already satisfied: open an (empty) level so the
                            // assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        Some(false) => {
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        None => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(a, UNDEF_CLAUSE);
                        }
                    }
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        // Full assignment: model found. Leave the trail in
                        // place so `value` reads the model, but remember we
                        // must cancel on the next call (done at entry).
                        return SatResult::Sat;
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::new(v, self.polarity[v.index()]);
                        self.unchecked_enqueue(lit, UNDEF_CLAUSE);
                    }
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var();
        debug_assert!(self.assigns[v.index()].is_none());
        self.assigns[v.index()] = Some(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail.push(l);
    }

    /// Two-watched-literal unit propagation. Returns the conflicting clause
    /// index, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p; // literals watching ¬p must be checked
            let mut watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watch_list.len() {
                let cref = watch_list[i];
                let h = self.clauses[cref as usize];
                let s = h.start as usize;
                let e = s + h.len as usize;
                // Ensure the false literal is at position 1.
                if self.arena[s] == false_lit {
                    self.arena.swap(s, s + 1);
                }
                debug_assert_eq!(self.arena[s + 1], false_lit);
                let first = self.arena[s];
                // If the other watch is true, clause is satisfied.
                if self.assigns[first.var().index()]
                    .map(|b| b == first.is_positive())
                    == Some(true)
                {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                for k in (s + 2)..e {
                    let l = self.arena[k];
                    let val = self.assigns[l.var().index()].map(|b| b == l.is_positive());
                    if val != Some(false) {
                        self.arena.swap(s + 1, k);
                        self.watches[l.code()].push(cref);
                        watch_list.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.assigns[first.var().index()].is_none() {
                    self.unchecked_enqueue(first, cref);
                    i += 1;
                } else {
                    // Conflict: restore the watch list and bail.
                    self.watches[false_lit.code()] = watch_list;
                    self.qhead = self.trail.len();
                    return Some(cref);
                }
            }
            self.watches[false_lit.code()] = watch_list;
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level (never below the assumption
    /// levels, `assumption_levels`).
    fn analyze(&mut self, confl: u32, assumption_levels: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;
        let current_level = self.decision_level();
        loop {
            let h = self.clauses[confl as usize];
            let s = h.start as usize;
            let skip = if p.is_some() { 1 } else { 0 };
            // Read the clause in place from the arena — no allocation on
            // this per-conflict path.
            for j in (s + skip)..(s + h.len as usize) {
                let q = self.arena[j];
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next literal to expand from the trail.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found").var();
            self.seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pv.index()];
            debug_assert_ne!(confl, UNDEF_CLAUSE, "UIP literal must have a reason");
        }
        let uip = !p.expect("uip literal");
        // Clear `seen` for the learnt literals.
        for l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // Backjump level: highest level among the non-UIP literals. A unit
        // learnt clause (UIP only) is implied by the formula alone, so it is
        // asserted at level 0; the search loop re-places assumptions after.
        let mut backtrack = 0;
        if !learnt.is_empty() {
            backtrack = assumption_levels.min(current_level.saturating_sub(1));
            // Move the max-level literal to position 1 for watching.
            let mut max_i = 0;
            for (i, l) in learnt.iter().enumerate() {
                if self.level[l.var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            backtrack = backtrack.max(self.level[learnt[max_i].var().index()]);
            learnt.swap(0, max_i);
        }
        let mut result = Vec::with_capacity(learnt.len() + 1);
        result.push(uip);
        result.extend(learnt);
        (result, backtrack)
    }

    fn cancel_until(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let boundary = self.trail_lim[target_level as usize];
        for i in (boundary..self.trail.len()).rev() {
            let l = self.trail[i];
            let v = l.var();
            self.polarity[v.index()] = l.is_positive(); // phase saving
            self.assigns[v.index()] = None;
            self.reason[v.index()] = UNDEF_CLAUSE;
            self.heap.push(v, &self.activity);
        }
        self.trail.truncate(boundary);
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap.pop(&self.activity) {
            if self.assigns[v.index()].is_none() {
                return Some(v);
            }
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bump(v, &self.activity);
    }

    fn decay_activity(&mut self) {
        self.var_inc /= 0.95;
    }

    /// Shrinks the learnt-clause database: binary learnt clauses are always
    /// kept, and of the longer ones the oldest half is dropped. The solver
    /// backtracks to level 0 first, so this is safe between solves (learnt
    /// clauses are implied by the input formula — deleting them can never
    /// change an answer, only the search path). Called automatically when
    /// the learnt database outgrows the input formula; public so callers
    /// with their own memory pressure signal can compact eagerly.
    pub fn reduce_learnts(&mut self) {
        self.cancel_until(0);
        let long: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&i| {
                let h = self.clauses[i as usize];
                h.learnt && h.len > 2
            })
            .collect();
        let drop_n = long.len() / 2;
        if drop_n == 0 {
            return;
        }
        let mut drop = vec![false; self.clauses.len()];
        // Clause indices grow over time, so the front of `long` is oldest.
        for &c in &long[..drop_n] {
            drop[c as usize] = true;
        }
        let mut arena = Vec::with_capacity(self.arena.len());
        let mut clauses = Vec::with_capacity(self.clauses.len() - drop_n);
        for i in 0..self.clauses.len() {
            if drop[i] {
                continue;
            }
            let h = self.clauses[i];
            let s = h.start as usize;
            let start = arena.len() as u32;
            arena.extend_from_slice(&self.arena[s..s + h.len as usize]);
            clauses.push(ClauseHeader { start, len: h.len, learnt: h.learnt });
        }
        self.arena = arena;
        self.clauses = clauses;
        self.num_learnt -= drop_n;
        // Rebuild the watch lists. Positions 0 and 1 are the watched
        // literals by invariant, and level-0 propagation already ran to
        // fixpoint, so re-watching the same positions reproduces a valid
        // watch state.
        for w in &mut self.watches {
            w.clear();
        }
        for i in 0..self.clauses.len() {
            let s = self.clauses[i].start as usize;
            let (w0, w1) = (self.arena[s].code(), self.arena[s + 1].code());
            self.watches[w0].push(i as u32);
            self.watches[w1].push(i as u32);
        }
        // Compaction renumbers clauses; stale antecedent indices must not
        // survive. Only level-0 assignments remain and conflict analysis
        // never expands those, so clearing every reason is sound.
        for r in &mut self.reason {
            *r = UNDEF_CLAUSE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(!s.add_clause(&[Lit::neg(v[0])]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn empty_clause_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn tautology_ignored() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::neg(v[0])]));
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, ... pairwise constraints; satisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 10);
        for w in v.windows(2) {
            let (a, b) = (w[0], w[1]);
            // a ⊕ b: (a ∨ b) ∧ (¬a ∨ ¬b)
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
        assert_eq!(s.solve(), SatResult::Sat);
        for w in v.windows(2) {
            assert_ne!(s.value(w[0]), s.value(w[1]));
        }
    }

    #[test]
    fn pigeonhole_3_in_2_unsat() {
        // 3 pigeons, 2 holes: var p_{i,h} = pigeon i in hole h.
        let mut s = Solver::new();
        let v = lits(&mut s, 6);
        let p = |i: usize, h: usize| v[i * 2 + h];
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p(i, 0)), Lit::pos(p(i, 1))]);
        }
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[Lit::neg(p(i, h)), Lit::neg(p(j, h))]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_larger_unsat() {
        // 6 pigeons, 5 holes — forces real conflict analysis and restarts.
        let n = 6;
        let h = 5;
        let mut s = Solver::new();
        let v = lits(&mut s, n * h);
        let p = |i: usize, k: usize| v[i * h + k];
        for i in 0..n {
            let clause: Vec<Lit> = (0..h).map(|k| Lit::pos(p(i, k))).collect();
            s.add_clause(&clause);
        }
        for k in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[Lit::neg(p(i, k)), Lit::neg(p(j, k))]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        // a → b
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        assert_eq!(
            s.solve_with_assumptions(&[Lit::pos(v[0]), Lit::neg(v[1])]),
            SatResult::Unsat
        );
        // Solver remains usable.
        assert_eq!(
            s.solve_with_assumptions(&[Lit::pos(v[0]), Lit::pos(v[1])]),
            SatResult::Sat
        );
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert_eq!(s.solve(), SatResult::Sat);
        s.add_clause(&[Lit::neg(v[0])]);
        s.add_clause(&[Lit::neg(v[1])]);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn budget_returns_unknown() {
        // A hard pigeonhole with a tiny budget must return Unknown.
        let n = 8;
        let h = 7;
        let mut s = Solver::new();
        let v = lits(&mut s, n * h);
        let p = |i: usize, k: usize| v[i * h + k];
        for i in 0..n {
            let clause: Vec<Lit> = (0..h).map(|k| Lit::pos(p(i, k))).collect();
            s.add_clause(&clause);
        }
        for k in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[Lit::neg(p(i, k)), Lit::neg(p(j, k))]);
                }
            }
        }
        s.set_conflict_budget(Some(5));
        assert_eq!(s.solve(), SatResult::Unknown);
        // Raising the budget lets it finish.
        s.set_conflict_budget(None);
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn model_satisfies_formula_randomized() {
        // Random 3-SAT at low clause density (very likely SAT); verify the
        // model against the original formula.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..10 {
            let mut s = Solver::new();
            let n = 30;
            let v = lits(&mut s, n);
            let mut formula: Vec<Vec<Lit>> = Vec::new();
            for _ in 0..60 {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    let var = v[(next() % n as u64) as usize];
                    clause.push(Lit::new(var, next() & 1 == 1));
                }
                formula.push(clause.clone());
                s.add_clause(&clause);
            }
            if s.solve() == SatResult::Sat {
                let model: Vec<bool> =
                    v.iter().map(|&x| s.value(x).unwrap_or(false)).collect();
                for clause in &formula {
                    assert!(
                        clause
                            .iter()
                            .any(|l| model[l.var().index()] == l.is_positive()),
                        "round {round}: model violates clause"
                    );
                }
            }
        }
    }

    #[test]
    fn add_cnf_bulk() {
        let mut cnf = Cnf::new();
        let a = cnf.new_var();
        let b = cnf.new_var();
        cnf.add_clause(vec![Lit::pos(a)]);
        cnf.add_clause(vec![Lit::neg(a), Lit::pos(b)]);
        let mut s = Solver::new();
        assert!(s.add_cnf(&cnf));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn stats_collected() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::pos(v[2]), Lit::pos(v[3])]);
        s.solve();
        let st = s.stats();
        assert!(st.decisions > 0 || st.propagations > 0);
    }

    fn pigeonhole(s: &mut Solver, n: usize, h: usize) {
        let v = lits(s, n * h);
        let p = |i: usize, k: usize| v[i * h + k];
        for i in 0..n {
            let clause: Vec<Lit> = (0..h).map(|k| Lit::pos(p(i, k))).collect();
            s.add_clause(&clause);
        }
        for k in 0..h {
            for i in 0..n {
                for j in (i + 1)..n {
                    s.add_clause(&[Lit::neg(p(i, k)), Lit::neg(p(j, k))]);
                }
            }
        }
    }

    #[test]
    fn guard_quota_returns_unknown_with_reason() {
        use shell_guard::{Budget, Exhausted};
        let mut s = Solver::new();
        pigeonhole(&mut s, 8, 7);
        let b = Budget::unlimited().with_quota(5);
        s.set_budget(Some(b.clone()));
        assert_eq!(s.solve(), SatResult::Unknown);
        assert_eq!(s.stop_reason(), Some(Exhausted::Quota));
        assert_eq!(b.remaining_quota(), Some(0));
        // Detaching the guard lets it finish, and the reason clears.
        s.set_budget(None);
        assert_eq!(s.solve(), SatResult::Unsat);
        assert_eq!(s.stop_reason(), None);
    }

    #[test]
    fn guard_cancellation_stops_solver() {
        use shell_guard::{Budget, Exhausted};
        let mut s = Solver::new();
        pigeonhole(&mut s, 8, 7);
        let b = Budget::unlimited();
        b.cancel();
        s.set_budget(Some(b));
        assert_eq!(s.solve(), SatResult::Unknown);
        assert_eq!(s.stop_reason(), Some(Exhausted::Cancelled));
    }

    #[test]
    fn guard_quota_exhaustion_is_deterministic() {
        use shell_guard::Budget;
        let run = |quota: u64| {
            let mut s = Solver::new();
            pigeonhole(&mut s, 8, 7);
            s.set_budget(Some(Budget::unlimited().with_quota(quota)));
            let r = s.solve();
            (r, s.stats().conflicts)
        };
        assert_eq!(run(17), run(17));
    }

    #[test]
    fn take_delta_partitions_cumulative_stats() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        s.solve();
        let first = s.take_delta();
        assert!(first.conflicts > 0, "hard instance must conflict");
        // An immediately repeated take is empty.
        assert_eq!(s.take_delta().conflicts, 0);
        s.solve();
        let second = s.take_delta();
        // Deltas partition the cumulative totals exactly.
        assert_eq!(first.conflicts + second.conflicts, s.stats().conflicts);
        assert_eq!(first.decisions + second.decisions, s.stats().decisions);
        assert_eq!(
            first.propagations + second.propagations,
            s.stats().propagations
        );
    }

    #[test]
    fn since_is_saturating_and_carries_learnt_level() {
        let a = SolverStats {
            conflicts: 3,
            decisions: 10,
            propagations: 100,
            restarts: 1,
            learnt_clauses: 7,
        };
        let b = SolverStats {
            conflicts: 5,
            decisions: 4, // "earlier" ahead: foreign snapshot degrades to 0
            propagations: 150,
            restarts: 1,
            learnt_clauses: 2,
        };
        let d = b.since(&a);
        assert_eq!(d.conflicts, 2);
        assert_eq!(d.decisions, 0);
        assert_eq!(d.propagations, 50);
        assert_eq!(d.restarts, 0);
        assert_eq!(d.learnt_clauses, 2);
    }

    #[test]
    fn learnt_clauses_counts_only_learnt() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.stats().learnt_clauses, 0, "input clauses are not learnt");
        s.solve();
        assert!(s.stats().learnt_clauses > 0);
    }

    #[test]
    fn reduce_learnts_preserves_answers() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve(), SatResult::Unsat);

        let mut sat = Solver::new();
        pigeonhole(&mut sat, 6, 6); // 6 holes: satisfiable but conflict-heavy
        assert_eq!(sat.solve(), SatResult::Sat);
        let before = sat.stats().learnt_clauses;
        sat.reduce_learnts();
        assert!(sat.stats().learnt_clauses <= before);
        assert_eq!(sat.solve(), SatResult::Sat, "reduction keeps satisfiability");
    }

    #[test]
    fn duplicate_literals_collapsed() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[0])]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }
}
