//! Miter construction over two encoded circuit copies.
//!
//! A *miter* joins two circuits on shared primary inputs and asserts that at
//! least one output pair differs; the resulting formula is satisfiable
//! exactly when the circuits are distinguishable. Two consumers share this
//! one construction:
//!
//! * the **oracle-guided SAT attack** (`shell-attacks`) miters two copies of
//!   the *same* locked circuit with independent key variables to mine
//!   distinguishing input patterns, and
//! * the **equivalence checker** (`shell-verify`) miters two *different*
//!   circuits and binds both key vectors via assumptions: UNSAT is a proof
//!   of combinational equivalence.
//!
//! Keeping the construction here — next to the Tseitin encoder — means both
//! crates agree byte-for-byte on the CNF shape, so a bug in the encoding
//! cannot make the attacker and the verifier disagree silently.

use crate::cnf::{Lit, Var};
use crate::solver::Solver;
use crate::tseitin::{encode_netlist, encode_xor2, CircuitCnf};
use shell_netlist::Netlist;

/// Variable maps of a miter: two circuit copies on shared inputs plus one
/// difference variable per output pair.
#[derive(Debug, Clone)]
pub struct Miter {
    /// Encoding of the first circuit (fresh input and key variables).
    pub lhs: CircuitCnf,
    /// Encoding of the second circuit (inputs shared with `lhs`, keys
    /// independent).
    pub rhs: CircuitCnf,
    /// `diffs[o] = lhs.outputs[o] XOR rhs.outputs[o]`.
    pub diffs: Vec<Var>,
    /// Activation variable of a *gated* miter ([`encode_miter_gated`]): the
    /// "some output differs" clause is `¬activation ∨ d₀ ∨ d₁ ∨ …`, so the
    /// difference constraint only binds while `activation` is assumed true.
    /// Assuming it false turns the same formula into a plain consistency
    /// check — the incremental SAT attack extracts its key that way without
    /// building a second solver. `None` for the hard [`encode_miter`] form.
    pub activation: Option<Var>,
}

/// Encodes `lhs` and `rhs` into `solver` on shared primary-input variables
/// with independent key variables, and constrains **at least one** output
/// pair to differ.
///
/// A model therefore assigns the shared inputs a distinguishing pattern; an
/// UNSAT result proves the circuits agree on every input for every key
/// assignment the caller has pinned (via assumptions or unit clauses).
///
/// Passing the same netlist for both sides yields the SAT-attack miter: one
/// circuit, two key candidates.
///
/// # Panics
///
/// Panics when the input or output counts differ, when either netlist is
/// sequential (scan-frame or unroll first), or on the conditions of
/// [`encode_netlist`] (latches, combinational cycles).
pub fn encode_miter(solver: &mut Solver, lhs: &Netlist, rhs: &Netlist) -> Miter {
    encode_miter_impl(solver, lhs, rhs, false)
}

/// [`encode_miter`] with the difference clause *gated* behind a fresh
/// activation variable (see [`Miter::activation`]).
///
/// Solving under the assumption `+activation` behaves exactly like the hard
/// miter; under `¬activation` the difference constraint is disabled and the
/// formula merely asserts both copies compute their circuits — satisfiable
/// by construction (modulo other constraints the caller pinned), which is
/// what makes one persistent solver serve both DIP mining and key
/// extraction. With zero output pairs the gated clause degenerates to the
/// unit `¬activation`: UNSAT under `+activation`, still usable otherwise —
/// the gated analogue of [`encode_miter`]'s empty clause.
pub fn encode_miter_gated(solver: &mut Solver, lhs: &Netlist, rhs: &Netlist) -> Miter {
    encode_miter_impl(solver, lhs, rhs, true)
}

fn encode_miter_impl(solver: &mut Solver, lhs: &Netlist, rhs: &Netlist, gated: bool) -> Miter {
    assert!(lhs.is_combinational(), "miter lhs must be combinational");
    assert!(rhs.is_combinational(), "miter rhs must be combinational");
    assert_eq!(
        lhs.inputs().len(),
        rhs.inputs().len(),
        "miter input shape mismatch"
    );
    assert_eq!(
        lhs.outputs().len(),
        rhs.outputs().len(),
        "miter output shape mismatch"
    );
    let a = encode_netlist(solver, lhs, None, None);
    let b = encode_netlist(solver, rhs, Some(&a.inputs), None);
    let activation = gated.then(|| solver.new_var());
    let diffs = constrain_differs(solver, &a.outputs, &b.outputs, activation);
    Miter {
        lhs: a,
        rhs: b,
        diffs,
        activation,
    }
}

/// Adds `d[o] = a[o] XOR b[o]` difference variables plus the clause
/// `d[0] ∨ d[1] ∨ …` forcing some pair to differ. Zero output pairs yield
/// the empty clause — immediately UNSAT, the correct reading of "two
/// outputless circuits cannot be distinguished".
pub fn constrain_some_output_differs(
    solver: &mut Solver,
    lhs_outputs: &[Var],
    rhs_outputs: &[Var],
) -> Vec<Var> {
    constrain_differs(solver, lhs_outputs, rhs_outputs, None)
}

fn constrain_differs(
    solver: &mut Solver,
    lhs_outputs: &[Var],
    rhs_outputs: &[Var],
    gate: Option<Var>,
) -> Vec<Var> {
    assert_eq!(lhs_outputs.len(), rhs_outputs.len(), "output width mismatch");
    let mut diffs = Vec::with_capacity(lhs_outputs.len());
    let mut any: Vec<Lit> = Vec::with_capacity(lhs_outputs.len() + 1);
    if let Some(g) = gate {
        any.push(Lit::neg(g));
    }
    for (&a, &b) in lhs_outputs.iter().zip(rhs_outputs) {
        let d = solver.new_var();
        encode_xor2(solver, a, b, d);
        any.push(Lit::pos(d));
        diffs.push(d);
    }
    solver.add_clause(&any);
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SatResult;
    use shell_netlist::CellKind;

    fn and2() -> Netlist {
        let mut n = Netlist::new("and2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::And, vec![a, b]);
        n.add_output("f", f);
        n
    }

    fn and2_demorgan() -> Netlist {
        let mut n = Netlist::new("and2d");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let na = n.add_cell("na", CellKind::Not, vec![a]);
        let nb = n.add_cell("nb", CellKind::Not, vec![b]);
        let o = n.add_cell("o", CellKind::Nor, vec![na, nb]);
        n.add_output("f", o);
        n
    }

    fn or2() -> Netlist {
        let mut n = Netlist::new("or2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::Or, vec![a, b]);
        n.add_output("f", f);
        n
    }

    #[test]
    fn equivalent_circuits_unsat() {
        let mut s = Solver::new();
        encode_miter(&mut s, &and2(), &and2_demorgan());
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn distinguishable_circuits_sat_with_witness() {
        let mut s = Solver::new();
        let m = encode_miter(&mut s, &and2(), &or2());
        assert_eq!(s.solve(), SatResult::Sat);
        let pattern: Vec<bool> = m
            .lhs
            .inputs
            .iter()
            .map(|&v| s.value(v).unwrap_or(false))
            .collect();
        // AND and OR differ exactly when inputs differ from each other.
        assert_ne!(
            and2().eval_comb(&pattern),
            or2().eval_comb(&pattern),
            "model must be a distinguishing pattern"
        );
    }

    #[test]
    fn same_netlist_keys_independent() {
        // f = a XOR k: two copies with independent keys are distinguishable
        // (k=0 vs k=1), but pinning both keys equal makes the miter UNSAT.
        let mut n = Netlist::new("lk");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);

        let mut s = Solver::new();
        let m = encode_miter(&mut s, &n, &n);
        assert_eq!(s.solve(), SatResult::Sat);
        assert_ne!(s.value(m.lhs.keys[0]), s.value(m.rhs.keys[0]));
        let same_keys = [
            Lit::neg(m.lhs.keys[0]),
            Lit::neg(m.rhs.keys[0]),
        ];
        assert_eq!(s.solve_with_assumptions(&same_keys), SatResult::Unsat);
    }

    #[test]
    fn gated_miter_switches_between_dip_and_extraction_mode() {
        // f = a XOR k. Under +act the gated miter behaves like the hard
        // miter (SAT: the two key copies can disagree); pinning an IO pair
        // and flipping to ¬act turns the same solver into key extraction.
        let mut n = Netlist::new("lk");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);

        let mut s = Solver::new();
        let m = encode_miter_gated(&mut s, &n, &n);
        let act = m.activation.expect("gated");
        assert_eq!(s.solve_with_assumptions(&[Lit::pos(act)]), SatResult::Sat);
        assert_ne!(s.value(m.lhs.keys[0]), s.value(m.rhs.keys[0]));

        // Oracle says f(a=0) = 0 (true key k=0): pin that IO pattern on
        // both copies, after which no distinguishing pattern remains...
        s.add_clause(&[Lit::neg(m.lhs.inputs[0])]);
        s.add_clause(&[Lit::neg(m.lhs.outputs[0])]);
        s.add_clause(&[Lit::neg(m.rhs.outputs[0])]);
        assert_eq!(s.solve_with_assumptions(&[Lit::pos(act)]), SatResult::Unsat);
        // ...and the SAME solver, gate off, yields the consistent key.
        assert_eq!(s.solve_with_assumptions(&[Lit::neg(act)]), SatResult::Sat);
        assert_eq!(s.value(m.lhs.keys[0]), Some(false));
    }

    #[test]
    fn outputless_gated_miter_stays_usable() {
        let mut a = Netlist::new("empty_a");
        a.add_input("x");
        let mut s = Solver::new();
        let m = encode_miter_gated(&mut s, &a, &a);
        let act = m.activation.expect("gated");
        assert_eq!(s.solve_with_assumptions(&[Lit::pos(act)]), SatResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[Lit::neg(act)]), SatResult::Sat);
    }

    #[test]
    fn outputless_miter_is_unsat() {
        let mut a = Netlist::new("empty_a");
        a.add_input("x");
        let mut b = Netlist::new("empty_b");
        b.add_input("x");
        let mut s = Solver::new();
        encode_miter(&mut s, &a, &b);
        assert_eq!(s.solve(), SatResult::Unsat);
    }
}
