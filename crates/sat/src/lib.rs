//! A from-scratch CDCL SAT solver and circuit-to-CNF encoding.
//!
//! Every robustness claim in the paper is phrased against the **SAT attack**
//! \[6\] and its cyclic-reduction variant \[26\]; reproducing the evaluation
//! therefore requires a SAT solver. This crate provides
//!
//! * [`Cnf`] — a clause container with DIMACS import/export,
//! * [`Solver`] — an incremental CDCL solver (two-watched-literal scheme,
//!   VSIDS branching, first-UIP clause learning, geometric restarts, phase
//!   saving, solve-under-assumptions, and a conflict budget so attacks can
//!   time out the way the paper's 48-hour limit does),
//! * [`tseitin`] — the Tseitin transformation from a combinational
//!   [`shell_netlist::Netlist`] to CNF, with variable maps for primary
//!   inputs, key inputs and outputs (the raw material of the attack miter),
//! * [`miter`] — the shared miter construction over two encoded copies:
//!   the SAT attack's DIP mining and `shell-verify`'s equivalence proofs
//!   both build on [`encode_miter`].
//!
//! # Example
//!
//! ```
//! use shell_sat::{Solver, Lit, SatResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a ∨ b) ∧ (¬a ∨ b) ∧ (¬b ∨ a) — forces a = b = true.
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(b), Lit::pos(a)]);
//! assert_eq!(s.solve(), SatResult::Sat);
//! assert_eq!(s.value(a), Some(true));
//! assert_eq!(s.value(b), Some(true));
//! ```

pub mod cnf;
pub mod miter;
pub mod solver;
pub mod tseitin;

pub use cnf::{Cnf, Lit, Var};
pub use miter::{constrain_some_output_differs, encode_miter, encode_miter_gated, Miter};
pub use solver::{SatResult, Solver, SolverStats};
pub use tseitin::{encode_netlist, CircuitCnf};
