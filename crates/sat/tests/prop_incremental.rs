//! Property test for solver incrementality: a persistent solver fed an
//! interleaved script of `add_clause` / `solve_with_assumptions` operations
//! must agree with a fresh-solver oracle that re-reads the whole clause set
//! at every solve — on the SAT/UNSAT answer, and with a model that actually
//! satisfies every clause and assumption. This is the contract the
//! incremental SAT attack leans on: carried learned clauses and heuristic
//! state may change the *search path*, never the *answer*.
//!
//! Scripts are decoded from a flat token vector so the harness's vector
//! shrinker minimizes failing scripts without a bespoke `Shrink` impl.

use shell_sat::{Lit, SatResult, Solver, Var};
use shell_util::forall;

/// One decoded operation.
enum Op {
    Clause(Vec<Lit>),
    Solve(Vec<Lit>),
}

/// Decodes a token stream into a script over `nvars` variables. Chunked
/// greedily; a truncated trailing chunk is dropped, so any shrunk prefix of
/// a token vector is still a valid script.
fn decode(tokens: &[u64]) -> (usize, Vec<Op>) {
    let nvars = 3 + (tokens.first().copied().unwrap_or(0) % 8) as usize;
    let lit = |t: u64| {
        let v = Var((t % nvars as u64) as u32);
        Lit::new(v, (t >> 8) & 1 == 1)
    };
    let mut ops = Vec::new();
    let mut i = 1;
    while i < tokens.len() {
        let t = tokens[i];
        i += 1;
        if t % 4 < 3 {
            // Clause of 1..=3 literals (duplicates and tautologies allowed —
            // the normalizer must cope).
            let width = 1 + ((t / 4) % 3) as usize;
            if i + width > tokens.len() {
                break;
            }
            ops.push(Op::Clause(tokens[i..i + width].iter().map(|&t| lit(t)).collect()));
            i += width;
        } else {
            // Solve under 0..=2 assumptions; tag bit 5 makes the second
            // assumption the negation of the first, forcing the
            // assumption-conflict path.
            let n = ((t / 4) % 3) as usize;
            if i + n > tokens.len() {
                break;
            }
            let mut assumptions: Vec<Lit> =
                tokens[i..i + n].iter().map(|&t| lit(t)).collect();
            if n == 2 && (t >> 5) & 1 == 1 {
                assumptions[1] = !assumptions[0];
            }
            i += n;
            ops.push(Op::Solve(assumptions));
        }
    }
    // Every script ends in a solve so pure-clause scripts are still checked.
    ops.push(Op::Solve(Vec::new()));
    (nvars, ops)
}

fn model_satisfies(s: &Solver, clause: &[Lit]) -> bool {
    clause
        .iter()
        .any(|l| s.value(l.var()).unwrap_or(false) == l.is_positive())
}

#[test]
fn interleaved_solves_agree_with_fresh_oracle() {
    forall(
        "incremental solver agrees with fresh-solver oracle",
        0x1C5EED_u64,
        48,
        |rng| {
            let len = rng.gen_range(2..40);
            (0..len).map(|_| rng.next_u64()).collect::<Vec<u64>>()
        },
        |tokens| {
            let (nvars, ops) = decode(tokens);
            let mut persistent = Solver::new();
            for _ in 0..nvars {
                persistent.new_var();
            }
            let mut clauses: Vec<Vec<Lit>> = Vec::new();
            for (step, op) in ops.iter().enumerate() {
                match op {
                    Op::Clause(c) => {
                        persistent.add_clause(c);
                        clauses.push(c.clone());
                    }
                    Op::Solve(assumptions) => {
                        let got = persistent.solve_with_assumptions(assumptions);
                        let mut fresh = Solver::new();
                        for _ in 0..nvars {
                            fresh.new_var();
                        }
                        for c in &clauses {
                            fresh.add_clause(c);
                        }
                        let want = fresh.solve_with_assumptions(assumptions);
                        if got != want {
                            return Err(format!(
                                "step {step}: persistent answered {got:?}, fresh oracle {want:?}"
                            ));
                        }
                        if got == SatResult::Sat {
                            for (ci, c) in clauses.iter().enumerate() {
                                if !model_satisfies(&persistent, c) {
                                    return Err(format!(
                                        "step {step}: model violates clause {ci}"
                                    ));
                                }
                            }
                            for (ai, &a) in assumptions.iter().enumerate() {
                                if !model_satisfies(&persistent, &[a]) {
                                    return Err(format!(
                                        "step {step}: model violates assumption {ai}"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}
