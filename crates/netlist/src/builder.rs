//! Word-level construction helpers on top of the bit-level [`Netlist`].
//!
//! The benchmark generators in `shell-circuits` compose datapaths out of
//! multi-bit buses; this builder provides the standard word operators
//! (bitwise logic, ripple adders, comparators, mux trees, registers,
//! decoders) so generators read like RTL.

use crate::cell::CellKind;
use crate::netlist::{NetId, Netlist};

/// Builder wrapping a [`Netlist`] with bus-oriented helpers.
///
/// # Example
///
/// ```
/// use shell_netlist::NetlistBuilder;
///
/// let mut b = NetlistBuilder::new("adder");
/// let x = b.input_bus("x", 4);
/// let y = b.input_bus("y", 4);
/// let (sum, carry) = b.adder(&x, &y);
/// b.output_bus("sum", &sum);
/// b.output("cout", carry);
/// let netlist = b.finish();
/// // 3 + 5 = 8
/// let mut inputs = vec![true, true, false, false]; // x = 3 (LSB first)
/// inputs.extend([true, false, true, false]);        // y = 5
/// let out = netlist.eval_comb(&inputs);
/// assert_eq!(out, vec![false, false, false, true, false]); // 8, no carry
/// ```
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    netlist: Netlist,
    fresh: u64,
}

impl NetlistBuilder {
    /// Starts building a netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            netlist: Netlist::new(name),
            fresh: 0,
        }
    }

    /// Consumes the builder and returns the finished netlist.
    pub fn finish(self) -> Netlist {
        self.netlist
    }

    /// Read-only access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Mutable access for operations the builder does not wrap.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.netlist
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}_{}", self.fresh)
    }

    // ------------------------------------------------------------------
    // Ports
    // ------------------------------------------------------------------

    /// Declares a 1-bit primary input.
    pub fn input(&mut self, name: &str) -> NetId {
        self.netlist.add_input(name)
    }

    /// Declares a `width`-bit input bus `name\[0\] .. name[width-1]`
    /// (LSB first).
    pub fn input_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.netlist.add_input(format!("{name}[{i}]")))
            .collect()
    }

    /// Declares a 1-bit key input.
    pub fn key_input(&mut self, name: &str) -> NetId {
        self.netlist.add_key_input(name)
    }

    /// Declares a `width`-bit key input bus.
    pub fn key_bus(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.netlist.add_key_input(format!("{name}[{i}]")))
            .collect()
    }

    /// Exports a single net as primary output `name`.
    pub fn output(&mut self, name: &str, net: NetId) {
        self.netlist.add_output(name, net);
    }

    /// Exports a bus as primary outputs `name\[0\] .. name[n-1]`.
    pub fn output_bus(&mut self, name: &str, bus: &[NetId]) {
        for (i, &n) in bus.iter().enumerate() {
            self.netlist.add_output(format!("{name}[{i}]"), n);
        }
    }

    // ------------------------------------------------------------------
    // Bit-level gates
    // ------------------------------------------------------------------

    /// Adds a gate with a fresh name.
    pub fn gate(&mut self, kind: CellKind, inputs: Vec<NetId>) -> NetId {
        let name = self.fresh_name(kind.mnemonic());
        self.netlist.add_cell(name, kind, inputs)
    }

    /// Adds a named gate.
    pub fn named_gate(&mut self, name: &str, kind: CellKind, inputs: Vec<NetId>) -> NetId {
        self.netlist.add_cell(name, kind, inputs)
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::And, vec![a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Or, vec![a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Xor, vec![a, b])
    }

    /// Inverter.
    pub fn not1(&mut self, a: NetId) -> NetId {
        self.gate(CellKind::Not, vec![a])
    }

    /// 2:1 mux: `sel ? b : a`.
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.gate(CellKind::Mux2, vec![sel, a, b])
    }

    /// Constant bit.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.gate(CellKind::Const(value), vec![])
    }

    /// D flip-flop.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.gate(CellKind::Dff, vec![d])
    }

    // ------------------------------------------------------------------
    // Word-level operators (all buses LSB-first)
    // ------------------------------------------------------------------

    /// Bitwise binary operator over two equal-width buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn bitwise(&mut self, kind: CellKind, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.gate(kind, vec![x, y]))
            .collect()
    }

    /// Bitwise AND of two buses.
    pub fn and_word(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        self.bitwise(CellKind::And, a, b)
    }

    /// Bitwise OR of two buses.
    pub fn or_word(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        self.bitwise(CellKind::Or, a, b)
    }

    /// Bitwise XOR of two buses.
    pub fn xor_word(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        self.bitwise(CellKind::Xor, a, b)
    }

    /// Bitwise NOT of a bus.
    pub fn not_word(&mut self, a: &[NetId]) -> Vec<NetId> {
        a.iter().map(|&x| self.not1(x)).collect()
    }

    /// Word-wide 2:1 mux: `sel ? b : a` per bit.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn mux_word(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux2(sel, x, y))
            .collect()
    }

    /// Ripple-carry adder. Returns `(sum, carry_out)`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn adder(&mut self, a: &[NetId], b: &[NetId]) -> (Vec<NetId>, NetId) {
        assert_eq!(a.len(), b.len(), "bus width mismatch");
        let mut carry = self.constant(false);
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let p = self.xor2(x, y);
            let s = self.xor2(p, carry);
            let g = self.and2(x, y);
            let pc = self.and2(p, carry);
            carry = self.or2(g, pc);
            sum.push(s);
        }
        (sum, carry)
    }

    /// Increment-by-one. Returns `(sum, carry_out)`.
    pub fn increment(&mut self, a: &[NetId]) -> (Vec<NetId>, NetId) {
        let mut carry = self.constant(true);
        let mut sum = Vec::with_capacity(a.len());
        for &x in a {
            let s = self.xor2(x, carry);
            carry = self.and2(x, carry);
            sum.push(s);
        }
        (sum, carry)
    }

    /// Equality comparator against a constant: `bus == value`.
    pub fn eq_const(&mut self, bus: &[NetId], value: u64) -> NetId {
        let bits: Vec<NetId> = bus
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if (value >> i) & 1 == 1 {
                    b
                } else {
                    self.not1(b)
                }
            })
            .collect();
        self.reduce(CellKind::And, &bits)
    }

    /// Equality comparator between two buses.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn eq_word(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        let xn = self.bitwise(CellKind::Xnor, a, b);
        self.reduce(CellKind::And, &xn)
    }

    /// Balanced reduction tree of a variadic gate kind over `bits`.
    ///
    /// # Panics
    ///
    /// Panics when `bits` is empty.
    pub fn reduce(&mut self, kind: CellKind, bits: &[NetId]) -> NetId {
        assert!(!bits.is_empty(), "cannot reduce an empty bus");
        let mut layer: Vec<NetId> = bits.to_vec();
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate(kind, vec![pair[0], pair[1]]));
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        layer[0]
    }

    /// N-way one-hot mux tree built from 2:1 muxes: `inputs[sel]` per bit.
    ///
    /// `sel` is an LSB-first select bus of width `ceil(log2(inputs.len()))`;
    /// `inputs` are equal-width words. Out-of-range selects wrap to the last
    /// input.
    ///
    /// # Panics
    ///
    /// Panics when `inputs` is empty, words have unequal width, or the select
    /// bus is too narrow.
    pub fn mux_tree(&mut self, sel: &[NetId], inputs: &[Vec<NetId>]) -> Vec<NetId> {
        assert!(!inputs.is_empty(), "mux tree needs at least one input");
        let width = inputs[0].len();
        assert!(
            inputs.iter().all(|w| w.len() == width),
            "mux tree word width mismatch"
        );
        let need = usize::BITS as usize - (inputs.len() - 1).leading_zeros() as usize;
        let need = if inputs.len() == 1 { 0 } else { need };
        assert!(sel.len() >= need, "select bus too narrow");
        let mut layer: Vec<Vec<NetId>> = inputs.to_vec();
        for &s in sel.iter().take(need) {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.mux_word(s, &pair[0], &pair[1]));
                } else {
                    next.push(pair[0].clone());
                }
            }
            layer = next;
        }
        layer.remove(0)
    }

    /// Binary decoder: output `i` is high iff `sel == i`.
    pub fn decoder(&mut self, sel: &[NetId]) -> Vec<NetId> {
        let n = 1usize << sel.len();
        (0..n).map(|i| self.eq_const(sel, i as u64)).collect()
    }

    /// Registers a whole word (one DFF per bit).
    pub fn reg_word(&mut self, d: &[NetId]) -> Vec<NetId> {
        d.iter().map(|&b| self.dff(b)).collect()
    }

    /// A register word with enable: `q' = en ? d : q`.
    pub fn reg_word_en(&mut self, en: NetId, d: &[NetId]) -> Vec<NetId> {
        // Build feedback: create the DFF first via placeholder nets.
        let mut qs = Vec::with_capacity(d.len());
        for &bit in d {
            let qname = self.fresh_name("q");
            let q = self.netlist.add_net(qname);
            let next = self.gate(CellKind::Mux2, vec![en, q, bit]);
            let name = self.fresh_name("dff");
            self.netlist
                .add_cell_driving(name, CellKind::Dff, vec![next], q)
                .expect("fresh net cannot be driven");
            qs.push(q);
        }
        qs
    }

    /// Constant word (LSB first).
    pub fn const_word(&mut self, value: u64, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect()
    }
}

/// Packs a u64 into an LSB-first bool vector of the given width.
pub fn to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

/// Unpacks an LSB-first bool slice into a u64.
///
/// # Panics
///
/// Panics when `bits.len() > 64`.
pub fn from_bits(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64);
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_adds() {
        let mut b = NetlistBuilder::new("add");
        let x = b.input_bus("x", 8);
        let y = b.input_bus("y", 8);
        let (s, c) = b.adder(&x, &y);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        for (xa, ya) in [(0u64, 0u64), (1, 1), (100, 55), (200, 100), (255, 255)] {
            let mut inp = to_bits(xa, 8);
            inp.extend(to_bits(ya, 8));
            let out = n.eval_comb(&inp);
            let sum = from_bits(&out[..8]);
            let carry = out[8] as u64;
            assert_eq!(sum + (carry << 8), xa + ya, "{xa}+{ya}");
        }
    }

    #[test]
    fn increment_wraps() {
        let mut b = NetlistBuilder::new("inc");
        let x = b.input_bus("x", 4);
        let (s, c) = b.increment(&x);
        b.output_bus("s", &s);
        b.output("c", c);
        let n = b.finish();
        let out = n.eval_comb(&to_bits(15, 4));
        assert_eq!(from_bits(&out[..4]), 0);
        assert!(out[4]);
        let out = n.eval_comb(&to_bits(6, 4));
        assert_eq!(from_bits(&out[..4]), 7);
        assert!(!out[4]);
    }

    #[test]
    fn eq_const_matches() {
        let mut b = NetlistBuilder::new("eq");
        let x = b.input_bus("x", 4);
        let hit = b.eq_const(&x, 10);
        b.output("hit", hit);
        let n = b.finish();
        for v in 0..16u64 {
            assert_eq!(n.eval_comb(&to_bits(v, 4)), vec![v == 10]);
        }
    }

    #[test]
    fn eq_word_matches() {
        let mut b = NetlistBuilder::new("eqw");
        let x = b.input_bus("x", 3);
        let y = b.input_bus("y", 3);
        let e = b.eq_word(&x, &y);
        b.output("e", e);
        let n = b.finish();
        for xv in 0..8u64 {
            for yv in 0..8u64 {
                let mut inp = to_bits(xv, 3);
                inp.extend(to_bits(yv, 3));
                assert_eq!(n.eval_comb(&inp), vec![xv == yv]);
            }
        }
    }

    #[test]
    fn mux_tree_selects() {
        let mut b = NetlistBuilder::new("mt");
        let sel = b.input_bus("sel", 2);
        let words: Vec<Vec<NetId>> = (0..4).map(|i| b.input_bus(&format!("w{i}"), 2)).collect();
        let out = b.mux_tree(&sel, &words);
        b.output_bus("o", &out);
        let n = b.finish();
        // Put distinct values 0..4 on the four words, sweep sel.
        for s in 0..4u64 {
            let mut inp = to_bits(s, 2);
            for w in 0..4u64 {
                inp.extend(to_bits(w, 2));
            }
            let out = n.eval_comb(&inp);
            assert_eq!(from_bits(&out), s, "sel={s}");
        }
    }

    #[test]
    fn mux_tree_three_inputs() {
        let mut b = NetlistBuilder::new("mt3");
        let sel = b.input_bus("sel", 2);
        let words: Vec<Vec<NetId>> = (0..3).map(|i| b.input_bus(&format!("w{i}"), 4)).collect();
        let out = b.mux_tree(&sel, &words);
        b.output_bus("o", &out);
        let n = b.finish();
        for s in 0..3u64 {
            let mut inp = to_bits(s, 2);
            for w in 0..3u64 {
                inp.extend(to_bits(w + 5, 4));
            }
            let out = n.eval_comb(&inp);
            assert_eq!(from_bits(&out), s + 5, "sel={s}");
        }
    }

    #[test]
    fn decoder_one_hot() {
        let mut b = NetlistBuilder::new("dec");
        let sel = b.input_bus("sel", 3);
        let outs = b.decoder(&sel);
        b.output_bus("o", &outs);
        let n = b.finish();
        for v in 0..8u64 {
            let out = n.eval_comb(&to_bits(v, 3));
            assert_eq!(from_bits(&out), 1 << v);
        }
    }

    #[test]
    fn reg_word_en_holds() {
        let mut b = NetlistBuilder::new("ren");
        let en = b.input("en");
        let d = b.input_bus("d", 4);
        let q = b.reg_word_en(en, &d);
        b.output_bus("q", &q);
        let n = b.finish();
        let mut sim = crate::sim::Simulator::new(&n);
        // Load 9 with enable.
        let mut inp = vec![true];
        inp.extend(to_bits(9, 4));
        sim.step(&inp, &[]);
        // Hold with enable low and different data.
        let mut inp = vec![false];
        inp.extend(to_bits(3, 4));
        let out = sim.step(&inp, &[]);
        assert_eq!(from_bits(&out), 9);
        let out = sim.step(&inp, &[]);
        assert_eq!(from_bits(&out), 9);
        // Update.
        let mut inp = vec![true];
        inp.extend(to_bits(3, 4));
        sim.step(&inp, &[]);
        let out = sim.settle(&[false, false, false, false, false], &[]);
        assert_eq!(from_bits(&out), 3);
    }

    #[test]
    fn const_word_value() {
        let mut b = NetlistBuilder::new("cw");
        let w = b.const_word(0b1011, 4);
        b.output_bus("o", &w);
        let n = b.finish();
        assert_eq!(from_bits(&n.eval_comb(&[])), 0b1011);
    }

    #[test]
    fn bit_helpers_roundtrip() {
        for v in [0u64, 1, 7, 200, u64::from(u32::MAX)] {
            assert_eq!(from_bits(&to_bits(v, 40)), v);
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bitwise_width_mismatch_panics() {
        let mut b = NetlistBuilder::new("bad");
        let x = b.input_bus("x", 2);
        let y = b.input_bus("y", 3);
        b.and_word(&x, &y);
    }
}
