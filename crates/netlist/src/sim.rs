//! Levelized functional simulation.
//!
//! The simulator is the reproduction's *oracle*: the paper's threat model
//! gives the attacker an activated chip with a fully-scanned architecture,
//! i.e. the ability to load any flip-flop state, apply any input, and observe
//! outputs and next-state. [`Simulator::state`] / [`Simulator::set_state`]
//! model scan access directly.

use crate::cell::CellKind;
use crate::netlist::{CellId, Netlist};

/// A compiled, reusable simulator for one [`Netlist`].
///
/// Construction levelizes the combinational logic once; each
/// [`Simulator::step`] is then a single linear pass.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    order: Vec<CellId>,
    seq_cells: Vec<CellId>,
    /// Current value of every net.
    values: Vec<bool>,
    /// State of sequential cells, indexed parallel to `seq_cells`.
    state: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Compiles a simulator for `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle (validate first when
    /// handling untrusted input).
    pub fn new(netlist: &'a Netlist) -> Self {
        let order = netlist
            .topo_order()
            .expect("cannot simulate a combinationally cyclic netlist");
        let order: Vec<CellId> = order
            .into_iter()
            .filter(|id| !netlist.cell(*id).kind.is_sequential())
            .collect();
        let seq_cells = netlist.sequential_cells();
        let state = vec![false; seq_cells.len()];
        let values = vec![false; netlist.net_count()];
        Self {
            netlist,
            order,
            seq_cells,
            values,
            state,
        }
    }

    /// The netlist being simulated.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// Resets all sequential state to 0.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|s| *s = false);
    }

    /// Scan access: current flip-flop/latch state, ordered by
    /// [`Netlist::sequential_cells`].
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Scan access: loads a full state vector.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the number of sequential cells.
    pub fn set_state(&mut self, state: &[bool]) {
        assert_eq!(state.len(), self.state.len(), "scan chain length mismatch");
        self.state.copy_from_slice(state);
    }

    /// Number of sequential elements.
    pub fn state_len(&self) -> usize {
        self.state.len()
    }

    /// Combinationally settles the netlist for the given inputs without
    /// advancing the clock, returning the primary outputs.
    ///
    /// Transparent latches are given one transparency pass: after the first
    /// settle, any latch with an active enable propagates its data input and
    /// the logic is settled again (sufficient for the configuration-latch
    /// topology used by the FABulous-style fabric, where latch enables never
    /// depend on latch outputs).
    ///
    /// # Panics
    ///
    /// Panics on input/key width mismatch.
    pub fn settle(&mut self, pi: &[bool], key: &[bool]) -> Vec<bool> {
        self.load_inputs(pi, key);
        self.propagate();
        // Latch transparency pass.
        let mut any_transparent = false;
        for (i, &cid) in self.seq_cells.iter().enumerate() {
            let c = self.netlist.cell(cid);
            if c.kind == CellKind::Latch {
                let en = self.values[c.inputs[0].index()];
                if en {
                    let d = self.values[c.inputs[1].index()];
                    if self.values[c.output.index()] != d {
                        self.values[c.output.index()] = d;
                        self.state[i] = d;
                        any_transparent = true;
                    }
                }
            }
        }
        if any_transparent {
            self.propagate();
        }
        self.read_outputs()
    }

    /// Advances one clock cycle: settles combinationally, samples the
    /// outputs, then updates every DFF with its data input and every latch
    /// with its (enable-gated) data input.
    pub fn step(&mut self, pi: &[bool], key: &[bool]) -> Vec<bool> {
        let outputs = self.settle(pi, key);
        // Sample next-state for all sequential cells simultaneously.
        let next: Vec<bool> = self
            .seq_cells
            .iter()
            .enumerate()
            .map(|(i, &cid)| {
                let c = self.netlist.cell(cid);
                match c.kind {
                    CellKind::Dff => self.values[c.inputs[0].index()],
                    CellKind::Latch => {
                        let en = self.values[c.inputs[0].index()];
                        if en {
                            self.values[c.inputs[1].index()]
                        } else {
                            self.state[i]
                        }
                    }
                    _ => unreachable!("non-sequential cell in seq list"),
                }
            })
            .collect();
        self.state.copy_from_slice(&next);
        outputs
    }

    /// Runs a sequence of input vectors from the current state, returning the
    /// output vector of every cycle.
    pub fn run(&mut self, stimulus: &[(Vec<bool>, Vec<bool>)]) -> Vec<Vec<bool>> {
        stimulus
            .iter()
            .map(|(pi, key)| self.step(pi, key))
            .collect()
    }

    fn load_inputs(&mut self, pi: &[bool], key: &[bool]) {
        let nl = self.netlist;
        assert_eq!(pi.len(), nl.inputs().len(), "primary input width mismatch");
        assert_eq!(key.len(), nl.key_inputs().len(), "key width mismatch");
        for (i, &net) in nl.inputs().iter().enumerate() {
            self.values[net.index()] = pi[i];
        }
        for (i, &net) in nl.key_inputs().iter().enumerate() {
            self.values[net.index()] = key[i];
        }
        for (i, &cid) in self.seq_cells.iter().enumerate() {
            let out = nl.cell(cid).output;
            self.values[out.index()] = self.state[i];
        }
    }

    fn propagate(&mut self) {
        let mut scratch: Vec<bool> = Vec::with_capacity(8);
        for &id in &self.order {
            let c = self.netlist.cell(id);
            scratch.clear();
            scratch.extend(c.inputs.iter().map(|n| self.values[n.index()]));
            self.values[c.output.index()] = c.kind.eval_comb(&scratch);
        }
    }

    fn read_outputs(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, n)| self.values[n.index()])
            .collect()
    }

    /// Value of an arbitrary net after the last settle/step (probing).
    pub fn probe(&self, net: crate::netlist::NetId) -> bool {
        self.values[net.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Netlist;

    /// q' = q XOR en  (toggle FF with enable), out = q.
    fn toggle_ff() -> Netlist {
        let mut n = Netlist::new("toggle");
        let en = n.add_input("en");
        let q = n.add_net("q");
        let next = n.add_cell("next", CellKind::Xor, vec![q, en]);
        n.add_cell_driving("ff", CellKind::Dff, vec![next], q)
            .unwrap();
        n.add_output("q", q);
        n
    }

    #[test]
    fn toggle_sequence() {
        let n = toggle_ff();
        let mut sim = Simulator::new(&n);
        // Output is Mealy-sampled before the edge: q starts 0.
        assert_eq!(sim.step(&[true], &[]), vec![false]);
        assert_eq!(sim.step(&[false], &[]), vec![true]);
        assert_eq!(sim.step(&[true], &[]), vec![true]);
        assert_eq!(sim.step(&[false], &[]), vec![false]);
    }

    #[test]
    fn reset_clears_state() {
        let n = toggle_ff();
        let mut sim = Simulator::new(&n);
        sim.step(&[true], &[]);
        assert_eq!(sim.state(), &[true]);
        sim.reset();
        assert_eq!(sim.state(), &[false]);
    }

    #[test]
    fn scan_access() {
        let n = toggle_ff();
        let mut sim = Simulator::new(&n);
        sim.set_state(&[true]);
        assert_eq!(sim.settle(&[false], &[]), vec![true]);
        assert_eq!(sim.state_len(), 1);
    }

    #[test]
    fn settle_does_not_clock() {
        let n = toggle_ff();
        let mut sim = Simulator::new(&n);
        sim.settle(&[true], &[]);
        sim.settle(&[true], &[]);
        assert_eq!(sim.state(), &[false], "settle must not change state");
    }

    #[test]
    fn latch_holds_and_loads() {
        // out = latch(en, d)
        let mut n = Netlist::new("latch");
        let en = n.add_input("en");
        let d = n.add_input("d");
        let q = n.add_cell("l", CellKind::Latch, vec![en, d]);
        n.add_output("q", q);
        let mut sim = Simulator::new(&n);
        // Enabled: transparent, value visible immediately via settle.
        assert_eq!(sim.step(&[true, true], &[]), vec![true]);
        // Disabled: holds.
        assert_eq!(sim.step(&[false, false], &[]), vec![true]);
        assert_eq!(sim.step(&[false, true], &[]), vec![true]);
        // Re-enable with 0.
        assert_eq!(sim.step(&[true, false], &[]), vec![false]);
    }

    #[test]
    fn run_matches_steps() {
        let n = toggle_ff();
        let mut sim = Simulator::new(&n);
        let stim = vec![
            (vec![true], vec![]),
            (vec![true], vec![]),
            (vec![false], vec![]),
        ];
        let outs = sim.run(&stim);
        assert_eq!(outs, vec![vec![false], vec![true], vec![false]]);
    }

    #[test]
    fn probe_internal_net() {
        let mut n = Netlist::new("p");
        let a = n.add_input("a");
        let w = n.add_cell("inv", CellKind::Not, vec![a]);
        let f = n.add_cell("buf", CellKind::Buf, vec![w]);
        n.add_output("f", f);
        let mut sim = Simulator::new(&n);
        sim.settle(&[false], &[]);
        assert!(sim.probe(w));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_input_width_panics() {
        let n = toggle_ff();
        let mut sim = Simulator::new(&n);
        sim.step(&[], &[]);
    }
}
