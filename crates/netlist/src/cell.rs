//! Cell kinds and their combinational semantics.

use std::fmt;

/// Truth table of a k-input LUT, k ≤ 6, stored as a 64-bit mask.
///
/// Bit `i` of the mask is the LUT output when the inputs, read as a binary
/// number with input 0 as the least-significant bit, equal `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LutMask {
    mask: u64,
    k: u8,
}

impl LutMask {
    /// Maximum supported LUT arity.
    pub const MAX_K: usize = 6;

    /// Creates a LUT mask for a `k`-input LUT.
    ///
    /// Bits of `mask` above `2^k` are ignored (cleared).
    ///
    /// # Panics
    ///
    /// Panics if `k > 6`.
    pub fn new(mask: u64, k: usize) -> Self {
        assert!(k <= Self::MAX_K, "LUT arity {k} exceeds {}", Self::MAX_K);
        let keep = if k == 6 { u64::MAX } else { (1u64 << (1 << k)) - 1 };
        Self {
            mask: mask & keep,
            k: k as u8,
        }
    }

    /// Number of LUT inputs.
    pub fn arity(self) -> usize {
        self.k as usize
    }

    /// The raw truth-table mask.
    pub fn mask(self) -> u64 {
        self.mask
    }

    /// Evaluates the LUT on the given input bits.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()`.
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.k as usize, "LUT input arity mismatch");
        let mut idx = 0usize;
        for (i, &b) in inputs.iter().enumerate() {
            if b {
                idx |= 1 << i;
            }
        }
        (self.mask >> idx) & 1 == 1
    }

    /// Returns `true` when the LUT output never depends on input `i`
    /// (a *don't-care* input, removable by the shrinking step).
    pub fn ignores_input(self, i: usize) -> bool {
        assert!(i < self.k as usize);
        let n = 1usize << self.k;
        for idx in 0..n {
            if idx & (1 << i) == 0 {
                let hi = idx | (1 << i);
                if (self.mask >> idx) & 1 != (self.mask >> hi) & 1 {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for LutMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LUT{}:{:#x}", self.k, self.mask)
    }
}

/// The kind of a netlist cell.
///
/// Every kind has exactly one output. Input ordering conventions:
///
/// * [`CellKind::Mux2`]: `inputs = [sel, a, b]`, output = `sel ? b : a`.
/// * [`CellKind::Mux4`]: `inputs = [s1, s0, a, b, c, d]`, output selects
///   `a/b/c/d` for `s1s0 = 00/01/10/11`.
/// * [`CellKind::Dff`]: `inputs = [d]`; the output is the registered value
///   (one global clock).
/// * [`CellKind::Latch`]: `inputs = [en, d]`; level-sensitive, used by the
///   FABulous-style configuration storage.
/// * [`CellKind::Lut`]: arbitrary k ≤ 6 truth table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Logical AND of all inputs (≥ 1 input).
    And,
    /// Logical OR of all inputs (≥ 1 input).
    Or,
    /// NOT-AND of all inputs.
    Nand,
    /// NOT-OR of all inputs.
    Nor,
    /// XOR (parity) of all inputs.
    Xor,
    /// XNOR (inverted parity) of all inputs.
    Xnor,
    /// Inverter (exactly 1 input).
    Not,
    /// Buffer (exactly 1 input).
    Buf,
    /// 2:1 multiplexer, `[sel, a, b]`.
    Mux2,
    /// 4:1 multiplexer, `[s1, s0, a, b, c, d]`.
    Mux4,
    /// k-input lookup table.
    Lut(LutMask),
    /// D flip-flop, `[d]` (single implicit clock, resets to 0).
    Dff,
    /// Transparent latch, `[en, d]` (resets to 0).
    Latch,
    /// Constant driver.
    Const(bool),
}

impl CellKind {
    /// Number of inputs this kind requires, or `None` for variadic gates
    /// (And/Or/Nand/Nor/Xor/Xnor accept ≥ 1 input).
    pub fn fixed_arity(self) -> Option<usize> {
        match self {
            CellKind::Not | CellKind::Buf | CellKind::Dff => Some(1),
            CellKind::Latch => Some(2),
            CellKind::Mux2 => Some(3),
            CellKind::Mux4 => Some(6),
            CellKind::Lut(m) => Some(m.arity()),
            CellKind::Const(_) => Some(0),
            CellKind::And
            | CellKind::Or
            | CellKind::Nand
            | CellKind::Nor
            | CellKind::Xor
            | CellKind::Xnor => None,
        }
    }

    /// `true` for stateful kinds (DFF, latch).
    pub fn is_sequential(self) -> bool {
        matches!(self, CellKind::Dff | CellKind::Latch)
    }

    /// `true` for multiplexer kinds (the ROUTE resources of the paper).
    pub fn is_mux(self) -> bool {
        matches!(self, CellKind::Mux2 | CellKind::Mux4)
    }

    /// Checks that `n_inputs` is legal for this kind.
    pub fn arity_ok(self, n_inputs: usize) -> bool {
        match self.fixed_arity() {
            Some(k) => n_inputs == k,
            None => n_inputs >= 1,
        }
    }

    /// Combinational evaluation. For [`CellKind::Dff`] this returns the
    /// *current state* which must be supplied as `inputs\[0\]` by the caller
    /// (the simulator handles sequencing); for [`CellKind::Latch`] the caller
    /// passes `[en, d, state]`? — no: latches are evaluated by the simulator,
    /// and this function treats them as transparent (`en ? d : panic`).
    ///
    /// Use [`CellKind::eval_comb`] only for purely combinational kinds; the
    /// simulator owns sequential semantics.
    ///
    /// # Panics
    ///
    /// Panics on sequential kinds or arity mismatch.
    pub fn eval_comb(self, inputs: &[bool]) -> bool {
        debug_assert!(self.arity_ok(inputs.len()), "{self:?} arity mismatch");
        match self {
            CellKind::And => inputs.iter().all(|&b| b),
            CellKind::Or => inputs.iter().any(|&b| b),
            CellKind::Nand => !inputs.iter().all(|&b| b),
            CellKind::Nor => !inputs.iter().any(|&b| b),
            CellKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            CellKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            CellKind::Not => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Mux2 => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            CellKind::Mux4 => {
                let idx = ((inputs[0] as usize) << 1) | inputs[1] as usize;
                inputs[2 + idx]
            }
            CellKind::Lut(m) => m.eval(inputs),
            CellKind::Const(v) => v,
            CellKind::Dff | CellKind::Latch => {
                panic!("sequential cell evaluated combinationally")
            }
        }
    }

    /// Short mnemonic used by the Verilog writer and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CellKind::And => "and",
            CellKind::Or => "or",
            CellKind::Nand => "nand",
            CellKind::Nor => "nor",
            CellKind::Xor => "xor",
            CellKind::Xnor => "xnor",
            CellKind::Not => "not",
            CellKind::Buf => "buf",
            CellKind::Mux2 => "mux2",
            CellKind::Mux4 => "mux4",
            CellKind::Lut(_) => "lut",
            CellKind::Dff => "dff",
            CellKind::Latch => "latch",
            CellKind::Const(false) => "const0",
            CellKind::Const(true) => "const1",
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellKind::Lut(m) => write!(f, "{m}"),
            other => f.write_str(other.mnemonic()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_mask_truncates() {
        let l = LutMask::new(u64::MAX, 2);
        assert_eq!(l.mask(), 0b1111);
        assert_eq!(l.arity(), 2);
    }

    #[test]
    fn lut_eval_matches_mask_bits() {
        // XOR2: mask 0b0110.
        let l = LutMask::new(0b0110, 2);
        assert!(!l.eval(&[false, false]));
        assert!(l.eval(&[true, false]));
        assert!(l.eval(&[false, true]));
        assert!(!l.eval(&[true, true]));
    }

    #[test]
    fn lut_ignores_input_detection() {
        // f = in0 (ignores in1): mask for (i1,i0): 00->0 01->1 10->0 11->1 = 0b1010.
        let l = LutMask::new(0b1010, 2);
        assert!(!l.ignores_input(0));
        assert!(l.ignores_input(1));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn lut_arity_limit() {
        let _ = LutMask::new(0, 7);
    }

    #[test]
    fn gate_semantics() {
        use CellKind::*;
        assert!(And.eval_comb(&[true, true, true]));
        assert!(!And.eval_comb(&[true, false]));
        assert!(Or.eval_comb(&[false, true]));
        assert!(Nand.eval_comb(&[true, false]));
        assert!(!Nand.eval_comb(&[true, true]));
        assert!(Nor.eval_comb(&[false, false]));
        assert!(Xor.eval_comb(&[true, true, true]));
        assert!(!Xor.eval_comb(&[true, true]));
        assert!(Xnor.eval_comb(&[true, true]));
        assert!(Not.eval_comb(&[false]));
        assert!(Buf.eval_comb(&[true]));
        assert!(Const(true).eval_comb(&[]));
        assert!(!Const(false).eval_comb(&[]));
    }

    #[test]
    fn mux2_selects() {
        // [sel, a, b]
        assert!(!CellKind::Mux2.eval_comb(&[false, false, true]));
        assert!(CellKind::Mux2.eval_comb(&[true, false, true]));
    }

    #[test]
    fn mux4_selects() {
        // [s1, s0, a, b, c, d]
        let data = [true, false, true, false]; // a,b,c,d
        for s in 0..4usize {
            let s1 = s & 2 != 0;
            let s0 = s & 1 != 0;
            let got = CellKind::Mux4.eval_comb(&[s1, s0, data[0], data[1], data[2], data[3]]);
            assert_eq!(got, data[s], "sel={s}");
        }
    }

    #[test]
    fn arity_checks() {
        assert!(CellKind::And.arity_ok(5));
        assert!(!CellKind::Not.arity_ok(2));
        assert!(CellKind::Mux4.arity_ok(6));
        assert!(CellKind::Const(false).arity_ok(0));
        assert!(CellKind::Lut(LutMask::new(0b10, 1)).arity_ok(1));
    }

    #[test]
    fn sequential_flags() {
        assert!(CellKind::Dff.is_sequential());
        assert!(CellKind::Latch.is_sequential());
        assert!(!CellKind::And.is_sequential());
        assert!(CellKind::Mux2.is_mux());
        assert!(!CellKind::Lut(LutMask::new(0, 1)).is_mux());
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn dff_comb_eval_panics() {
        CellKind::Dff.eval_comb(&[true]);
    }
}
