//! Netlist statistics used by reports and by fabric sizing heuristics.

use crate::netlist::Netlist;
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics of a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Primary input count.
    pub inputs: usize,
    /// Key input count.
    pub key_inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Total cells.
    pub cells: usize,
    /// Total nets.
    pub nets: usize,
    /// Cells per mnemonic (`and`, `mux2`, `dff`, ...).
    pub by_kind: BTreeMap<&'static str, usize>,
    /// Sequential cell count (DFF + latch).
    pub sequential: usize,
    /// Multiplexer cell count (the ROUTE resources).
    pub muxes: usize,
    /// Longest combinational path in cell levels (logic depth).
    pub depth: usize,
}

impl NetlistStats {
    /// Computes statistics for `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if the combinational logic is cyclic.
    pub fn of(netlist: &Netlist) -> Self {
        let mut by_kind: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut sequential = 0;
        let mut muxes = 0;
        for (_, c) in netlist.cells() {
            *by_kind.entry(c.kind.mnemonic()).or_insert(0) += 1;
            if c.kind.is_sequential() {
                sequential += 1;
            }
            if c.kind.is_mux() {
                muxes += 1;
            }
        }
        Self {
            inputs: netlist.inputs().len(),
            key_inputs: netlist.key_inputs().len(),
            outputs: netlist.outputs().len(),
            cells: netlist.cell_count(),
            nets: netlist.net_count(),
            by_kind,
            sequential,
            muxes,
            depth: logic_depth(netlist),
        }
    }

    /// Number of cells of a specific kind mnemonic.
    pub fn count(&self, mnemonic: &str) -> usize {
        self.by_kind.get(mnemonic).copied().unwrap_or(0)
    }

    /// Combinational cell count.
    pub fn combinational(&self) -> usize {
        self.cells - self.sequential
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pins: {} in / {} key / {} out; cells: {} ({} seq, depth {})",
            self.inputs, self.key_inputs, self.outputs, self.cells, self.sequential, self.depth
        )?;
        for (kind, count) in &self.by_kind {
            writeln!(f, "  {kind:8} {count}")?;
        }
        Ok(())
    }
}

/// Longest combinational path measured in cell levels. DFF/latch outputs and
/// primary/key inputs are level 0.
///
/// # Panics
///
/// Panics on combinational cycles.
pub fn logic_depth(netlist: &Netlist) -> usize {
    let order = netlist.topo_order().expect("cyclic netlist");
    let mut level = vec![0usize; netlist.net_count()];
    let mut max = 0;
    for id in order {
        let c = netlist.cell(id);
        if c.kind.is_sequential() {
            continue;
        }
        let lv = 1 + c
            .inputs
            .iter()
            .map(|n| level[n.index()])
            .max()
            .unwrap_or(0);
        level[c.output.index()] = lv;
        max = max.max(lv);
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn sample() -> Netlist {
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let k = n.add_key_input("k");
        let x = n.add_cell("x", CellKind::Xor, vec![a, k]);
        let y = n.add_cell("y", CellKind::And, vec![x, b]);
        let m = n.add_cell("m", CellKind::Mux2, vec![k, x, y]);
        let q = n.add_cell("q", CellKind::Dff, vec![m]);
        n.add_output("q", q);
        n
    }

    #[test]
    fn stats_counts() {
        let s = NetlistStats::of(&sample());
        assert_eq!(s.inputs, 2);
        assert_eq!(s.key_inputs, 1);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.cells, 4);
        assert_eq!(s.sequential, 1);
        assert_eq!(s.muxes, 1);
        assert_eq!(s.count("xor"), 1);
        assert_eq!(s.count("zzz"), 0);
        assert_eq!(s.combinational(), 3);
    }

    #[test]
    fn depth_counts_levels() {
        // a->x (1), x&b->y (2), mux (3)
        let s = NetlistStats::of(&sample());
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn depth_zero_for_wires_only() {
        let mut n = Netlist::new("w");
        let a = n.add_input("a");
        n.add_output("f", a);
        assert_eq!(logic_depth(&n), 0);
    }

    #[test]
    fn display_contains_counts() {
        let s = NetlistStats::of(&sample());
        let text = s.to_string();
        assert!(text.contains("cells: 4"));
        assert!(text.contains("mux2"));
    }
}
