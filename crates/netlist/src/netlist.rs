//! The flat gate-level netlist container.

use crate::cell::CellKind;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a net (a single-bit wire) inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// Dense index of this net.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifier of a cell inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl CellId {
    /// Dense index of this cell.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A single-bit wire. A net is driven either by a primary/key input or by
/// exactly one cell output.
#[derive(Debug, Clone)]
pub struct Net {
    /// Debug/Verilog name.
    pub name: String,
    /// The cell whose output drives this net, if any.
    pub driver: Option<CellId>,
}

/// A gate instance: a [`CellKind`] with ordered input nets and one output net.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Instance name.
    pub name: String,
    /// Cell function.
    pub kind: CellKind,
    /// Ordered input nets (see [`CellKind`] for per-kind conventions).
    pub inputs: Vec<NetId>,
    /// The net driven by this cell.
    pub output: NetId,
}

/// Errors produced by netlist construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell was given the wrong number of inputs for its kind.
    ArityMismatch {
        /// Offending cell name.
        cell: String,
        /// The kind in question.
        kind: String,
        /// Number of inputs supplied.
        got: usize,
    },
    /// A net that already has a driver was driven again.
    MultipleDrivers {
        /// The doubly-driven net's name.
        net: String,
    },
    /// The combinational logic contains a cycle not broken by a DFF/latch.
    CombinationalCycle {
        /// Name of one cell on the cycle.
        witness: String,
    },
    /// A net has no driver and is not a primary or key input.
    UndrivenNet {
        /// The floating net's name.
        net: String,
    },
    /// A referenced id was out of range.
    InvalidId(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { cell, kind, got } => {
                write!(f, "cell `{cell}` of kind {kind} given {got} inputs")
            }
            NetlistError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            NetlistError::CombinationalCycle { witness } => {
                write!(f, "combinational cycle through cell `{witness}`")
            }
            NetlistError::UndrivenNet { net } => write!(f, "net `{net}` has no driver"),
            NetlistError::InvalidId(what) => write!(f, "invalid identifier: {what}"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// A flat, single-clock gate-level netlist.
///
/// Ports are single bits; multi-bit buses are modeled as families of nets
/// named `bus[i]` (the [`crate::builder::NetlistBuilder`] manages this).
/// Key inputs are kept separate from primary inputs because every locking
/// flow and attack needs to distinguish them.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    key_inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
}

impl Netlist {
    /// Creates an empty netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The netlist's (module) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a fresh undriven net named `name`.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.into(),
            driver: None,
        });
        id
    }

    /// Declares a primary input and returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.inputs.push(id);
        id
    }

    /// Declares a *key* input (the secret of a locked design) and returns
    /// its net.
    pub fn add_key_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.key_inputs.push(id);
        id
    }

    /// Declares `net` as a primary output named `name`.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Rebinds primary output `index` to `net` (keeps its name) — netlist
    /// surgery used by locking transformations and attack models that
    /// substitute an output cone.
    ///
    /// # Panics
    ///
    /// Panics when `index` or `net` is out of range.
    pub fn set_output_net(&mut self, index: usize, net: NetId) {
        assert!(net.index() < self.nets.len(), "invalid net");
        self.outputs[index].1 = net;
    }

    /// Adds a cell, creating a fresh output net named after the cell.
    ///
    /// Returns the output net.
    ///
    /// # Panics
    ///
    /// Panics if the input count is illegal for `kind` (use
    /// [`Netlist::try_add_cell`] for a fallible version).
    pub fn add_cell(&mut self, name: impl Into<String>, kind: CellKind, inputs: Vec<NetId>) -> NetId {
        self.try_add_cell(name, kind, inputs)
            .expect("illegal cell construction")
    }

    /// Fallible variant of [`Netlist::add_cell`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] when the input count is
    /// illegal for `kind`, or [`NetlistError::InvalidId`] when an input net
    /// does not exist.
    pub fn try_add_cell(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: Vec<NetId>,
    ) -> Result<NetId, NetlistError> {
        let name = name.into();
        if !kind.arity_ok(inputs.len()) {
            return Err(NetlistError::ArityMismatch {
                cell: name,
                kind: kind.to_string(),
                got: inputs.len(),
            });
        }
        for &i in &inputs {
            if i.index() >= self.nets.len() {
                return Err(NetlistError::InvalidId(format!("net {i}")));
            }
        }
        let out = self.add_net(name.clone());
        let cell_id = CellId(self.cells.len() as u32);
        self.nets[out.index()].driver = Some(cell_id);
        self.cells.push(Cell {
            name,
            kind,
            inputs,
            output: out,
        });
        Ok(out)
    }

    /// Adds a cell that drives an *existing* net `out` (used by the Verilog
    /// parser where wires are declared before the gates that drive them).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MultipleDrivers`] if `out` is already driven,
    /// plus the same errors as [`Netlist::try_add_cell`].
    pub fn add_cell_driving(
        &mut self,
        name: impl Into<String>,
        kind: CellKind,
        inputs: Vec<NetId>,
        out: NetId,
    ) -> Result<CellId, NetlistError> {
        let name = name.into();
        if !kind.arity_ok(inputs.len()) {
            return Err(NetlistError::ArityMismatch {
                cell: name,
                kind: kind.to_string(),
                got: inputs.len(),
            });
        }
        if out.index() >= self.nets.len() {
            return Err(NetlistError::InvalidId(format!("net {out}")));
        }
        if self.nets[out.index()].driver.is_some() || self.inputs.contains(&out) {
            return Err(NetlistError::MultipleDrivers {
                net: self.nets[out.index()].name.clone(),
            });
        }
        let cell_id = CellId(self.cells.len() as u32);
        self.nets[out.index()].driver = Some(cell_id);
        self.cells.push(Cell {
            name,
            kind,
            inputs,
            output: out,
        });
        Ok(cell_id)
    }

    /// Redirects input pin `pin` of `cell` to `new_net`.
    ///
    /// This is the primitive every locking transformation is built on
    /// (e.g. inserting a key-controlled MUX in front of a gate input).
    ///
    /// # Panics
    ///
    /// Panics when `cell`, `pin`, or `new_net` is out of range.
    pub fn rewire_input(&mut self, cell: CellId, pin: usize, new_net: NetId) {
        assert!(new_net.index() < self.nets.len(), "invalid net");
        let c = &mut self.cells[cell.index()];
        assert!(pin < c.inputs.len(), "invalid pin index");
        c.inputs[pin] = new_net;
    }

    /// Replaces the function of `cell` (keeping its connectivity) — used by
    /// the gate-to-LUT locking transformations of Fig. 1(a)/(b).
    ///
    /// # Panics
    ///
    /// Panics when the new kind's arity does not match the existing inputs.
    pub fn replace_kind(&mut self, cell: CellId, kind: CellKind) {
        let c = &mut self.cells[cell.index()];
        assert!(
            kind.arity_ok(c.inputs.len()),
            "replacement kind arity mismatch"
        );
        c.kind = kind;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// All primary input nets in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// All key input nets in declaration order.
    pub fn key_inputs(&self) -> &[NetId] {
        &self.key_inputs
    }

    /// All primary outputs as `(name, net)` pairs.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Number of cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// The cell with the given id.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Iterator over `(CellId, &Cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterator over `(NetId, &Net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .map(|(i, n)| (NetId(i as u32), n))
    }

    /// `true` if `net` is a primary input.
    pub fn is_primary_input(&self, net: NetId) -> bool {
        self.inputs.contains(&net)
    }

    /// `true` if `net` is a key input.
    pub fn is_key_input(&self, net: NetId) -> bool {
        self.key_inputs.contains(&net)
    }

    /// `true` if `net` appears among the primary outputs.
    pub fn is_primary_output(&self, net: NetId) -> bool {
        self.outputs.iter().any(|(_, n)| *n == net)
    }

    /// Finds a net by name (linear scan; intended for tests and parsing).
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets
            .iter()
            .position(|n| n.name == name)
            .map(|i| NetId(i as u32))
    }

    /// Finds a cell by name (linear scan).
    pub fn find_cell(&self, name: &str) -> Option<CellId> {
        self.cells
            .iter()
            .position(|c| c.name == name)
            .map(|i| CellId(i as u32))
    }

    /// Fanout table: for every net, the list of `(cell, pin)` pairs that read
    /// it. Output index `net.index()`.
    pub fn fanout_table(&self) -> Vec<Vec<(CellId, usize)>> {
        let mut table = vec![Vec::new(); self.nets.len()];
        for (id, c) in self.cells() {
            for (pin, &n) in c.inputs.iter().enumerate() {
                table[n.index()].push((id, pin));
            }
        }
        table
    }

    /// All sequential cells (DFFs and latches).
    pub fn sequential_cells(&self) -> Vec<CellId> {
        self.cells()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(id, _)| id)
            .collect()
    }

    /// `true` when the netlist contains no sequential cells.
    pub fn is_combinational(&self) -> bool {
        self.cells.iter().all(|c| !c.kind.is_sequential())
    }

    // ------------------------------------------------------------------
    // Ordering & validation
    // ------------------------------------------------------------------

    /// Topological order of the *combinational* cells: every combinational
    /// cell appears after the drivers of all its inputs. Sequential cell
    /// outputs and primary/key inputs count as sources; sequential cells are
    /// appended at the end (their inputs are sampled after combinational
    /// settling).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] when the combinational
    /// logic is cyclic.
    pub fn topo_order(&self) -> Result<Vec<CellId>, NetlistError> {
        let n = self.cells.len();
        let mut indeg = vec![0usize; n];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (id, c) in self.cells() {
            if c.kind.is_sequential() {
                continue;
            }
            for &inp in &c.inputs {
                if let Some(drv) = self.nets[inp.index()].driver {
                    if !self.cells[drv.index()].kind.is_sequential() {
                        indeg[id.index()] += 1;
                        dependents[drv.index()].push(id.0);
                    }
                }
            }
        }
        let mut queue: VecDeque<u32> = (0..n as u32)
            .filter(|&i| !self.cells[i as usize].kind.is_sequential() && indeg[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(CellId(u));
            for &v in &dependents[u as usize] {
                indeg[v as usize] -= 1;
                if indeg[v as usize] == 0 {
                    queue.push_back(v);
                }
            }
        }
        let comb_count = self
            .cells
            .iter()
            .filter(|c| !c.kind.is_sequential())
            .count();
        if order.len() != comb_count {
            let witness = self
                .cells()
                .find(|(id, c)| !c.kind.is_sequential() && indeg[id.index()] > 0)
                .map(|(_, c)| c.name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle { witness });
        }
        for (id, c) in self.cells() {
            if c.kind.is_sequential() {
                order.push(id);
            }
        }
        Ok(order)
    }

    /// Validates structural sanity: every net is driven by a cell or is an
    /// input, every output net exists, and the combinational logic is
    /// acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, net) in self.nets() {
            let is_port = self.inputs.contains(&id) || self.key_inputs.contains(&id);
            let read = self.cells.iter().any(|c| c.inputs.contains(&id))
                || self.is_primary_output(id);
            if net.driver.is_none() && !is_port && read {
                return Err(NetlistError::UndrivenNet {
                    net: net.name.clone(),
                });
            }
        }
        for (_, net) in self.outputs.iter() {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::InvalidId(format!("output net {net}")));
            }
        }
        self.topo_order().map(|_| ())
    }

    // ------------------------------------------------------------------
    // Convenience evaluation
    // ------------------------------------------------------------------

    /// Evaluates a purely combinational netlist on `pi` (primary inputs in
    /// declaration order), returning the outputs in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has key inputs (use
    /// [`Netlist::eval_comb_with_key`]), sequential cells, a combinational
    /// cycle, or if `pi.len()` mismatches the input count.
    pub fn eval_comb(&self, pi: &[bool]) -> Vec<bool> {
        assert!(
            self.key_inputs.is_empty(),
            "netlist has key inputs; use eval_comb_with_key"
        );
        self.eval_comb_with_key(pi, &[])
    }

    /// Evaluates a combinational netlist with explicit key bits.
    ///
    /// # Panics
    ///
    /// Panics on sequential cells, cycles, or arity mismatches.
    pub fn eval_comb_with_key(&self, pi: &[bool], key: &[bool]) -> Vec<bool> {
        assert_eq!(pi.len(), self.inputs.len(), "primary input width mismatch");
        assert_eq!(key.len(), self.key_inputs.len(), "key width mismatch");
        assert!(self.is_combinational(), "netlist has sequential cells");
        let order = self.topo_order().expect("combinational cycle");
        let mut values = vec![false; self.nets.len()];
        for (i, &net) in self.inputs.iter().enumerate() {
            values[net.index()] = pi[i];
        }
        for (i, &net) in self.key_inputs.iter().enumerate() {
            values[net.index()] = key[i];
        }
        let mut scratch: Vec<bool> = Vec::with_capacity(8);
        for id in order {
            let c = &self.cells[id.index()];
            scratch.clear();
            scratch.extend(c.inputs.iter().map(|n| values[n.index()]));
            values[c.output.index()] = c.kind.eval_comb(&scratch);
        }
        self.outputs
            .iter()
            .map(|(_, n)| values[n.index()])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_via_gates() -> Netlist {
        // f = (a & !b) | (!a & b)
        let mut n = Netlist::new("xor");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let na = n.add_cell("na", CellKind::Not, vec![a]);
        let nb = n.add_cell("nb", CellKind::Not, vec![b]);
        let t1 = n.add_cell("t1", CellKind::And, vec![a, nb]);
        let t2 = n.add_cell("t2", CellKind::And, vec![na, b]);
        let f = n.add_cell("f", CellKind::Or, vec![t1, t2]);
        n.add_output("f", f);
        n
    }

    #[test]
    fn build_and_eval_xor() {
        let n = xor_via_gates();
        assert_eq!(n.eval_comb(&[false, false]), vec![false]);
        assert_eq!(n.eval_comb(&[true, false]), vec![true]);
        assert_eq!(n.eval_comb(&[false, true]), vec![true]);
        assert_eq!(n.eval_comb(&[true, true]), vec![false]);
    }

    #[test]
    fn validate_ok() {
        assert!(xor_via_gates().validate().is_ok());
    }

    #[test]
    fn counts() {
        let n = xor_via_gates();
        assert_eq!(n.cell_count(), 5);
        assert_eq!(n.net_count(), 7);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
        assert!(n.is_combinational());
    }

    #[test]
    fn key_inputs_tracked_separately() {
        let mut n = Netlist::new("k");
        let a = n.add_input("a");
        let k = n.add_key_input("k0");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);
        assert_eq!(n.inputs().len(), 1);
        assert_eq!(n.key_inputs().len(), 1);
        assert!(n.is_key_input(k));
        assert!(!n.is_key_input(a));
        assert_eq!(n.eval_comb_with_key(&[true], &[true]), vec![false]);
        assert_eq!(n.eval_comb_with_key(&[true], &[false]), vec![true]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let err = n.try_add_cell("x", CellKind::Not, vec![a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { got: 2, .. }));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let w = n.add_net("w");
        n.add_cell_driving("g1", CellKind::Buf, vec![a], w).unwrap();
        let err = n
            .add_cell_driving("g2", CellKind::Not, vec![a], w)
            .unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn driving_an_input_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let err = n
            .add_cell_driving("g", CellKind::Const(true), vec![], a)
            .unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        let w = n.add_net("w");
        let g = n.add_cell("g", CellKind::And, vec![a, w]);
        // close the loop: w is driven by a NOT of g
        n.add_cell_driving("inv", CellKind::Not, vec![g], w).unwrap();
        n.add_output("f", g);
        assert!(matches!(
            n.topo_order(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
        assert!(n.validate().is_err());
    }

    #[test]
    fn dff_breaks_cycles() {
        // A DFF in a feedback loop is fine: q = dff(not q).
        let mut n = Netlist::new("toggle");
        let q = n.add_net("q");
        let nq = n.add_cell("nq", CellKind::Not, vec![q]);
        n.add_cell_driving("ff", CellKind::Dff, vec![nq], q).unwrap();
        n.add_output("q", q);
        assert!(n.topo_order().is_ok());
        assert!(!n.is_combinational());
        assert_eq!(n.sequential_cells().len(), 1);
    }

    #[test]
    fn undriven_read_net_invalid() {
        let mut n = Netlist::new("float");
        let w = n.add_net("floating");
        let f = n.add_cell("g", CellKind::Buf, vec![w]);
        n.add_output("f", f);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn unread_undriven_net_is_tolerated() {
        let mut n = Netlist::new("spare");
        n.add_net("spare");
        let a = n.add_input("a");
        let f = n.add_cell("f", CellKind::Buf, vec![a]);
        n.add_output("f", f);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn rewire_input_changes_function() {
        let mut n = Netlist::new("rw");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::Buf, vec![a]);
        n.add_output("f", f);
        let cell = n.find_cell("f").unwrap();
        assert_eq!(n.eval_comb(&[true, false]), vec![true]);
        n.rewire_input(cell, 0, b);
        assert_eq!(n.eval_comb(&[true, false]), vec![false]);
    }

    #[test]
    fn replace_kind_changes_function() {
        let mut n = Netlist::new("rk");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::And, vec![a, b]);
        n.add_output("f", f);
        let cell = n.find_cell("f").unwrap();
        n.replace_kind(cell, CellKind::Or);
        assert_eq!(n.eval_comb(&[true, false]), vec![true]);
    }

    #[test]
    fn fanout_table_correct() {
        let n = xor_via_gates();
        let a = n.find_net("a").unwrap();
        let table = n.fanout_table();
        // `a` feeds the NOT na and the AND t1.
        assert_eq!(table[a.index()].len(), 2);
    }

    #[test]
    fn find_by_name() {
        let n = xor_via_gates();
        assert!(n.find_net("a").is_some());
        assert!(n.find_net("zz").is_none());
        assert!(n.find_cell("t1").is_some());
        assert!(n.find_cell("zz").is_none());
    }

    #[test]
    fn set_output_net_rebinds() {
        let mut n = Netlist::new("o");
        let a = n.add_input("a");
        let b = n.add_input("b");
        n.add_output("f", a);
        assert_eq!(n.eval_comb(&[true, false]), vec![true]);
        n.set_output_net(0, b);
        assert_eq!(n.eval_comb(&[true, false]), vec![false]);
        assert_eq!(n.outputs()[0].0, "f", "name preserved");
    }

    #[test]
    fn display_ids() {
        assert_eq!(NetId(3).to_string(), "w3");
        assert_eq!(CellId(4).to_string(), "c4");
    }
}
