//! Conversion from a netlist to the connectivity graph of SheLL step 1.
//!
//! Nodes are cells plus virtual nodes for primary inputs and outputs; edges
//! follow signal flow. The paper builds this graph from a FIRRTL intermediate
//! form — here the netlist IR is already flat, so the conversion is direct.

use crate::netlist::{CellId, NetId, Netlist};
use shell_graph::{DiGraph, NodeId};

/// What a connectivity-graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphNode {
    /// A netlist cell.
    Cell(CellId),
    /// A primary-input port (controllable point).
    Input(NetId),
    /// A key-input port.
    KeyInput(NetId),
    /// A primary-output port (observable point).
    Output(usize),
}

/// The connectivity graph of a netlist plus the index maps the selection
/// pipeline needs.
#[derive(Debug, Clone)]
pub struct ConnectivityGraph {
    /// The graph itself; payloads identify the source construct.
    pub graph: DiGraph<GraphNode>,
    /// Graph node of every cell, indexed by `CellId::index()`.
    pub cell_nodes: Vec<NodeId>,
    /// Virtual nodes for primary inputs (controllable set).
    pub input_nodes: Vec<NodeId>,
    /// Virtual nodes for primary outputs (observable set).
    pub output_nodes: Vec<NodeId>,
}

impl ConnectivityGraph {
    /// The controllable ∪ observable node set used by the `ClsC`/`BtwC`
    /// measures of Table II.
    pub fn io_nodes(&self) -> Vec<NodeId> {
        self.input_nodes
            .iter()
            .chain(&self.output_nodes)
            .copied()
            .collect()
    }

    /// The cell behind a graph node, if it is a cell node.
    pub fn as_cell(&self, node: NodeId) -> Option<CellId> {
        match self.graph.payload(node) {
            GraphNode::Cell(c) => Some(*c),
            _ => None,
        }
    }
}

/// Builds the connectivity graph of `netlist`.
///
/// Edges:
/// * input/key port → every cell reading that net,
/// * cell → every cell reading its output net (one edge per reading pin, so
///   fanout multiplicity is preserved — each connection is a routing resource),
/// * cell → output port for nets exported as primary outputs.
pub fn to_graph(netlist: &Netlist) -> ConnectivityGraph {
    let mut graph = DiGraph::with_capacity(netlist.cell_count() + 8);
    let cell_nodes: Vec<NodeId> = netlist
        .cells()
        .map(|(id, _)| graph.add_node(GraphNode::Cell(id)))
        .collect();
    let input_nodes: Vec<NodeId> = netlist
        .inputs()
        .iter()
        .map(|&n| graph.add_node(GraphNode::Input(n)))
        .collect();
    let key_nodes: Vec<NodeId> = netlist
        .key_inputs()
        .iter()
        .map(|&n| graph.add_node(GraphNode::KeyInput(n)))
        .collect();
    let output_nodes: Vec<NodeId> = netlist
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, _)| graph.add_node(GraphNode::Output(i)))
        .collect();

    // Net source lookup: either a cell node or a port node.
    let mut net_source: Vec<Option<NodeId>> = vec![None; netlist.net_count()];
    for (id, c) in netlist.cells() {
        net_source[c.output.index()] = Some(cell_nodes[id.index()]);
    }
    for (i, &n) in netlist.inputs().iter().enumerate() {
        net_source[n.index()] = Some(input_nodes[i]);
    }
    for (i, &n) in netlist.key_inputs().iter().enumerate() {
        net_source[n.index()] = Some(key_nodes[i]);
    }

    for (id, c) in netlist.cells() {
        for &inp in &c.inputs {
            if let Some(src) = net_source[inp.index()] {
                graph.add_edge(src, cell_nodes[id.index()]);
            }
        }
    }
    for (i, (_, net)) in netlist.outputs().iter().enumerate() {
        if let Some(src) = net_source[net.index()] {
            graph.add_edge(src, output_nodes[i]);
        }
    }

    ConnectivityGraph {
        graph,
        cell_nodes,
        input_nodes,
        output_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn sample() -> Netlist {
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_cell("g", CellKind::And, vec![a, b]);
        let h = n.add_cell("h", CellKind::Not, vec![g]);
        n.add_output("h", h);
        n.add_output("g", g);
        n
    }

    #[test]
    fn node_counts() {
        let cg = to_graph(&sample());
        // 2 cells + 2 inputs + 2 outputs.
        assert_eq!(cg.graph.node_count(), 6);
        assert_eq!(cg.cell_nodes.len(), 2);
        assert_eq!(cg.input_nodes.len(), 2);
        assert_eq!(cg.output_nodes.len(), 2);
        assert_eq!(cg.io_nodes().len(), 4);
    }

    #[test]
    fn edges_follow_signal_flow() {
        let n = sample();
        let cg = to_graph(&n);
        let g_cell = cg.cell_nodes[0];
        let h_cell = cg.cell_nodes[1];
        assert!(cg.graph.has_edge(g_cell, h_cell));
        assert!(!cg.graph.has_edge(h_cell, g_cell));
        // a -> g
        assert!(cg.graph.has_edge(cg.input_nodes[0], g_cell));
        // h -> output0, g -> output1
        assert!(cg.graph.has_edge(h_cell, cg.output_nodes[0]));
        assert!(cg.graph.has_edge(g_cell, cg.output_nodes[1]));
    }

    #[test]
    fn fanout_multiplicity_preserved() {
        let mut n = Netlist::new("m");
        let a = n.add_input("a");
        // One cell reads `a` on two pins.
        let f = n.add_cell("f", CellKind::And, vec![a, a]);
        n.add_output("f", f);
        let cg = to_graph(&n);
        assert_eq!(cg.graph.out_degree(cg.input_nodes[0]), 2);
    }

    #[test]
    fn as_cell_distinguishes_ports() {
        let cg = to_graph(&sample());
        assert!(cg.as_cell(cg.cell_nodes[0]).is_some());
        assert!(cg.as_cell(cg.input_nodes[0]).is_none());
        assert!(cg.as_cell(cg.output_nodes[0]).is_none());
    }

    #[test]
    fn key_inputs_get_nodes() {
        let mut n = Netlist::new("k");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);
        let cg = to_graph(&n);
        // 1 cell + 1 input + 1 key + 1 output.
        assert_eq!(cg.graph.node_count(), 4);
        // Key node feeds the cell but is not part of io_nodes (keys are
        // neither observable nor controllable by the attacker pre-unlock).
        assert_eq!(cg.io_nodes().len(), 2);
    }
}
