//! Hierarchical designs: modules, instances, flatten and uniquify.
//!
//! Step 1 of the SheLL flow "simply flattens and uniquifies the design"
//! before building the connectivity graph. This module provides that
//! operation: a [`Design`] is a library of modules (each a flat [`Netlist`]
//! plus child [`Instance`]s); [`Design::flatten`] inlines the instance tree
//! into a single flat netlist with hierarchical names (`inst.sub.net`),
//! uniquifying every use of a module.

use crate::cell::CellKind;
use crate::netlist::{NetId, Netlist, NetlistError};
use std::collections::BTreeMap;

/// Connection of one child port to a net of the parent module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortBinding {
    /// Port name in the child module (an input net name or output port name).
    pub port: String,
    /// The parent-module net bound to that port.
    pub net: NetId,
}

/// An instantiation of a module inside another module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Instance name (hierarchical path component).
    pub name: String,
    /// Name of the instantiated module.
    pub module: String,
    /// Port connections.
    pub bindings: Vec<PortBinding>,
}

/// One module of a hierarchical design.
#[derive(Debug, Clone, Default)]
pub struct ModuleDef {
    /// The module's own gates and ports.
    pub netlist: Netlist,
    /// Child instances.
    pub instances: Vec<Instance>,
}

/// A library of modules with a designated top.
///
/// # Example
///
/// ```
/// use shell_netlist::{Design, Netlist, CellKind, Instance, PortBinding};
///
/// // leaf: f = NOT a
/// let mut leaf = Netlist::new("inv");
/// let a = leaf.add_input("a");
/// let f = leaf.add_cell("g", CellKind::Not, vec![a]);
/// leaf.add_output("f", f);
///
/// // top: two chained inverters
/// let mut design = Design::new("top");
/// design.add_leaf_module(leaf);
/// let top = design.top_mut();
/// let x = top.netlist.add_input("x");
/// let mid = top.netlist.add_net("mid");
/// let y = top.netlist.add_net("y");
/// top.netlist.add_output("y", y);
/// top.instances.push(Instance {
///     name: "u1".into(), module: "inv".into(),
///     bindings: vec![
///         PortBinding { port: "a".into(), net: x },
///         PortBinding { port: "f".into(), net: mid },
///     ],
/// });
/// top.instances.push(Instance {
///     name: "u2".into(), module: "inv".into(),
///     bindings: vec![
///         PortBinding { port: "a".into(), net: mid },
///         PortBinding { port: "f".into(), net: y },
///     ],
/// });
/// let flat = design.flatten().unwrap();
/// assert_eq!(flat.eval_comb(&[true]), vec![true]);
/// ```
#[derive(Debug, Clone)]
pub struct Design {
    modules: BTreeMap<String, ModuleDef>,
    top: String,
}

impl Design {
    /// Creates a design with an empty top module called `top_name`.
    pub fn new(top_name: impl Into<String>) -> Self {
        let top = top_name.into();
        let mut modules = BTreeMap::new();
        modules.insert(
            top.clone(),
            ModuleDef {
                netlist: Netlist::new(top.clone()),
                instances: Vec::new(),
            },
        );
        Self { modules, top }
    }

    /// Name of the top module.
    pub fn top_name(&self) -> &str {
        &self.top
    }

    /// The top module.
    pub fn top(&self) -> &ModuleDef {
        &self.modules[&self.top]
    }

    /// Mutable access to the top module.
    pub fn top_mut(&mut self) -> &mut ModuleDef {
        self.modules.get_mut(&self.top).expect("top module exists")
    }

    /// Adds a leaf module (no child instances). The module is registered
    /// under its netlist name.
    pub fn add_leaf_module(&mut self, netlist: Netlist) {
        self.modules.insert(
            netlist.name().to_string(),
            ModuleDef {
                netlist,
                instances: Vec::new(),
            },
        );
    }

    /// Adds a module with instances.
    pub fn add_module(&mut self, module: ModuleDef) {
        self.modules
            .insert(module.netlist.name().to_string(), module);
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&ModuleDef> {
        self.modules.get(name)
    }

    /// Mutable module lookup.
    pub fn module_mut(&mut self, name: &str) -> Option<&mut ModuleDef> {
        self.modules.get_mut(name)
    }

    /// Names of all modules.
    pub fn module_names(&self) -> impl Iterator<Item = &str> {
        self.modules.keys().map(String::as_str)
    }

    /// Number of modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Flattens the instance tree under the top module into a single flat
    /// netlist. Child nets are renamed `inst.name`; child key inputs are
    /// lifted to top-level key inputs; instance output ports are stitched to
    /// their bound parent nets with buffer cells.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidId`] for unknown modules or unbound
    /// ports, or [`NetlistError::MultipleDrivers`] when an instance output is
    /// bound to an already-driven parent net.
    pub fn flatten(&self) -> Result<Netlist, NetlistError> {
        let mut out = self.top().netlist.clone();
        let mut stack: Vec<(String, &Instance)> = self
            .top()
            .instances
            .iter()
            .rev()
            .map(|i| (String::new(), i))
            .collect();
        // Depth-first inlining; `stack` holds (hierarchical prefix, instance).
        while let Some((prefix, inst)) = stack.pop() {
            let path = if prefix.is_empty() {
                inst.name.clone()
            } else {
                format!("{prefix}.{}", inst.name)
            };
            let child = self
                .modules
                .get(&inst.module)
                .ok_or_else(|| NetlistError::InvalidId(format!("module `{}`", inst.module)))?;
            self.inline_one(&mut out, &path, inst, child)?;
            // Note: nested instances of `child` must be bound to *its* nets,
            // which we have just renamed into `out`. We handle nesting by
            // recursively flattening the child first instead.
            if !child.instances.is_empty() {
                // Replace-by-recursion: flatten the child module fully, then
                // inline that flat netlist. Implemented by inline_one using
                // `flatten_module`, so nothing to push here.
            }
        }
        Ok(out)
    }

    /// Fully flattens `name` (recursively) into a flat netlist.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Design::flatten`].
    pub fn flatten_module(&self, name: &str) -> Result<Netlist, NetlistError> {
        let module = self
            .modules
            .get(name)
            .ok_or_else(|| NetlistError::InvalidId(format!("module `{name}`")))?;
        let mut out = module.netlist.clone();
        for inst in &module.instances {
            let child = self
                .modules
                .get(&inst.module)
                .ok_or_else(|| NetlistError::InvalidId(format!("module `{}`", inst.module)))?;
            self.inline_one(&mut out, &inst.name, inst, child)?;
        }
        Ok(out)
    }

    /// Inlines one instance of `child` into `parent` under hierarchical
    /// prefix `path`. Recursively flattens the child first.
    fn inline_one(
        &self,
        parent: &mut Netlist,
        path: &str,
        inst: &Instance,
        child: &ModuleDef,
    ) -> Result<(), NetlistError> {
        // Recursively flatten the child so we inline a flat netlist.
        let flat_child = if child.instances.is_empty() {
            child.netlist.clone()
        } else {
            self.flatten_module(child.netlist.name())?
        };

        let binding_of = |port: &str| -> Option<NetId> {
            inst.bindings
                .iter()
                .find(|b| b.port == port)
                .map(|b| b.net)
        };

        // Map each child net to a parent net.
        let mut net_map: Vec<Option<NetId>> = vec![None; flat_child.net_count()];

        // Child inputs must be bound.
        for &cin in flat_child.inputs() {
            let pname = flat_child.net(cin).name.clone();
            let bound = binding_of(&pname).ok_or_else(|| {
                NetlistError::InvalidId(format!("unbound input `{pname}` of `{path}`"))
            })?;
            net_map[cin.index()] = Some(bound);
        }
        // Child key inputs are lifted to parent key inputs.
        for &ckey in flat_child.key_inputs() {
            let pname = format!("{path}.{}", flat_child.net(ckey).name);
            let lifted = parent.add_key_input(pname);
            net_map[ckey.index()] = Some(lifted);
        }
        // Every other child net becomes a fresh parent net.
        for (id, net) in flat_child.nets() {
            if net_map[id.index()].is_none() {
                net_map[id.index()] = Some(parent.add_net(format!("{path}.{}", net.name)));
            }
        }
        // Copy cells.
        for (_, c) in flat_child.cells() {
            let inputs: Vec<NetId> = c
                .inputs
                .iter()
                .map(|n| net_map[n.index()].expect("mapped"))
                .collect();
            let out_net = net_map[c.output.index()].expect("mapped");
            parent.add_cell_driving(
                format!("{path}.{}", c.name),
                c.kind,
                inputs,
                out_net,
            )?;
        }
        // Stitch bound outputs with buffers.
        for (pname, onet) in flat_child.outputs() {
            if let Some(bound) = binding_of(pname) {
                let src = net_map[onet.index()].expect("mapped");
                parent.add_cell_driving(
                    format!("{path}.{pname}__out"),
                    CellKind::Buf,
                    vec![src],
                    bound,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn inv_module() -> Netlist {
        let mut leaf = Netlist::new("inv");
        let a = leaf.add_input("a");
        let f = leaf.add_cell("g", CellKind::Not, vec![a]);
        leaf.add_output("f", f);
        leaf
    }

    fn and_module() -> Netlist {
        let mut leaf = Netlist::new("and2");
        let a = leaf.add_input("a");
        let b = leaf.add_input("b");
        let f = leaf.add_cell("g", CellKind::And, vec![a, b]);
        leaf.add_output("f", f);
        leaf
    }

    #[test]
    fn flatten_two_instances() {
        let mut d = Design::new("top");
        d.add_leaf_module(inv_module());
        let top = d.top_mut();
        let x = top.netlist.add_input("x");
        let mid = top.netlist.add_net("mid");
        let y = top.netlist.add_net("y");
        top.netlist.add_output("y", y);
        for (name, i, o) in [("u1", x, mid), ("u2", mid, y)] {
            top.instances.push(Instance {
                name: name.into(),
                module: "inv".into(),
                bindings: vec![
                    PortBinding {
                        port: "a".into(),
                        net: i,
                    },
                    PortBinding {
                        port: "f".into(),
                        net: o,
                    },
                ],
            });
        }
        let flat = d.flatten().unwrap();
        flat.validate().unwrap();
        assert_eq!(flat.eval_comb(&[true]), vec![true]);
        assert_eq!(flat.eval_comb(&[false]), vec![false]);
        // Hierarchical names present.
        assert!(flat.find_cell("u1.g").is_some());
        assert!(flat.find_cell("u2.g").is_some());
    }

    #[test]
    fn flatten_nested_hierarchy() {
        // mid = inv(inv(x)) as a module, top instantiates mid once.
        let mut d = Design::new("top");
        d.add_leaf_module(inv_module());
        let mut mid = ModuleDef {
            netlist: Netlist::new("mid"),
            instances: Vec::new(),
        };
        let a = mid.netlist.add_input("a");
        let w = mid.netlist.add_net("w");
        let f = mid.netlist.add_net("f");
        mid.netlist.add_output("f", f);
        mid.instances.push(Instance {
            name: "i1".into(),
            module: "inv".into(),
            bindings: vec![
                PortBinding {
                    port: "a".into(),
                    net: a,
                },
                PortBinding {
                    port: "f".into(),
                    net: w,
                },
            ],
        });
        mid.instances.push(Instance {
            name: "i2".into(),
            module: "inv".into(),
            bindings: vec![
                PortBinding {
                    port: "a".into(),
                    net: w,
                },
                PortBinding {
                    port: "f".into(),
                    net: f,
                },
            ],
        });
        d.add_module(mid);
        let top = d.top_mut();
        let x = top.netlist.add_input("x");
        let y = top.netlist.add_net("y");
        top.netlist.add_output("y", y);
        top.instances.push(Instance {
            name: "m".into(),
            module: "mid".into(),
            bindings: vec![
                PortBinding {
                    port: "a".into(),
                    net: x,
                },
                PortBinding {
                    port: "f".into(),
                    net: y,
                },
            ],
        });
        let flat = d.flatten().unwrap();
        flat.validate().unwrap();
        assert_eq!(flat.eval_comb(&[true]), vec![true]);
        assert!(flat.find_cell("m.i1.g").is_some(), "uniquified nested names");
    }

    #[test]
    fn key_inputs_lifted() {
        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a");
        let k = locked.add_key_input("k");
        let f = locked.add_cell("g", CellKind::Xor, vec![a, k]);
        locked.add_output("f", f);
        let mut d = Design::new("top");
        d.add_leaf_module(locked);
        let top = d.top_mut();
        let x = top.netlist.add_input("x");
        let y = top.netlist.add_net("y");
        top.netlist.add_output("y", y);
        top.instances.push(Instance {
            name: "u".into(),
            module: "locked".into(),
            bindings: vec![
                PortBinding {
                    port: "a".into(),
                    net: x,
                },
                PortBinding {
                    port: "f".into(),
                    net: y,
                },
            ],
        });
        let flat = d.flatten().unwrap();
        assert_eq!(flat.key_inputs().len(), 1);
        assert_eq!(flat.eval_comb_with_key(&[true], &[true]), vec![false]);
    }

    #[test]
    fn unbound_input_errors() {
        let mut d = Design::new("top");
        d.add_leaf_module(and_module());
        let top = d.top_mut();
        let x = top.netlist.add_input("x");
        let y = top.netlist.add_net("y");
        top.netlist.add_output("y", y);
        top.instances.push(Instance {
            name: "u".into(),
            module: "and2".into(),
            bindings: vec![
                PortBinding {
                    port: "a".into(),
                    net: x,
                },
                // `b` left unbound.
                PortBinding {
                    port: "f".into(),
                    net: y,
                },
            ],
        });
        assert!(d.flatten().is_err());
    }

    #[test]
    fn unknown_module_errors() {
        let mut d = Design::new("top");
        let top = d.top_mut();
        let x = top.netlist.add_input("x");
        top.instances.push(Instance {
            name: "u".into(),
            module: "ghost".into(),
            bindings: vec![PortBinding {
                port: "a".into(),
                net: x,
            }],
        });
        assert!(matches!(d.flatten(), Err(NetlistError::InvalidId(_))));
    }

    #[test]
    fn module_registry() {
        let mut d = Design::new("top");
        d.add_leaf_module(inv_module());
        assert_eq!(d.module_count(), 2);
        assert!(d.module("inv").is_some());
        assert!(d.module("nope").is_none());
        assert!(d.module_names().any(|n| n == "top"));
        assert_eq!(d.top_name(), "top");
    }
}
