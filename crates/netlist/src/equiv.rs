//! Functional equivalence checking (the JasperGold stand-in).
//!
//! Three strategies, all oracle-free:
//!
//! * [`equiv_exhaustive`] — walks every input pattern; exact, for small
//!   combinational cones (≤ 22 inputs).
//! * [`equiv_random`] — Monte-Carlo vectors for wide combinational designs.
//! * [`equiv_sequential_random`] — lockstep random simulation from reset for
//!   sequential designs.
//!
//! SAT-based combinational equivalence (a miter) lives in `shell-attacks`,
//! which owns the CNF machinery.

use crate::netlist::Netlist;
use crate::sim::Simulator;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// No distinguishing pattern found (exact for exhaustive checks).
    Equivalent,
    /// A concrete input assignment on which the two designs differ.
    Counterexample {
        /// Primary-input assignment.
        inputs: Vec<bool>,
        /// Outputs of the first design.
        lhs: Vec<bool>,
        /// Outputs of the second design.
        rhs: Vec<bool>,
    },
    /// The designs are structurally incomparable (port count mismatch).
    Incomparable(String),
}

impl EquivResult {
    /// `true` when the check concluded equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

fn check_shape(a: &Netlist, b: &Netlist) -> Option<EquivResult> {
    if a.inputs().len() != b.inputs().len() {
        return Some(EquivResult::Incomparable(format!(
            "input count {} vs {}",
            a.inputs().len(),
            b.inputs().len()
        )));
    }
    if a.outputs().len() != b.outputs().len() {
        return Some(EquivResult::Incomparable(format!(
            "output count {} vs {}",
            a.outputs().len(),
            b.outputs().len()
        )));
    }
    None
}

/// Exhaustively compares two combinational netlists over all `2^n` input
/// patterns. Key inputs of each design must be bound by the caller via
/// `lhs_key` / `rhs_key` (pass `&[]` for unkeyed designs).
///
/// # Panics
///
/// Panics if either design is sequential or has more than 22 primary inputs
/// (use [`equiv_random`] instead).
pub fn equiv_exhaustive(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
) -> EquivResult {
    if let Some(bad) = check_shape(a, b) {
        return bad;
    }
    let n = a.inputs().len();
    assert!(n <= 22, "exhaustive equivalence limited to 22 inputs");
    assert!(a.is_combinational() && b.is_combinational());
    let mut pattern = vec![false; n];
    for bits in 0..(1u64 << n) {
        for (i, p) in pattern.iter_mut().enumerate() {
            *p = (bits >> i) & 1 == 1;
        }
        let lhs = a.eval_comb_with_key(&pattern, lhs_key);
        let rhs = b.eval_comb_with_key(&pattern, rhs_key);
        if lhs != rhs {
            return EquivResult::Counterexample {
                inputs: pattern,
                lhs,
                rhs,
            };
        }
    }
    EquivResult::Equivalent
}

/// Compares two combinational netlists on `vectors` uniformly random input
/// patterns drawn from a deterministic xorshift stream seeded with `seed`.
pub fn equiv_random(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
    vectors: usize,
    seed: u64,
) -> EquivResult {
    if let Some(bad) = check_shape(a, b) {
        return bad;
    }
    assert!(a.is_combinational() && b.is_combinational());
    let n = a.inputs().len();
    let mut rng = XorShift::new(seed);
    for _ in 0..vectors {
        let pattern: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
        let lhs = a.eval_comb_with_key(&pattern, lhs_key);
        let rhs = b.eval_comb_with_key(&pattern, rhs_key);
        if lhs != rhs {
            return EquivResult::Counterexample {
                inputs: pattern,
                lhs,
                rhs,
            };
        }
    }
    EquivResult::Equivalent
}

/// Lockstep random simulation of two sequential designs from reset.
///
/// Both designs start with all-zero state; `cycles` random input vectors are
/// applied to both and every cycle's outputs are compared.
pub fn equiv_sequential_random(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
    cycles: usize,
    seed: u64,
) -> EquivResult {
    if let Some(bad) = check_shape(a, b) {
        return bad;
    }
    let n = a.inputs().len();
    let mut rng = XorShift::new(seed);
    let mut sim_a = Simulator::new(a);
    let mut sim_b = Simulator::new(b);
    for _ in 0..cycles {
        let pattern: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
        let lhs = sim_a.step(&pattern, lhs_key);
        let rhs = sim_b.step(&pattern, rhs_key);
        if lhs != rhs {
            return EquivResult::Counterexample {
                inputs: pattern,
                lhs,
                rhs,
            };
        }
    }
    EquivResult::Equivalent
}

/// Minimal deterministic PRNG so this crate stays dependency-free.
#[derive(Debug, Clone)]
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub(crate) fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn and2() -> Netlist {
        let mut n = Netlist::new("and2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::And, vec![a, b]);
        n.add_output("f", f);
        n
    }

    fn and2_via_nand() -> Netlist {
        let mut n = Netlist::new("and2n");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let t = n.add_cell("t", CellKind::Nand, vec![a, b]);
        let f = n.add_cell("f", CellKind::Not, vec![t]);
        n.add_output("f", f);
        n
    }

    fn or2() -> Netlist {
        let mut n = Netlist::new("or2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::Or, vec![a, b]);
        n.add_output("f", f);
        n
    }

    #[test]
    fn exhaustive_equivalent() {
        assert!(equiv_exhaustive(&and2(), &and2_via_nand(), &[], &[]).is_equivalent());
    }

    #[test]
    fn exhaustive_counterexample() {
        match equiv_exhaustive(&and2(), &or2(), &[], &[]) {
            EquivResult::Counterexample { inputs, lhs, rhs } => {
                let a = and2().eval_comb(&inputs);
                let o = or2().eval_comb(&inputs);
                assert_eq!(a, lhs);
                assert_eq!(o, rhs);
                assert_ne!(lhs, rhs);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_incomparable() {
        let mut single = Netlist::new("one");
        let a = single.add_input("a");
        let f = single.add_cell("f", CellKind::Buf, vec![a]);
        single.add_output("f", f);
        assert!(matches!(
            equiv_exhaustive(&and2(), &single, &[], &[]),
            EquivResult::Incomparable(_)
        ));
    }

    #[test]
    fn keyed_equivalence_depends_on_key() {
        // locked: f = (a AND b) XOR k
        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let k = locked.add_key_input("k");
        let t = locked.add_cell("t", CellKind::And, vec![a, b]);
        let f = locked.add_cell("f", CellKind::Xor, vec![t, k]);
        locked.add_output("f", f);
        assert!(equiv_exhaustive(&and2(), &locked, &[], &[false]).is_equivalent());
        assert!(!equiv_exhaustive(&and2(), &locked, &[], &[true]).is_equivalent());
    }

    #[test]
    fn random_agrees_with_exhaustive() {
        assert!(
            equiv_random(&and2(), &and2_via_nand(), &[], &[], 200, 42).is_equivalent()
        );
        assert!(!equiv_random(&and2(), &or2(), &[], &[], 200, 42).is_equivalent());
    }

    #[test]
    fn sequential_equiv_detects_difference() {
        // Two counters: q' = q ^ 1 vs q' = q (constant).
        let mut t1 = Netlist::new("t1");
        {
            let q = t1.add_net("q");
            let one = t1.add_cell("one", CellKind::Const(true), vec![]);
            let nx = t1.add_cell("nx", CellKind::Xor, vec![q, one]);
            t1.add_cell_driving("ff", CellKind::Dff, vec![nx], q).unwrap();
            t1.add_output("q", q);
        }
        let mut t2 = Netlist::new("t2");
        {
            let q = t2.add_net("q");
            let buf = t2.add_cell("b", CellKind::Buf, vec![q]);
            t2.add_cell_driving("ff", CellKind::Dff, vec![buf], q).unwrap();
            t2.add_output("q", q);
        }
        assert!(!equiv_sequential_random(&t1, &t2, &[], &[], 8, 7).is_equivalent());
        assert!(equiv_sequential_random(&t1, &t1.clone(), &[], &[], 8, 7).is_equivalent());
    }

    #[test]
    fn xorshift_deterministic() {
        let mut a = XorShift::new(9);
        let mut b = XorShift::new(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
