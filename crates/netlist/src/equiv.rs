//! Functional equivalence checking (the JasperGold stand-in).
//!
//! Four strategies behind one entry point ([`equiv`] with a [`Method`]):
//!
//! * [`Method::Exhaustive`] — walks every input pattern; exact, for small
//!   combinational cones (≤ 22 inputs).
//! * [`Method::Random`] — Monte-Carlo vectors for wide combinational
//!   designs; can only *find* counterexamples, never prove equivalence.
//! * [`Method::SequentialRandom`] — lockstep random simulation from reset
//!   for sequential designs.
//! * [`Method::Sat`] — a SAT miter: exact for combinational designs of any
//!   width. The CNF machinery lives in `shell-sat`/`shell-verify` (this
//!   crate sits below both), so the backend is *installed* at startup via
//!   [`install_sat_backend`] — `shell_verify::install()` does it — and
//!   [`Method::Sat`] reports [`EquivResult::Incomparable`] until then.
//!
//! All strategies share one shape-check ([`shape_check`]) and one
//! counterexample report path, so a port-count or key-width mismatch is
//! always an `Incomparable` (never a panic deep inside a simulator) and a
//! mismatch is always reported with the full input assignment plus both
//! output vectors.
//!
//! The historical free functions ([`equiv_exhaustive`], [`equiv_random`],
//! [`equiv_sequential_random`]) remain as thin wrappers.

use crate::netlist::Netlist;
use crate::sim::Simulator;
use std::sync::OnceLock;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivResult {
    /// No distinguishing pattern found (exact for exhaustive/SAT checks).
    Equivalent,
    /// A concrete input assignment on which the two designs differ. For
    /// sequential checks `inputs` is the whole stimulus (cycle-major
    /// concatenation of per-cycle input vectors) and `lhs`/`rhs` are the
    /// outputs at the first diverging cycle.
    Counterexample {
        /// Primary-input assignment.
        inputs: Vec<bool>,
        /// Outputs of the first design.
        lhs: Vec<bool>,
        /// Outputs of the second design.
        rhs: Vec<bool>,
    },
    /// The designs are structurally incomparable (port count or key width
    /// mismatch), or the requested method cannot run (no SAT backend, a
    /// combinational cycle, a solver budget exhausted).
    Incomparable(String),
}

impl EquivResult {
    /// `true` when the check concluded equivalence.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }

    /// `true` when the check produced a concrete distinguishing pattern.
    pub fn is_counterexample(&self) -> bool {
        matches!(self, EquivResult::Counterexample { .. })
    }
}

/// Equivalence-checking strategy selector for [`equiv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Every input pattern of a combinational pair (≤ 22 inputs).
    Exhaustive,
    /// Monte-Carlo vectors on a combinational pair.
    Random {
        /// Number of random vectors.
        vectors: usize,
        /// PRNG seed.
        seed: u64,
    },
    /// Lockstep random simulation of a sequential pair from reset.
    SequentialRandom {
        /// Number of clock cycles.
        cycles: usize,
        /// PRNG seed.
        seed: u64,
    },
    /// SAT miter through the installed backend ([`install_sat_backend`]).
    Sat,
}

/// Signature of a pluggable SAT equivalence backend:
/// `(lhs, rhs, lhs_key, rhs_key) → result`.
pub type SatBackend = fn(&Netlist, &Netlist, &[bool], &[bool]) -> EquivResult;

static SAT_BACKEND: OnceLock<SatBackend> = OnceLock::new();

/// Installs the process-wide SAT equivalence backend used by
/// [`Method::Sat`]. The first installation wins (subsequent calls return
/// `false` and keep the original); installing the same function twice is
/// reported as success.
pub fn install_sat_backend(backend: SatBackend) -> bool {
    SAT_BACKEND.set(backend).is_ok() || SAT_BACKEND.get() == Some(&backend)
}

/// `true` when a SAT backend has been installed.
pub fn sat_backend_installed() -> bool {
    SAT_BACKEND.get().is_some()
}

/// Checks that `a` and `b` are comparable: equal primary-input and output
/// counts, and key vectors matching each design's key-input count. Returns
/// the [`EquivResult::Incomparable`] to report, or `None` when the shapes
/// line up. Every equivalence strategy — including the SAT backend in
/// `shell-verify` — runs this exact check first.
pub fn shape_check(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
) -> Option<EquivResult> {
    if a.inputs().len() != b.inputs().len() {
        return Some(EquivResult::Incomparable(format!(
            "input count {} vs {}",
            a.inputs().len(),
            b.inputs().len()
        )));
    }
    if a.outputs().len() != b.outputs().len() {
        return Some(EquivResult::Incomparable(format!(
            "output count {} vs {}",
            a.outputs().len(),
            b.outputs().len()
        )));
    }
    if lhs_key.len() != a.key_inputs().len() {
        return Some(EquivResult::Incomparable(format!(
            "lhs key width {} vs {} key inputs",
            lhs_key.len(),
            a.key_inputs().len()
        )));
    }
    if rhs_key.len() != b.key_inputs().len() {
        return Some(EquivResult::Incomparable(format!(
            "rhs key width {} vs {} key inputs",
            rhs_key.len(),
            b.key_inputs().len()
        )));
    }
    None
}

/// The one counterexample report path: every strategy funnels a mismatch
/// through here so the result always carries the distinguishing inputs and
/// both output vectors.
fn report(inputs: Vec<bool>, lhs: Vec<bool>, rhs: Vec<bool>) -> EquivResult {
    debug_assert_ne!(lhs, rhs, "report called without a mismatch");
    EquivResult::Counterexample { inputs, lhs, rhs }
}

/// Compares the designs on one combinational pattern, reporting through the
/// shared path on mismatch.
fn compare_pattern(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
    pattern: &[bool],
) -> Option<EquivResult> {
    let lhs = a.eval_comb_with_key(pattern, lhs_key);
    let rhs = b.eval_comb_with_key(pattern, rhs_key);
    if lhs != rhs {
        Some(report(pattern.to_vec(), lhs, rhs))
    } else {
        None
    }
}

/// Runs the selected equivalence [`Method`] on a pair of designs.
///
/// Key inputs of each design must be bound by the caller via
/// `lhs_key` / `rhs_key` (pass `&[]` for unkeyed designs); a wrong key
/// width is an [`EquivResult::Incomparable`], not a panic.
///
/// # Panics
///
/// Propagates the per-method limits: [`Method::Exhaustive`] panics on more
/// than 22 inputs, and the combinational methods panic on sequential
/// designs (use [`Method::SequentialRandom`] or the bounded unroller in
/// `shell-verify`).
pub fn equiv(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
    method: Method,
) -> EquivResult {
    if let Some(bad) = shape_check(a, b, lhs_key, rhs_key) {
        return bad;
    }
    match method {
        Method::Exhaustive => {
            let n = a.inputs().len();
            assert!(n <= 22, "exhaustive equivalence limited to 22 inputs");
            assert!(a.is_combinational() && b.is_combinational());
            // n == 0 still walks the single empty pattern: two constant
            // circuits are compared on their (only) evaluation.
            let mut pattern = vec![false; n];
            for bits in 0..(1u64 << n) {
                for (i, p) in pattern.iter_mut().enumerate() {
                    *p = (bits >> i) & 1 == 1;
                }
                if let Some(cex) = compare_pattern(a, b, lhs_key, rhs_key, &pattern) {
                    return cex;
                }
            }
            EquivResult::Equivalent
        }
        Method::Random { vectors, seed } => {
            assert!(a.is_combinational() && b.is_combinational());
            let n = a.inputs().len();
            let mut rng = XorShift::new(seed);
            for _ in 0..vectors {
                let pattern: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
                if let Some(cex) = compare_pattern(a, b, lhs_key, rhs_key, &pattern) {
                    return cex;
                }
            }
            EquivResult::Equivalent
        }
        Method::SequentialRandom { cycles, seed } => {
            let n = a.inputs().len();
            let mut rng = XorShift::new(seed);
            let mut sim_a = Simulator::new(a);
            let mut sim_b = Simulator::new(b);
            let mut stimulus: Vec<bool> = Vec::new();
            for _ in 0..cycles {
                let pattern: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
                stimulus.extend_from_slice(&pattern);
                let lhs = sim_a.step(&pattern, lhs_key);
                let rhs = sim_b.step(&pattern, rhs_key);
                if lhs != rhs {
                    return report(stimulus, lhs, rhs);
                }
            }
            EquivResult::Equivalent
        }
        Method::Sat => match SAT_BACKEND.get() {
            Some(backend) => backend(a, b, lhs_key, rhs_key),
            None => EquivResult::Incomparable(
                "no SAT backend installed (call shell_verify::install first)".into(),
            ),
        },
    }
}

/// Exhaustively compares two combinational netlists over all `2^n` input
/// patterns (wrapper over [`equiv`] with [`Method::Exhaustive`]).
///
/// # Panics
///
/// Panics if either design is sequential or has more than 22 primary inputs
/// (use [`equiv_random`] or [`Method::Sat`] instead).
pub fn equiv_exhaustive(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
) -> EquivResult {
    equiv(a, b, lhs_key, rhs_key, Method::Exhaustive)
}

/// Compares two combinational netlists on `vectors` uniformly random input
/// patterns drawn from a deterministic xorshift stream seeded with `seed`
/// (wrapper over [`equiv`] with [`Method::Random`]).
pub fn equiv_random(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
    vectors: usize,
    seed: u64,
) -> EquivResult {
    equiv(a, b, lhs_key, rhs_key, Method::Random { vectors, seed })
}

/// Lockstep random simulation of two sequential designs from reset
/// (wrapper over [`equiv`] with [`Method::SequentialRandom`]).
///
/// Both designs start with all-zero state; `cycles` random input vectors are
/// applied to both and every cycle's outputs are compared. On mismatch the
/// counterexample's `inputs` carries the whole stimulus up to and including
/// the diverging cycle.
pub fn equiv_sequential_random(
    a: &Netlist,
    b: &Netlist,
    lhs_key: &[bool],
    rhs_key: &[bool],
    cycles: usize,
    seed: u64,
) -> EquivResult {
    equiv(a, b, lhs_key, rhs_key, Method::SequentialRandom { cycles, seed })
}

/// Minimal deterministic PRNG so this crate stays dependency-free.
#[derive(Debug, Clone)]
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed.max(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub(crate) fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn and2() -> Netlist {
        let mut n = Netlist::new("and2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::And, vec![a, b]);
        n.add_output("f", f);
        n
    }

    fn and2_via_nand() -> Netlist {
        let mut n = Netlist::new("and2n");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let t = n.add_cell("t", CellKind::Nand, vec![a, b]);
        let f = n.add_cell("f", CellKind::Not, vec![t]);
        n.add_output("f", f);
        n
    }

    fn or2() -> Netlist {
        let mut n = Netlist::new("or2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::Or, vec![a, b]);
        n.add_output("f", f);
        n
    }

    #[test]
    fn exhaustive_equivalent() {
        assert!(equiv_exhaustive(&and2(), &and2_via_nand(), &[], &[]).is_equivalent());
    }

    #[test]
    fn exhaustive_counterexample() {
        match equiv_exhaustive(&and2(), &or2(), &[], &[]) {
            EquivResult::Counterexample { inputs, lhs, rhs } => {
                let a = and2().eval_comb(&inputs);
                let o = or2().eval_comb(&inputs);
                assert_eq!(a, lhs);
                assert_eq!(o, rhs);
                assert_ne!(lhs, rhs);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_incomparable() {
        let mut single = Netlist::new("one");
        let a = single.add_input("a");
        let f = single.add_cell("f", CellKind::Buf, vec![a]);
        single.add_output("f", f);
        assert!(matches!(
            equiv_exhaustive(&and2(), &single, &[], &[]),
            EquivResult::Incomparable(_)
        ));
    }

    #[test]
    fn key_width_mismatch_incomparable_not_panic() {
        // and2 has no key inputs: a non-empty key vector is a shape error
        // surfaced as Incomparable through the shared shape check.
        match equiv_exhaustive(&and2(), &or2(), &[true], &[]) {
            EquivResult::Incomparable(msg) => assert!(msg.contains("key width"), "{msg}"),
            other => panic!("expected Incomparable, got {other:?}"),
        }
        match equiv_random(&and2(), &or2(), &[], &[true, false], 16, 1) {
            EquivResult::Incomparable(msg) => assert!(msg.contains("key width"), "{msg}"),
            other => panic!("expected Incomparable, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_zero_input_circuits() {
        // Constant circuits have n = 0: the single empty pattern still
        // distinguishes them, and the counterexample reports empty inputs
        // with the differing output vectors.
        let konst = |v: bool, name: &str| {
            let mut n = Netlist::new(name);
            let c = n.add_cell("c", CellKind::Const(v), vec![]);
            n.add_output("f", c);
            n
        };
        assert!(equiv_exhaustive(&konst(true, "t"), &konst(true, "t2"), &[], &[])
            .is_equivalent());
        match equiv_exhaustive(&konst(true, "t"), &konst(false, "f"), &[], &[]) {
            EquivResult::Counterexample { inputs, lhs, rhs } => {
                assert!(inputs.is_empty());
                assert_eq!(lhs, vec![true]);
                assert_eq!(rhs, vec![false]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_zero_output_circuits_equivalent() {
        // No outputs ⇒ nothing observable ⇒ equivalent.
        let mut a = Netlist::new("a");
        a.add_input("x");
        let mut b = Netlist::new("b");
        let xb = b.add_input("x");
        b.add_cell("inv", CellKind::Not, vec![xb]);
        assert!(equiv_exhaustive(&a, &b, &[], &[]).is_equivalent());
    }

    #[test]
    fn keyed_equivalence_depends_on_key() {
        // locked: f = (a AND b) XOR k
        let mut locked = Netlist::new("locked");
        let a = locked.add_input("a");
        let b = locked.add_input("b");
        let k = locked.add_key_input("k");
        let t = locked.add_cell("t", CellKind::And, vec![a, b]);
        let f = locked.add_cell("f", CellKind::Xor, vec![t, k]);
        locked.add_output("f", f);
        assert!(equiv_exhaustive(&and2(), &locked, &[], &[false]).is_equivalent());
        assert!(!equiv_exhaustive(&and2(), &locked, &[], &[true]).is_equivalent());
    }

    #[test]
    fn random_agrees_with_exhaustive() {
        assert!(
            equiv_random(&and2(), &and2_via_nand(), &[], &[], 200, 42).is_equivalent()
        );
        assert!(!equiv_random(&and2(), &or2(), &[], &[], 200, 42).is_equivalent());
    }

    #[test]
    fn sequential_equiv_detects_difference() {
        // Two counters: q' = q ^ 1 vs q' = q (constant).
        let mut t1 = Netlist::new("t1");
        {
            let q = t1.add_net("q");
            let one = t1.add_cell("one", CellKind::Const(true), vec![]);
            let nx = t1.add_cell("nx", CellKind::Xor, vec![q, one]);
            t1.add_cell_driving("ff", CellKind::Dff, vec![nx], q).unwrap();
            t1.add_output("q", q);
        }
        let mut t2 = Netlist::new("t2");
        {
            let q = t2.add_net("q");
            let buf = t2.add_cell("b", CellKind::Buf, vec![q]);
            t2.add_cell_driving("ff", CellKind::Dff, vec![buf], q).unwrap();
            t2.add_output("q", q);
        }
        assert!(!equiv_sequential_random(&t1, &t2, &[], &[], 8, 7).is_equivalent());
        assert!(equiv_sequential_random(&t1, &t1.clone(), &[], &[], 8, 7).is_equivalent());
    }

    #[test]
    fn sequential_counterexample_carries_full_stimulus() {
        // q' = d (one-cycle delay) vs combinational passthrough wrapped in
        // a DFF-equal design: diverges at cycle 0 for d=1... build two
        // delays of different depth instead: q' = d vs q'' = q' (2-cycle).
        let delay1 = {
            let mut n = Netlist::new("d1");
            let d = n.add_input("d");
            let q = n.add_cell("ff", CellKind::Dff, vec![d]);
            n.add_output("q", q);
            n
        };
        let delay2 = {
            let mut n = Netlist::new("d2");
            let d = n.add_input("d");
            let q1 = n.add_cell("ff1", CellKind::Dff, vec![d]);
            let q2 = n.add_cell("ff2", CellKind::Dff, vec![q1]);
            n.add_output("q", q2);
            n
        };
        match equiv_sequential_random(&delay1, &delay2, &[], &[], 16, 3) {
            EquivResult::Counterexample { inputs, lhs, rhs } => {
                // One input bit per cycle: stimulus length = diverging cycle
                // index + 1, and the final cycle's outputs differ.
                assert!(!inputs.is_empty());
                assert_ne!(lhs, rhs);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn sat_method_without_backend_is_incomparable() {
        // The backend registry is process-global; this test only asserts
        // the uninstalled message shape when nothing was installed yet, and
        // otherwise that Sat dispatches somewhere.
        match equiv(&and2(), &and2_via_nand(), &[], &[], Method::Sat) {
            EquivResult::Equivalent => assert!(sat_backend_installed()),
            EquivResult::Incomparable(msg) => {
                assert!(!sat_backend_installed());
                assert!(msg.contains("SAT backend"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xorshift_deterministic() {
        let mut a = XorShift::new(9);
        let mut b = XorShift::new(9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
