//! Gate-level netlist intermediate representation for the SheLL reproduction.
//!
//! This crate plays the role that **Yosys RTLIL + FIRRTL + PyVerilog** play in
//! the paper's flow: it is the circuit data structure every other subsystem
//! operates on. It provides
//!
//! * a flat gate-level [`Netlist`] of [`Cell`]s connected by [`Net`]s, with
//!   named primary inputs/outputs, *key* inputs (for locking) and single-clock
//!   sequential elements (DFFs and transparent latches),
//! * a hierarchical [`Design`] of modules and instances with
//!   flatten/uniquify (step 1 of Fig. 4 flattens and uniquifies the design
//!   before connectivity analysis),
//! * a levelized, event-free [`sim::Simulator`] for combinational and
//!   sequential functional simulation (this is the "oracle" of the threat
//!   model — the activated chip with full scan access),
//! * equivalence checking ([`equiv()`](equiv::equiv)) — exhaustive for small cones, Monte
//!   Carlo for larger ones (the JasperGold stand-in),
//! * a structural-Verilog subset writer and parser ([`verilog`]),
//! * a word-level [`builder::NetlistBuilder`] used by the benchmark
//!   generators, and
//! * conversion to the connectivity graph ([`graph::to_graph`]) consumed by
//!   SheLL's selection pipeline.
//!
//! # Example
//!
//! ```
//! use shell_netlist::{Netlist, CellKind};
//!
//! // Build f = a AND (NOT b).
//! let mut n = Netlist::new("demo");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let nb = n.add_cell("nb", CellKind::Not, vec![b]);
//! let f = n.add_cell("f", CellKind::And, vec![a, nb]);
//! n.add_output("f", f);
//! assert_eq!(n.eval_comb(&[true, false]), vec![true]);
//! ```

pub mod builder;
pub mod cell;
pub mod equiv;
pub mod graph;
pub mod hierarchy;
pub mod netlist;
pub mod sim;
pub mod stats;
pub mod verilog;

pub use builder::NetlistBuilder;
pub use cell::{CellKind, LutMask};
pub use equiv::{
    equiv, equiv_exhaustive, equiv_random, equiv_sequential_random, install_sat_backend,
    sat_backend_installed, shape_check, EquivResult, Method, SatBackend,
};
pub use hierarchy::{Design, Instance, ModuleDef, PortBinding};
pub use netlist::{Cell, CellId, Net, NetId, Netlist, NetlistError};
pub use sim::Simulator;
pub use stats::NetlistStats;
