//! Cyclic reduction — the attacker preprocessing of \[26\].
//!
//! Raw eFPGA routing meshes contain combinational cycles; since redacted
//! modules are (almost always) acyclic, an attacker cuts cycle-forming
//! edges before encoding the netlist for SAT. The cut is *heuristic*: when
//! it happens to sever an edge the true configuration relies on, the attack
//! proceeds on a wrong function — which is exactly the risk the paper's
//! baselines accept and SheLL's shrinking step removes.

use shell_graph::{strongly_connected_components, DiGraph};
use shell_guard::{Budget, Exhausted};
use shell_netlist::{CellId, CellKind, NetId, Netlist};

/// Outcome of the reduction.
#[derive(Debug, Clone)]
pub struct CyclicReductionReport {
    /// The acyclic netlist.
    pub netlist: Netlist,
    /// Number of cell input edges rewired to constant 0.
    pub edges_cut: usize,
    /// Number of cyclic components found before cutting.
    pub cycles_found: usize,
}

/// Cuts combinational cycles in `locked` by rewiring one in-cycle input of a
/// deterministic victim cell per cycle to constant 0, repeating until the
/// netlist is acyclic.
///
/// The victim choice prefers mux *data* pins (cutting a select would corrupt
/// far more configurations than cutting one data path).
pub fn cyclic_reduction(locked: &Netlist) -> CyclicReductionReport {
    cyclic_reduction_budgeted(locked, &Budget::unlimited())
        .expect("an unlimited budget cannot exhaust")
}

/// [`cyclic_reduction`] under a [`Budget`]: one quota step is spent per cut
/// edge, and the deadline/cancellation flag is polled once per SCC round
/// (each round recomputes the strongly connected components — the expensive
/// part of the loop).
///
/// # Errors
///
/// Returns the [`Exhausted`] reason when the budget runs out before the
/// netlist is acyclic.
pub fn cyclic_reduction_budgeted(
    locked: &Netlist,
    budget: &Budget,
) -> Result<CyclicReductionReport, Exhausted> {
    let _span = shell_trace::span!("attack.cyclic");
    let mut netlist = locked.clone();
    let mut edges_cut = 0usize;
    let mut cycles_found = 0usize;
    let mut zero: Option<NetId> = None;
    // Bounded: every iteration cuts at least one edge.
    for _round in 0..netlist.cell_count().max(1) {
        budget.checkpoint()?;
        let sccs = cyclic_components(&netlist);
        if sccs.is_empty() {
            break;
        }
        if cycles_found == 0 {
            cycles_found = sccs.len();
        }
        for comp in sccs {
            let in_comp: std::collections::HashSet<CellId> = comp.iter().copied().collect();
            // Victim: the highest-id mux with an in-component data pin, else
            // the highest-id cell with any in-component input.
            let mut victim: Option<(CellId, usize)> = None;
            for &cid in &comp {
                let c = netlist.cell(cid);
                let data_pins: Vec<usize> = match c.kind {
                    CellKind::Mux2 => vec![1, 2],
                    CellKind::Mux4 => vec![2, 3, 4, 5],
                    _ => (0..c.inputs.len()).collect(),
                };
                for pin in data_pins {
                    let src = netlist.net(c.inputs[pin]).driver;
                    if let Some(drv) = src {
                        if in_comp.contains(&drv) {
                            let better = match victim {
                                None => true,
                                Some((v, _)) => {
                                    let vc = netlist.cell(v);
                                    // Prefer muxes; break ties by id.
                                    (c.kind.is_mux() && !vc.kind.is_mux())
                                        || (c.kind.is_mux() == vc.kind.is_mux() && cid > v)
                                }
                            };
                            if better {
                                victim = Some((cid, pin));
                            }
                        }
                    }
                }
            }
            if let Some((cid, pin)) = victim {
                budget.spend(1)?;
                let z = *zero.get_or_insert_with(|| {
                    netlist.add_cell("cyc_tie0", CellKind::Const(false), vec![])
                });
                netlist.rewire_input(cid, pin, z);
                edges_cut += 1;
            }
        }
    }
    Ok(CyclicReductionReport {
        netlist,
        edges_cut,
        cycles_found,
    })
}

/// Cyclic SCCs (size > 1 or self-loop) of the combinational cell graph.
fn cyclic_components(netlist: &Netlist) -> Vec<Vec<CellId>> {
    let mut g: DiGraph<CellId> = DiGraph::with_capacity(netlist.cell_count());
    let nodes: Vec<_> = netlist.cells().map(|(id, _)| g.add_node(id)).collect();
    for (id, c) in netlist.cells() {
        if c.kind.is_sequential() {
            continue;
        }
        for &inp in &c.inputs {
            if let Some(drv) = netlist.net(inp).driver {
                if !netlist.cell(drv).kind.is_sequential() {
                    g.add_edge(nodes[drv.index()], nodes[id.index()]);
                }
            }
        }
    }
    strongly_connected_components(&g)
        .into_iter()
        .filter(|comp| {
            comp.len() > 1
                || g.successors(comp[0]).contains(&comp[0])
        })
        .map(|comp| comp.into_iter().map(|n| *g.payload(n)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acyclic_netlist_untouched() {
        let mut n = Netlist::new("a");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_cell("f", CellKind::And, vec![a, b]);
        n.add_output("f", f);
        let r = cyclic_reduction(&n);
        assert_eq!(r.edges_cut, 0);
        assert_eq!(r.cycles_found, 0);
        assert_eq!(r.netlist.cell_count(), 1);
    }

    #[test]
    fn mux_ring_cut() {
        // Two muxes in a combinational ring through their data pins.
        let mut n = Netlist::new("ring");
        let a = n.add_input("a");
        let k0 = n.add_key_input("k0");
        let k1 = n.add_key_input("k1");
        let t0 = n.add_net("t0");
        let t1 = n.add_net("t1");
        n.add_cell_driving("m0", CellKind::Mux2, vec![k0, a, t1], t0)
            .unwrap();
        n.add_cell_driving("m1", CellKind::Mux2, vec![k1, a, t0], t1)
            .unwrap();
        n.add_output("f", t1);
        assert!(n.topo_order().is_err());
        let r = cyclic_reduction(&n);
        assert!(r.netlist.topo_order().is_ok(), "reduced netlist acyclic");
        assert!(r.edges_cut >= 1);
        assert_eq!(r.cycles_found, 1);
        // Keys selecting the acyclic paths still behave as before:
        // k0 = 0, k1 = 0 → f = a.
        assert_eq!(
            r.netlist.eval_comb_with_key(&[true], &[false, false]),
            vec![true]
        );
    }

    #[test]
    fn reduction_preserves_acyclic_behavior() {
        // A cycle exists structurally but the keyed function for the
        // "correct" key never uses it; reduction must keep that function
        // intact when it cuts inside the ring.
        let mut n = Netlist::new("r");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let loopback = n.add_net("loop");
        let m = n.add_cell("m", CellKind::Mux2, vec![k, a, loopback]);
        n.add_cell_driving("inv", CellKind::Not, vec![m], loopback)
            .unwrap();
        n.add_output("f", m);
        let r = cyclic_reduction(&n);
        assert!(r.netlist.topo_order().is_ok());
        // Correct key k=0 (uses `a`): unchanged.
        for v in [false, true] {
            assert_eq!(r.netlist.eval_comb_with_key(&[v], &[false]), vec![v]);
        }
    }

    #[test]
    fn multiple_rings_all_cut() {
        let mut n = Netlist::new("many");
        let a = n.add_input("a");
        for i in 0..3 {
            let k = n.add_key_input(format!("k{i}"));
            let t0 = n.add_net(format!("t0_{i}"));
            let t1 = n.add_net(format!("t1_{i}"));
            n.add_cell_driving(format!("m0_{i}"), CellKind::Mux2, vec![k, a, t1], t0)
                .unwrap();
            n.add_cell_driving(format!("m1_{i}"), CellKind::Mux2, vec![k, a, t0], t1)
                .unwrap();
            n.add_output(format!("f{i}"), t1);
        }
        let r = cyclic_reduction(&n);
        assert!(r.netlist.topo_order().is_ok());
        assert_eq!(r.cycles_found, 3);
        assert!(r.edges_cut >= 3);
    }

    #[test]
    fn budgeted_reduction_exhausts_with_typed_error() {
        use shell_guard::{Budget, Exhausted};
        let mut n = Netlist::new("many");
        let a = n.add_input("a");
        for i in 0..3 {
            let k = n.add_key_input(format!("k{i}"));
            let t0 = n.add_net(format!("t0_{i}"));
            let t1 = n.add_net(format!("t1_{i}"));
            n.add_cell_driving(format!("m0_{i}"), CellKind::Mux2, vec![k, a, t1], t0)
                .unwrap();
            n.add_cell_driving(format!("m1_{i}"), CellKind::Mux2, vec![k, a, t0], t1)
                .unwrap();
            n.add_output(format!("f{i}"), t1);
        }
        let r = cyclic_reduction_budgeted(&n, &Budget::unlimited().with_quota(1));
        assert_eq!(r.err(), Some(Exhausted::Quota));
        let ok = cyclic_reduction_budgeted(&n, &Budget::unlimited().with_quota(16)).unwrap();
        assert!(ok.netlist.topo_order().is_ok());
    }

    #[test]
    fn self_loop_cut() {
        let mut n = Netlist::new("s");
        let a = n.add_input("a");
        let q = n.add_net("q");
        n.add_cell_driving("g", CellKind::Or, vec![a, q], q).unwrap();
        n.add_output("f", q);
        let r = cyclic_reduction(&n);
        assert!(r.netlist.topo_order().is_ok());
        assert_eq!(r.edges_cut, 1);
        // With the loop edge tied to 0, f = a.
        assert_eq!(r.netlist.eval_comb(&[true]), vec![true]);
        assert_eq!(r.netlist.eval_comb(&[false]), vec![false]);
    }
}
