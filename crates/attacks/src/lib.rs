//! Attack suite for evaluating locked designs — the resilience side of every
//! table in the paper.
//!
//! * [`sat_attack()`](sat_attack::sat_attack) — the oracle-guided key-recovery SAT attack \[6\]: a miter
//!   of two locked-circuit copies with shared inputs and independent keys
//!   yields *distinguishing input patterns* (DIPs); each DIP is resolved
//!   against the oracle and added as an IO constraint until no DIP remains,
//!   at which point any consistent key is functionally correct. The default
//!   [`DipMode::Incremental`](sat_attack::DipMode) keeps one persistent
//!   solver (learned clauses included) across all DIP iterations and key
//!   extraction; a conflict and iteration budget reproduces the paper's
//!   48-hour timeout at this scale.
//! * [`cyclic_reduction`] — the preprocessing of \[26\]: combinational cycles
//!   introduced by eFPGA routing are cut before encoding, mirroring how an
//!   attacker rules out cyclical configurations. Cutting can sever paths the
//!   true key needs — the attack then recovers a wrong key, which the
//!   verification step reports.
//! * [`scan_frame`] — the full-scan threat model: flip-flops become
//!   pseudo-ports so one combinational frame is attacked, exactly what a
//!   fully scanned chip exposes.
//! * [`removal_attack`] — the Xbar-replacement attack SheLL's LGC twisting
//!   defends against: the adversary replaces the whole redacted fabric with
//!   a guessed plain implementation and checks the result against the
//!   oracle.
//! * [`structural`] — an UNTANGLE-flavored \[8\] structural stand-in: key
//!   muxes of routing-locked netlists are guessed from graph features,
//!   demonstrating why *localized* MUX locking (Fig. 1c) falls to ML-style
//!   attacks.

pub mod cyclic;
pub mod removal;
pub mod sat_attack;
pub mod structural;

pub use cyclic::{cyclic_reduction, cyclic_reduction_budgeted, CyclicReductionReport};
pub use removal::{removal_attack, RemovalOutcome};
pub use sat_attack::{
    sat_attack, sat_attack_report, scan_frame, try_scan_frame, xor_lock_cells,
    xor_lock_outputs, AttackCheckpoint,
    AttackReport, DipCost, DipMode, SatAttackOptions, SatAttackOutcome, ScanError,
    DEFAULT_CONFLICT_QUOTA,
};
pub use structural::{structural_mux_attack, structural_mux_attack_budgeted, StructuralReport};
