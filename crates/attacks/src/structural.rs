//! Structural (ML-attack stand-in) analysis of MUX-based routing locking.
//!
//! UNTANGLE \[8\] breaks localized MUX locking by *link prediction*: graph
//! features around each key-controlled mux reveal which data input is the
//! original connection. This module implements a feature-based guesser of
//! the same spirit — deliberately simple, but strong enough to demonstrate
//! the Fig. 1 taxonomy point: **localized** mux locking (Fig. 1c) leaks
//! structure, while eFPGA-grade redaction (uniform switch fabrics) does not
//! give the features any signal.
//!
//! For every `Mux2` cell whose select pin is a key input, the attack scores
//! the two data candidates by locality features (shared fanin, logic-level
//! distance, name-agnostic fanout overlap) and guesses the more "natural"
//! one. The report compares guesses against the true key.

use shell_graph::{bfs_distances, DiGraph, NodeId};
use shell_guard::{Budget, Exhausted};
use shell_netlist::{CellKind, Netlist};
use std::collections::HashSet;

/// Result of the structural mux attack.
#[derive(Debug, Clone, PartialEq)]
pub struct StructuralReport {
    /// Number of key-controlled muxes analyzed.
    pub key_muxes: usize,
    /// Guessed key bits, indexed like the netlist's key inputs (bits whose
    /// key input does not drive a mux select stay `None`).
    pub guesses: Vec<Option<bool>>,
    /// Fraction of analyzed bits guessed correctly against `true_key`
    /// (0.5 ≈ no structural leak; 1.0 = fully predicted).
    pub accuracy: f64,
}

/// Runs the structural guesser against a known `true_key` (evaluation mode:
/// the defender measures how much structure leaks).
///
/// # Panics
///
/// Panics when `true_key` length differs from the key count.
pub fn structural_mux_attack(locked: &Netlist, true_key: &[bool]) -> StructuralReport {
    structural_mux_attack_budgeted(locked, true_key, &Budget::unlimited())
        .expect("an unlimited budget cannot exhaust")
}

/// [`structural_mux_attack`] under a [`Budget`]: one quota step is spent per
/// analyzed key mux (spent up front, in deterministic cell order, so the
/// exhaustion point is identical at any `SHELL_JOBS`), and the deadline /
/// cancellation flag is polled per mux.
///
/// # Errors
///
/// Returns the [`Exhausted`] reason when the budget runs out before every
/// key mux has been admitted.
///
/// # Panics
///
/// Panics when `true_key` length differs from the key count.
pub fn structural_mux_attack_budgeted(
    locked: &Netlist,
    true_key: &[bool],
    budget: &Budget,
) -> Result<StructuralReport, Exhausted> {
    let _span = shell_trace::span!("attack.structural");
    assert_eq!(
        true_key.len(),
        locked.key_inputs().len(),
        "key width mismatch"
    );
    // Cell graph for locality features.
    let mut g: DiGraph<()> = DiGraph::with_capacity(locked.cell_count());
    let nodes: Vec<NodeId> = locked.cells().map(|_| g.add_node(())).collect();
    for (id, c) in locked.cells() {
        for &inp in &c.inputs {
            if let Some(drv) = locked.net(inp).driver {
                g.add_edge(nodes[drv.index()], nodes[id.index()]);
            }
        }
    }

    let key_of_net: std::collections::HashMap<_, usize> = locked
        .key_inputs()
        .iter()
        .enumerate()
        .map(|(i, &n)| (n, i))
        .collect();

    // Scoring one mux walks the whole cell graph (a BFS plus fanin scans)
    // but writes nothing — the per-mux loop is the attack's hot path and
    // maps cleanly over workers. Guesses come back in job order (cell
    // order), so the report is independent of scheduling.
    let mux_jobs: Vec<(shell_netlist::CellId, usize)> = locked
        .cells()
        .filter(|(_, c)| c.kind == CellKind::Mux2)
        .filter_map(|(cid, c)| key_of_net.get(&c.inputs[0]).map(|&ki| (cid, ki)))
        .collect();
    let key_muxes = mux_jobs.len();
    // Admit jobs against the budget *sequentially* before the parallel
    // scoring pass: the exhaustion point depends only on the job order.
    for _ in &mux_jobs {
        budget.spend(1)?;
    }
    let scored: Vec<(usize, bool)> = shell_exec::parallel_map(&mux_jobs, |&(cid, key_idx)| {
        let c = locked.cell(cid);
        // Candidates: data pin 1 (selected by key = 0) vs pin 2 (key = 1).
        let score = |data_net: shell_netlist::NetId| -> f64 {
            let mut s = 0.0;
            let Some(drv) = locked.net(data_net).driver else {
                // Primary-input data: locality = how many of the mux's
                // sink-side neighbors also read this input.
                return 0.5;
            };
            // Feature 1: shared fanin between the candidate driver and the
            // mux's downstream consumers (real connections sit in cones
            // that reconverge; decoys are pulled from far away).
            let drv_inputs: HashSet<_> = locked.cell(drv).inputs.iter().copied().collect();
            let mux_out = c.output;
            let mut shared = 0usize;
            for (_, other) in locked.cells() {
                if other.inputs.contains(&mux_out) {
                    for &oi in &other.inputs {
                        if drv_inputs.contains(&oi) {
                            shared += 1;
                        }
                    }
                }
            }
            s += shared as f64;
            // Feature 2: graph proximity driver → mux (short forward paths
            // beyond the direct edge indicate reconvergence; decoys rarely
            // reconverge).
            let dist = bfs_distances(&g, nodes[drv.index()]);
            let reachable_close = g
                .successors(nodes[cid.index()])
                .iter()
                .filter(|&&succ| dist[succ.index()] != usize::MAX && dist[succ.index()] <= 3)
                .count();
            s += reachable_close as f64 * 0.5;
            s
        };
        let s0 = score(c.inputs[1]);
        let s1 = score(c.inputs[2]);
        // key = 0 selects pin 1; guess the higher-scoring candidate as the
        // true connection.
        (key_idx, s1 > s0)
    });
    let mut guesses: Vec<Option<bool>> = vec![None; true_key.len()];
    for (key_idx, guess) in scored {
        guesses[key_idx] = Some(guess);
    }

    let analyzed: Vec<(usize, bool)> = guesses
        .iter()
        .enumerate()
        .filter_map(|(i, g)| g.map(|v| (i, v)))
        .collect();
    let correct = analyzed
        .iter()
        .filter(|(i, v)| *v == true_key[*i])
        .count();
    let accuracy = if analyzed.is_empty() {
        0.0
    } else {
        correct as f64 / analyzed.len() as f64
    };
    Ok(StructuralReport {
        key_muxes,
        guesses,
        accuracy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_netlist::{NetId, Netlist};

    /// Builds a locked netlist in the Fig. 1(c) style: each key mux chooses
    /// between the true local connection (inside a reconvergent cone) and a
    /// decoy pulled from an unrelated region.
    fn localized_mux_lock(bits: usize) -> (Netlist, Vec<bool>) {
        let mut n = Netlist::new("loc");
        let mut true_key = Vec::new();
        // Unrelated decoy region.
        let da = n.add_input("da");
        let db = n.add_input("db");
        let decoy = n.add_cell("decoy", CellKind::Xor, vec![da, db]);
        n.add_output("decoy_o", decoy);
        for i in 0..bits {
            let a = n.add_input(format!("a{i}"));
            let b = n.add_input(format!("b{i}"));
            let t = n.add_cell(format!("t{i}"), CellKind::And, vec![a, b]);
            let k = n.add_key_input(format!("k{i}"));
            // True connection on pin chosen by parity; reconvergence: the
            // consumer also reads `a` (shared fanin with t's driver cone).
            let key_bit = i % 2 == 1;
            let (p1, p2): (NetId, NetId) = if key_bit { (decoy, t) } else { (t, decoy) };
            let m = n.add_cell(format!("km{i}"), CellKind::Mux2, vec![k, p1, p2]);
            let f = n.add_cell(format!("f{i}"), CellKind::Or, vec![m, a]);
            n.add_output(format!("o{i}"), f);
            true_key.push(key_bit);
        }
        (n, true_key)
    }

    #[test]
    fn localized_locking_leaks_structure() {
        let (locked, key) = localized_mux_lock(8);
        let report = structural_mux_attack(&locked, &key);
        assert_eq!(report.key_muxes, 8);
        assert!(
            report.accuracy >= 0.75,
            "localized mux locking should leak: accuracy {}",
            report.accuracy
        );
    }

    #[test]
    fn no_key_muxes_no_guesses() {
        let mut n = Netlist::new("plain");
        let a = n.add_input("a");
        let k = n.add_key_input("k");
        let f = n.add_cell("f", CellKind::Xor, vec![a, k]);
        n.add_output("f", f);
        let report = structural_mux_attack(&n, &[false]);
        assert_eq!(report.key_muxes, 0);
        assert_eq!(report.guesses, vec![None]);
        assert_eq!(report.accuracy, 0.0);
    }

    #[test]
    fn symmetric_choices_give_chance_accuracy() {
        // Both mux inputs structurally identical: accuracy ≈ coin flip, not
        // systematically high.
        let mut n = Netlist::new("sym");
        let mut key = Vec::new();
        for i in 0..8 {
            let a = n.add_input(format!("a{i}"));
            let b = n.add_input(format!("b{i}"));
            let k = n.add_key_input(format!("k{i}"));
            let m = n.add_cell(format!("m{i}"), CellKind::Mux2, vec![k, a, b]);
            n.add_output(format!("o{i}"), m);
            key.push(i % 2 == 0);
        }
        let report = structural_mux_attack(&n, &key);
        assert_eq!(report.key_muxes, 8);
        // With no structural signal the guesser collapses to a constant
        // choice → 50 % on this balanced key.
        assert!(
            report.accuracy <= 0.55,
            "symmetric structure must not leak: {}",
            report.accuracy
        );
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_key_width_panics() {
        let (locked, _) = localized_mux_lock(2);
        structural_mux_attack(&locked, &[true]);
    }

    #[test]
    fn budget_exhaustion_is_typed() {
        use shell_guard::{Budget, Exhausted};
        let (locked, key) = localized_mux_lock(8);
        let b = Budget::unlimited().with_quota(3);
        assert_eq!(
            structural_mux_attack_budgeted(&locked, &key, &b),
            Err(Exhausted::Quota)
        );
        // A sufficient quota matches the unbudgeted run exactly.
        let full = structural_mux_attack_budgeted(&locked, &key, &Budget::unlimited().with_quota(8))
            .unwrap();
        assert_eq!(full, structural_mux_attack(&locked, &key));
    }
}
