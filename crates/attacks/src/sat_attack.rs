//! The oracle-guided SAT attack \[6\].
//!
//! Loop: (1) solve a miter of two locked copies with shared primary inputs
//! and independent keys, forcing some output to differ — a model is a
//! *distinguishing input pattern* (DIP); (2) query the oracle (the activated
//! chip) on the DIP; (3) constrain both key candidates to reproduce the
//! oracle's answer on that DIP; (4) repeat. When the miter is UNSAT, every
//! remaining key candidate is functionally correct; one is extracted and
//! verified.
//!
//! Sequential designs enter through [`scan_frame`], matching the paper's
//! full-scan threat model: flip-flop outputs become scannable pseudo-inputs
//! and data pins pseudo-outputs, so a single combinational frame carries the
//! whole secret.

use shell_guard::{Budget, Exhausted};
use shell_netlist::equiv::{equiv_exhaustive, equiv_random, EquivResult};
use shell_netlist::{CellKind, NetId, Netlist};
use shell_sat::{encode_miter, encode_netlist, Lit, SatResult, Solver};
use shell_util::Json;
use std::path::{Path, PathBuf};

/// Default conflict quota — the 48-hour stand-in at laptop scale.
pub const DEFAULT_CONFLICT_QUOTA: u64 = 2_000_000;

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct SatAttackOptions {
    /// DIP-loop iteration cap (a structural timeout).
    pub max_iterations: usize,
    /// Shared governance token: one quota step is a solver conflict, spent
    /// across every solver the attack builds. Defaults to
    /// [`DEFAULT_CONFLICT_QUOTA`] conflicts plus whatever deadline
    /// `SHELL_DEADLINE_MS` specifies (see [`Budget::from_env`]).
    pub budget: Budget,
    /// Verify the extracted key against the oracle before claiming success.
    pub verify_key: bool,
    /// Vectors for the Monte-Carlo verification of wide designs.
    pub verify_vectors: usize,
    /// When set, a resumable [`AttackCheckpoint`] is written here after
    /// every completed DIP iteration (best-effort: I/O errors are ignored
    /// so a full disk cannot kill the attack).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume state from an earlier exhausted run: the DIP loop continues
    /// from the recorded prefix instead of iteration 0.
    pub resume_from: Option<AttackCheckpoint>,
}

impl Default for SatAttackOptions {
    fn default() -> Self {
        Self {
            max_iterations: 512,
            budget: Budget::from_env().with_quota(DEFAULT_CONFLICT_QUOTA),
            verify_key: true,
            verify_vectors: 512,
            checkpoint_path: None,
            resume_from: None,
        }
    }
}

/// Resumable state of an interrupted SAT attack: the DIP/response prefix
/// plus spend bookkeeping. Because the DIP loop re-encodes from scratch
/// every iteration, this prefix determines the rest of the attack exactly —
/// a resumed run produces the same key, iteration count, and conflict total
/// as an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackCheckpoint {
    /// Name of the locked design the checkpoint belongs to (sanity-checked
    /// on resume).
    pub design: String,
    /// Completed DIP iterations.
    pub iterations: usize,
    /// Solver conflicts spent by the completed iterations (partial work of
    /// an interrupted iteration is *not* recorded; the iteration re-runs in
    /// full on resume, which is what keeps resumed totals identical).
    pub conflicts_spent: u64,
    /// The `(dip, oracle response)` pairs recorded so far.
    pub dips: Vec<(Vec<bool>, Vec<bool>)>,
}

impl AttackCheckpoint {
    /// Serializes to the `results/checkpoints/*.json` schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("design", Json::Str(self.design.clone())),
            ("iterations", Json::Num(self.iterations as f64)),
            ("conflicts_spent", Json::Num(self.conflicts_spent as f64)),
            (
                "dips",
                Json::arr(self.dips.iter().map(|(dip, response)| {
                    Json::obj([
                        ("input", Json::arr(dip.iter().map(|&b| Json::Bool(b)))),
                        (
                            "response",
                            Json::arr(response.iter().map(|&b| Json::Bool(b))),
                        ),
                    ])
                })),
            ),
        ])
    }

    /// Parses the [`AttackCheckpoint::to_json`] schema.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let design = json
            .get("design")
            .and_then(Json::as_str)
            .ok_or("checkpoint: missing `design`")?
            .to_string();
        let iterations = json
            .get("iterations")
            .and_then(Json::as_usize)
            .ok_or("checkpoint: missing `iterations`")?;
        let conflicts_spent = json
            .get("conflicts_spent")
            .and_then(Json::as_u64)
            .ok_or("checkpoint: missing `conflicts_spent`")?;
        let dip_items = json
            .get("dips")
            .and_then(Json::as_arr)
            .ok_or("checkpoint: missing `dips`")?;
        let mut dips = Vec::with_capacity(dip_items.len());
        for item in dip_items {
            let bools = |key: &str| -> Result<Vec<bool>, String> {
                item.get(key)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("checkpoint: dip missing `{key}`"))?
                    .iter()
                    .map(|b| b.as_bool().ok_or_else(|| format!("checkpoint: non-bool in `{key}`")))
                    .collect()
            };
            dips.push((bools("input")?, bools("response")?));
        }
        if dips.len() != iterations {
            return Err(format!(
                "checkpoint: {} dips but {} iterations",
                dips.len(),
                iterations
            ));
        }
        Ok(Self {
            design,
            iterations,
            conflicts_spent,
            dips,
        })
    }

    /// Writes the checkpoint (pretty JSON), creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json().to_string_pretty())
    }

    /// Loads a checkpoint written by [`AttackCheckpoint::save`].
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&Json::parse(&text)?)
    }
}

/// Attack outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatAttackOutcome {
    /// A functionally correct key was recovered: the design is **broken**.
    Broken {
        /// The recovered key.
        key: Vec<bool>,
        /// DIP iterations used.
        iterations: usize,
        /// Total solver conflicts.
        conflicts: u64,
    },
    /// The budget ran out first: **resilient** within this budget.
    Resilient {
        /// DIP iterations completed.
        iterations: usize,
        /// Total solver conflicts.
        conflicts: u64,
    },
    /// The attack terminated with a key that fails verification (e.g. a
    /// cyclic-reduction cut severed the functional path) or with an
    /// inconsistent constraint set. The design survives, but for structural
    /// reasons rather than budget exhaustion.
    WrongKey {
        /// The non-functional candidate key.
        key: Vec<bool>,
        /// DIP iterations used.
        iterations: usize,
    },
}

impl SatAttackOutcome {
    /// `true` when a correct key was extracted.
    pub fn is_broken(&self) -> bool {
        matches!(self, SatAttackOutcome::Broken { .. })
    }
}

/// Full attack report: the outcome plus partial-progress accounting, so an
/// exhausted attack says *how far* it got instead of silently stopping.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// The attack outcome.
    pub outcome: SatAttackOutcome,
    /// DIPs recorded (including any restored from a resume checkpoint).
    pub dips_found: usize,
    /// Solver conflicts spent, cumulative across every solver the attack
    /// built (including partial work of an interrupted iteration and the
    /// key-extraction solve).
    pub conflicts_spent: u64,
    /// Why the attack stopped early, when it did.
    pub stop: Option<Exhausted>,
    /// Iterations restored from [`SatAttackOptions::resume_from`]
    /// (0 for a fresh run). Provenance only — deliberately absent from
    /// [`AttackReport::to_json`] so resumed and uninterrupted runs emit
    /// byte-identical reports.
    pub resumed_from: usize,
    /// Where the last checkpoint was written, if checkpointing was on.
    pub checkpoint_written: Option<PathBuf>,
}

impl AttackReport {
    /// Deterministic report JSON. Contains only run-invariant fields: a run
    /// resumed from a checkpoint serializes byte-identically to the same
    /// attack run uninterrupted.
    pub fn to_json(&self) -> Json {
        let (status, key, iterations, conflicts) = match &self.outcome {
            SatAttackOutcome::Broken {
                key,
                iterations,
                conflicts,
            } => ("broken", Some(key.clone()), *iterations, *conflicts),
            SatAttackOutcome::Resilient {
                iterations,
                conflicts,
            } => ("resilient", None, *iterations, *conflicts),
            SatAttackOutcome::WrongKey { key, iterations } => {
                ("wrong_key", Some(key.clone()), *iterations, self.conflicts_spent)
            }
        };
        Json::obj([
            ("status", Json::Str(status.to_string())),
            (
                "key",
                match key {
                    Some(k) => Json::arr(k.iter().map(|&b| Json::Bool(b))),
                    None => Json::Null,
                },
            ),
            ("iterations", Json::Num(iterations as f64)),
            ("conflicts", Json::Num(conflicts as f64)),
            ("dips_found", Json::Num(self.dips_found as f64)),
            ("conflicts_spent", Json::Num(self.conflicts_spent as f64)),
            (
                "stop",
                match self.stop {
                    Some(e) => Json::Str(e.label().to_string()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Converts a sequential netlist into its full-scan combinational frame:
/// every DFF output becomes a primary input `scan_q<i>` and every DFF data
/// pin a primary output `scan_d<i>`. Combinational designs pass through
/// unchanged (cloned).
///
/// ```
/// use shell_netlist::{Netlist, CellKind};
/// use shell_attacks::scan_frame;
///
/// let mut n = Netlist::new("ff");
/// let d = n.add_input("d");
/// let q = n.add_cell("ff", CellKind::Dff, vec![d]);
/// n.add_output("q", q);
/// let frame = scan_frame(&n);
/// assert!(frame.is_combinational());
/// assert_eq!(frame.inputs().len(), 2);   // d + scan_q0
/// assert_eq!(frame.outputs().len(), 2);  // q + scan_d0
/// ```
///
/// # Panics
///
/// Panics when the netlist contains latches.
pub fn scan_frame(netlist: &Netlist) -> Netlist {
    if netlist.is_combinational() {
        return netlist.clone();
    }
    let mut out = Netlist::new(format!("{}_frame", netlist.name()));
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &n in netlist.inputs() {
        map[n.index()] = Some(out.add_input(netlist.net(n).name.clone()));
    }
    for &n in netlist.key_inputs() {
        map[n.index()] = Some(out.add_key_input(netlist.net(n).name.clone()));
    }
    // DFF outputs become scan inputs. Order the chain by cell *name* so two
    // functionally-equal designs with different construction orders (e.g.
    // an original and its redacted-and-reassembled twin) expose identical
    // scan frames.
    let mut seq = netlist.sequential_cells();
    seq.sort_by(|&a, &b| netlist.cell(a).name.cmp(&netlist.cell(b).name));
    for (i, &cid) in seq.iter().enumerate() {
        let c = netlist.cell(cid);
        assert!(
            c.kind == CellKind::Dff,
            "latch `{}` not supported in scan frames",
            c.name
        );
        map[c.output.index()] = Some(out.add_input(format!("scan_q{i}")));
    }
    let order = netlist.topo_order().expect("cyclic netlist");
    let resolve = |out: &mut Netlist, map: &mut Vec<Option<NetId>>, n: NetId| -> NetId {
        if let Some(m) = map[n.index()] {
            m
        } else {
            let m = out.add_net("floating");
            map[n.index()] = Some(m);
            m
        }
    };
    for cid in order {
        let c = netlist.cell(cid);
        if c.kind.is_sequential() {
            continue;
        }
        let ins: Vec<NetId> = c
            .inputs
            .iter()
            .map(|&n| resolve(&mut out, &mut map, n))
            .collect();
        let new = out.add_cell(c.name.clone(), c.kind, ins);
        map[c.output.index()] = Some(new);
    }
    for (name, n) in netlist.outputs() {
        let m = resolve(&mut out, &mut map, *n);
        out.add_output(name.clone(), m);
    }
    // DFF data pins become scan outputs.
    for (i, &cid) in seq.iter().enumerate() {
        let d = netlist.cell(cid).inputs[0];
        let m = map[d.index()].expect("data pin realized");
        out.add_output(format!("scan_d{i}"), m);
    }
    out
}

/// Runs the oracle-guided SAT attack on `locked` against `oracle`.
///
/// Both netlists must be combinational (run [`scan_frame`] first) with the
/// same primary input/output counts; `oracle` must have no key inputs.
/// Thin wrapper over [`sat_attack_report`] for callers that only want the
/// outcome.
///
/// # Panics
///
/// Panics on shape mismatches or non-combinational inputs.
pub fn sat_attack(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
) -> SatAttackOutcome {
    sat_attack_report(locked, oracle, options).outcome
}

/// The full attack driver: [`sat_attack`] plus progress accounting,
/// per-iteration checkpointing, and resume.
///
/// The DIP loop rebuilds the solver from scratch every iteration (miter +
/// every recorded DIP constraint), making each iteration a pure function of
/// the DIP prefix. That costs re-encoding work but buys the property the
/// checkpoint format depends on: interrupting the attack at any point and
/// resuming from the prefix replays the remaining iterations *exactly* —
/// same DIPs, same key, same conflict totals, byte-identical report JSON.
///
/// # Panics
///
/// Panics on shape mismatches, non-combinational inputs, or a resume
/// checkpoint recorded for a different design name.
pub fn sat_attack_report(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
) -> AttackReport {
    let _span = shell_trace::span!("attack.sat");
    assert!(locked.is_combinational(), "scan_frame the locked design first");
    assert!(oracle.is_combinational(), "scan_frame the oracle first");
    assert!(oracle.key_inputs().is_empty(), "oracle must be activated");
    assert_eq!(
        locked.inputs().len(),
        oracle.inputs().len(),
        "input shape mismatch"
    );
    assert_eq!(
        locked.outputs().len(),
        oracle.outputs().len(),
        "output shape mismatch"
    );

    let (mut iterations, mut conflicts, mut dips, resumed_from) = match &options.resume_from {
        Some(cp) => {
            assert_eq!(
                cp.design,
                locked.name(),
                "resume checkpoint was recorded for a different design"
            );
            (cp.iterations, cp.conflicts_spent, cp.dips.clone(), cp.iterations)
        }
        None => (0, 0, Vec::new(), 0),
    };

    let n_inputs = locked.inputs().len();
    let mut checkpoint_written = None;
    let write_checkpoint = |iterations: usize,
                                conflicts: u64,
                                dips: &[(Vec<bool>, Vec<bool>)]|
     -> Option<PathBuf> {
        let path = options.checkpoint_path.as_ref()?;
        let cp = AttackCheckpoint {
            design: locked.name().to_string(),
            iterations,
            conflicts_spent: conflicts,
            dips: dips.to_vec(),
        };
        // Best effort by design: checkpointing must never kill the attack.
        cp.save(path).ok().map(|()| path.clone())
    };

    let stopped = loop {
        if iterations >= options.max_iterations {
            break None; // structural timeout, not a budget event
        }
        // One span per DIP iteration; the iteration index lines up with the
        // `iterations` field of the checkpoint JSON, so a trace can be
        // joined against a resumed run's checkpoint.
        let _iter_span = shell_trace::span!("attack.sat.dip", iteration = iterations);
        // Fresh solver: miter of two copies of the locked design (shared
        // inputs, independent key candidates, some output pair forced to
        // differ) plus one IO-pinned copy per key set per recorded DIP.
        let mut solver = Solver::new();
        solver.set_budget(Some(options.budget.clone()));
        let miter = encode_miter(&mut solver, locked, locked);
        let (copy_a, copy_b) = (miter.lhs, miter.rhs);
        for (dip, response) in &dips {
            for keys in [&copy_a.keys, &copy_b.keys] {
                let fresh = encode_netlist(&mut solver, locked, None, Some(keys));
                for (i, &v) in fresh.inputs.iter().enumerate() {
                    solver.add_clause(&[Lit::new(v, dip[i])]);
                }
                for (o, &v) in fresh.outputs.iter().enumerate() {
                    solver.add_clause(&[Lit::new(v, response[o])]);
                }
            }
        }
        match solver.solve() {
            SatResult::Unknown => {
                // Budget exhausted mid-iteration: the partial conflicts
                // count against the report but not the checkpoint — the
                // iteration re-runs in full on resume.
                conflicts += solver.stats().conflicts;
                break Some(solver.stop_reason().unwrap_or(Exhausted::Quota));
            }
            SatResult::Unsat => {
                conflicts += solver.stats().conflicts;
                // Miter UNSAT: every key consistent with all recorded DIP
                // constraints is functionally correct [6]; extract one.
                let (key, extract_conflicts) = extract_key(locked, &dips, options);
                conflicts += extract_conflicts;
                let outcome = match key {
                    Some(key) => {
                        if !options.verify_key
                            || verify_key(locked, oracle, &key, options.verify_vectors)
                        {
                            SatAttackOutcome::Broken {
                                key,
                                iterations,
                                conflicts,
                            }
                        } else {
                            SatAttackOutcome::WrongKey { key, iterations }
                        }
                    }
                    None => SatAttackOutcome::WrongKey {
                        key: Vec::new(),
                        iterations,
                    },
                };
                return AttackReport {
                    outcome,
                    dips_found: dips.len(),
                    conflicts_spent: conflicts,
                    stop: None,
                    resumed_from,
                    checkpoint_written,
                };
            }
            SatResult::Sat => {
                conflicts += solver.stats().conflicts;
                iterations += 1;
                shell_trace::counter_add("attack.dips", 1);
                let dip: Vec<bool> = copy_a
                    .inputs
                    .iter()
                    .map(|&v| solver.value(v).unwrap_or(false))
                    .collect();
                debug_assert_eq!(dip.len(), n_inputs);
                let response = oracle.eval_comb(&dip);
                dips.push((dip, response));
                if let Some(p) = write_checkpoint(iterations, conflicts, &dips) {
                    checkpoint_written = Some(p);
                }
            }
        }
    };

    AttackReport {
        outcome: SatAttackOutcome::Resilient {
            iterations,
            conflicts,
        },
        dips_found: dips.len(),
        conflicts_spent: conflicts,
        stop: stopped,
        resumed_from,
        checkpoint_written,
    }
}

/// Solves for one key consistent with the recorded DIP/response pairs —
/// sound by the SAT attack's termination argument: once the miter is UNSAT,
/// keys agreeing on all DIPs agree everywhere. Returns the key (if any)
/// and the conflicts this solve spent. Runs under a *re-armed* copy of the
/// attack budget so extraction behaves identically whether the DIP loop ran
/// straight through or was resumed from a checkpoint.
fn extract_key(
    locked: &Netlist,
    dips: &[(Vec<bool>, Vec<bool>)],
    options: &SatAttackOptions,
) -> (Option<Vec<bool>>, u64) {
    let mut solver = Solver::new();
    solver.set_budget(Some(options.budget.fresh()));
    let copy = encode_netlist(&mut solver, locked, None, None);
    for (dip, response) in dips {
        let fresh = encode_netlist(&mut solver, locked, None, Some(&copy.keys));
        for (i, &v) in fresh.inputs.iter().enumerate() {
            solver.add_clause(&[Lit::new(v, dip[i])]);
        }
        for (o, &v) in fresh.outputs.iter().enumerate() {
            solver.add_clause(&[Lit::new(v, response[o])]);
        }
    }
    let key = match solver.solve() {
        SatResult::Sat => Some(
            copy.keys
                .iter()
                .map(|&k| solver.value(k).unwrap_or(false))
                .collect(),
        ),
        _ => None,
    };
    (key, solver.stats().conflicts)
}

/// Checks the candidate key against the oracle (exhaustive up to 12 inputs,
/// Monte-Carlo beyond).
fn verify_key(locked: &Netlist, oracle: &Netlist, key: &[bool], vectors: usize) -> bool {
    let outcome = if locked.inputs().len() <= 12 {
        equiv_exhaustive(oracle, locked, &[], key)
    } else {
        equiv_random(oracle, locked, &[], key, vectors, 0xFACE)
    };
    matches!(outcome, EquivResult::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_netlist::LutMask;

    /// XOR-locks `oracle` by inserting key XORs on `bits` internal cells'
    /// outputs — breakable by the SAT attack quickly.
    fn xor_lock(oracle: &Netlist, bits: usize) -> (Netlist, Vec<bool>) {
        let mut locked = oracle.clone();
        let fanout = locked.fanout_table();
        let mut key = Vec::new();
        let targets: Vec<_> = locked
            .cells()
            .map(|(id, _)| id)
            .take(bits)
            .collect();
        for (i, cid) in targets.into_iter().enumerate() {
            // Insert XOR between cell output and its readers.
            let out_net = locked.cell(cid).output;
            let k = locked.add_key_input(format!("k{i}"));
            // Correct key bit: 0 (XOR transparent) or 1 with an extra NOT.
            let invert = i % 2 == 1;
            let gate_in = if invert {
                let inv = locked.add_cell(format!("pre_inv{i}"), CellKind::Not, vec![out_net]);
                key.push(true);
                inv
            } else {
                key.push(false);
                out_net
            };
            let xored = locked.add_cell(format!("kx{i}"), CellKind::Xor, vec![gate_in, k]);
            for &(reader, pin) in &fanout[out_net.index()] {
                locked.rewire_input(reader, pin, xored);
            }
        }
        (locked, key)
    }

    fn small_oracle() -> Netlist {
        shell_circuits_free_adder()
    }

    /// A 4-bit adder built inline (no dependency on shell-circuits to keep
    /// the crate graph lean).
    fn shell_circuits_free_adder() -> Netlist {
        let mut n = Netlist::new("oracle");
        let a: Vec<NetId> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        let mut carry = n.add_cell("c0", CellKind::Const(false), vec![]);
        for i in 0..4 {
            let p = n.add_cell(format!("p{i}"), CellKind::Xor, vec![a[i], b[i]]);
            let s = n.add_cell(format!("s{i}"), CellKind::Xor, vec![p, carry]);
            let g = n.add_cell(format!("g{i}"), CellKind::And, vec![a[i], b[i]]);
            let pc = n.add_cell(format!("pc{i}"), CellKind::And, vec![p, carry]);
            carry = n.add_cell(format!("c{}", i + 1), CellKind::Or, vec![g, pc]);
            n.add_output(format!("s{i}"), s);
        }
        n.add_output("cout", carry);
        n
    }

    #[test]
    fn breaks_xor_locking() {
        let oracle = small_oracle();
        let (locked, true_key) = xor_lock(&oracle, 6);
        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, iterations, .. } => {
                // The recovered key must be *functionally* correct; chained
                // inverted bits can cancel, so bit equality with true_key is
                // not required. The attack verified already; double-check.
                use shell_netlist::equiv::equiv_exhaustive;
                assert!(equiv_exhaustive(&oracle, &locked, &[], &key).is_equivalent());
                assert!(
                    equiv_exhaustive(&oracle, &locked, &[], &true_key).is_equivalent(),
                    "sanity: the planted key is correct too"
                );
                assert!(iterations <= 64);
            }
            other => panic!("expected break, got {other:?}"),
        }
    }

    #[test]
    fn key_verification_detects_wrong_function() {
        // A "locked" design that is NOT the oracle under any key: the
        // attack must not claim Broken.
        let oracle = small_oracle();
        let mut locked = oracle.clone();
        let k = locked.add_key_input("k");
        // Corrupt one output irrecoverably: new_out0 = old_out0 XOR (a0 AND !k ... )
        let a0 = locked.inputs()[0];
        let nk = locked.add_cell("nk", CellKind::Not, vec![k]);
        let taint = locked.add_cell("taint", CellKind::And, vec![a0, nk]);
        let old = locked.outputs()[0].1;
        let bad = locked.add_cell("bad", CellKind::Xor, vec![old, taint, k]);
        // Replace output 0.
        let mut outs: Vec<(String, NetId)> = locked.outputs().to_vec();
        outs[0].1 = bad;
        let rebuilt = Netlist::new("locked_bad");
        // Rebuild quickly via clone trick: easier—construct fresh netlist by
        // copying locked and re-adding outputs is involved; instead assert on
        // the simpler property: attack on (locked-with-extra-output).
        let _ = outs;
        let _ = rebuilt;
        // Simpler scenario: oracle = AND, locked = OR with key XOR on output
        // (no key makes OR equal AND on all inputs).
        let mut oracle2 = Netlist::new("and");
        let x = oracle2.add_input("x");
        let y = oracle2.add_input("y");
        let f = oracle2.add_cell("f", CellKind::And, vec![x, y]);
        oracle2.add_output("f", f);
        let mut locked2 = Netlist::new("or_locked");
        let x2 = locked2.add_input("x");
        let y2 = locked2.add_input("y");
        let k2 = locked2.add_key_input("k");
        let g = locked2.add_cell("g", CellKind::Or, vec![x2, y2]);
        let f2 = locked2.add_cell("f", CellKind::Xor, vec![g, k2]);
        locked2.add_output("f", f2);
        let outcome = sat_attack(&locked2, &oracle2, &SatAttackOptions::default());
        assert!(
            !outcome.is_broken(),
            "no key makes OR⊕k equal AND: {outcome:?}"
        );
    }

    #[test]
    fn budget_exhaustion_reports_resilient() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 8);
        let opts = SatAttackOptions {
            max_iterations: 1,
            budget: Budget::unlimited().with_quota(1),
            ..Default::default()
        };
        let report = sat_attack_report(&locked, &oracle, &opts);
        assert!(matches!(report.outcome, SatAttackOutcome::Resilient { .. }));
        // Partial progress is reported, not silently dropped.
        assert!(report.stop.is_some() || report.dips_found >= 1);
    }

    #[test]
    fn cancellation_reports_resilient_with_reason() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 8);
        let budget = Budget::unlimited();
        budget.cancel();
        let opts = SatAttackOptions {
            budget,
            ..Default::default()
        };
        let report = sat_attack_report(&locked, &oracle, &opts);
        assert!(matches!(report.outcome, SatAttackOutcome::Resilient { .. }));
        assert_eq!(report.stop, Some(Exhausted::Cancelled));
    }

    #[test]
    fn checkpoint_json_round_trips() {
        let cp = AttackCheckpoint {
            design: "adder".to_string(),
            iterations: 2,
            conflicts_spent: 17,
            dips: vec![
                (vec![true, false], vec![false]),
                (vec![false, false], vec![true]),
            ],
        };
        let parsed = AttackCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(parsed, cp);
        // Corrupt JSON is a typed error, not a panic.
        assert!(AttackCheckpoint::from_json(&Json::obj([("design", Json::Null)])).is_err());
    }

    #[test]
    fn resumed_attack_recovers_identical_key_and_report() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 6);

        // Reference: one uninterrupted run.
        let full = sat_attack_report(&locked, &oracle, &SatAttackOptions::default());
        let full_iters = match &full.outcome {
            SatAttackOutcome::Broken { iterations, .. } => *iterations,
            other => panic!("expected break, got {other:?}"),
        };
        assert!(full_iters >= 2, "need a multi-iteration attack to interrupt");

        // Interrupted run: kill it partway via a conflict quota, with
        // checkpointing on.
        let dir = std::env::temp_dir().join(format!(
            "shell_attack_cp_{}_{}",
            std::process::id(),
            full.conflicts_spent
        ));
        let cp_path = dir.join("sat_attack.json");
        let mut quota = 1;
        let checkpoint = loop {
            let opts = SatAttackOptions {
                budget: Budget::unlimited().with_quota(quota),
                checkpoint_path: Some(cp_path.clone()),
                ..Default::default()
            };
            let partial = sat_attack_report(&locked, &oracle, &opts);
            if matches!(partial.outcome, SatAttackOutcome::Resilient { .. })
                && partial.dips_found >= 1
            {
                assert_eq!(partial.stop, Some(Exhausted::Quota));
                break AttackCheckpoint::load(&cp_path).expect("checkpoint readable");
            }
            if partial.outcome.is_broken() {
                // Quota grew past the whole attack before yielding a
                // mid-attack interrupt with at least one DIP; rare, but
                // then there is nothing to resume — re-derive with a
                // smaller design instead of looping forever.
                panic!("could not interrupt the attack mid-flight");
            }
            quota += 1;
        };
        assert!(checkpoint.iterations >= 1);
        assert!(checkpoint.iterations < full_iters);

        // Resume and compare: same key, same totals, byte-identical JSON.
        let resumed = sat_attack_report(
            &locked,
            &oracle,
            &SatAttackOptions {
                resume_from: Some(checkpoint.clone()),
                ..Default::default()
            },
        );
        assert_eq!(resumed.resumed_from, checkpoint.iterations);
        assert_eq!(
            resumed.to_json().to_string_pretty(),
            full.to_json().to_string_pretty(),
            "resumed report must be byte-identical to the uninterrupted one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lut_locked_design_broken() {
        // Replace a gate with a keyed LUT (traditional LUT insertion,
        // Fig. 1a): SAT attack recovers the truth table.
        let mut oracle = Netlist::new("o");
        let a = oracle.add_input("a");
        let b = oracle.add_input("b");
        let c = oracle.add_input("c");
        let t = oracle.add_cell("t", CellKind::And, vec![a, b]);
        let f = oracle.add_cell("f", CellKind::Xor, vec![t, c]);
        oracle.add_output("f", f);

        // Locked: t is a 2-input "LUT" built from key bits via mux tree —
        // modeled directly as 4 key bits read by a LUT-of-keys structure.
        let mut locked = Netlist::new("l");
        let la = locked.add_input("a");
        let lb = locked.add_input("b");
        let lc = locked.add_input("c");
        let keys: Vec<NetId> = (0..4)
            .map(|i| locked.add_key_input(format!("k{i}")))
            .collect();
        // mux tree: sel (a,b) over keys.
        let m0 = locked.add_cell("m0", CellKind::Mux2, vec![la, keys[0], keys[1]]);
        let m1 = locked.add_cell("m1", CellKind::Mux2, vec![la, keys[2], keys[3]]);
        let t = locked.add_cell("t", CellKind::Mux2, vec![lb, m0, m1]);
        let f = locked.add_cell("f", CellKind::Xor, vec![t, lc]);
        locked.add_output("f", f);

        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, .. } => {
                // AND truth table in (a,b) order: k[a + 2b]; only (1,1) → 1.
                // m0 = a?k1:k0 at b=0; correct key: k0=0,k1=0,k2=0,k3=1.
                assert_eq!(key, vec![false, false, false, true]);
            }
            other => panic!("expected break, got {other:?}"),
        }
    }

    #[test]
    fn scan_frame_exposes_state() {
        let mut n = Netlist::new("seq");
        let d = n.add_input("d");
        let q = n.add_cell("ff", CellKind::Dff, vec![d]);
        let f = n.add_cell("f", CellKind::Xor, vec![q, d]);
        n.add_output("f", f);
        let frame = scan_frame(&n);
        assert!(frame.is_combinational());
        assert_eq!(frame.inputs().len(), 2); // d + scan_q0
        assert_eq!(frame.outputs().len(), 2); // f + scan_d0
        // frame: f = scan_q0 ^ d, scan_d0 = d.
        assert_eq!(frame.eval_comb(&[true, false]), vec![true, true]);
        assert_eq!(frame.eval_comb(&[true, true]), vec![false, true]);
    }

    #[test]
    fn scan_frame_combinational_passthrough() {
        let oracle = small_oracle();
        let frame = scan_frame(&oracle);
        assert_eq!(frame.inputs().len(), oracle.inputs().len());
        assert_eq!(frame.outputs().len(), oracle.outputs().len());
    }

    #[test]
    fn sequential_lock_attacked_via_frames() {
        // Sequential locked circuit: q' = d ^ k; out = q. Scan frames make
        // the key observable in one frame.
        let mut oracle = Netlist::new("so");
        let d = oracle.add_input("d");
        let q = oracle.add_cell("ff", CellKind::Dff, vec![d]);
        oracle.add_output("q", q);
        let mut locked = Netlist::new("sl");
        let ld = locked.add_input("d");
        let k = locked.add_key_input("k");
        let dx = locked.add_cell("dx", CellKind::Xor, vec![ld, k]);
        let dx2 = locked.add_cell("dx2", CellKind::Xor, vec![dx, k]);
        let lq = locked.add_cell("ff", CellKind::Dff, vec![dx2]);
        locked.add_output("q", lq);
        // dx2 = d ^ k ^ k = d: every key works; attack must find *a* key.
        let of = scan_frame(&oracle);
        let lf = scan_frame(&locked);
        let outcome = sat_attack(&lf, &of, &SatAttackOptions::default());
        assert!(outcome.is_broken(), "{outcome:?}");
    }

    #[test]
    fn keyed_lut_mask_recovered() {
        // LUT cell whose mask is correct only for one key assignment via
        // LutMask-encoded locked structure exercise.
        let mut oracle = Netlist::new("o");
        let a = oracle.add_input("a");
        let b = oracle.add_input("b");
        let f = oracle.add_cell("f", CellKind::Lut(LutMask::new(0b0110, 2)), vec![a, b]);
        oracle.add_output("f", f);
        let (locked, true_key) = xor_lock(&oracle, 1);
        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, .. } => assert_eq!(key, true_key),
            other => panic!("{other:?}"),
        }
    }
}
