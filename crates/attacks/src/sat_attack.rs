//! The oracle-guided SAT attack \[6\].
//!
//! Loop: (1) solve a miter of two locked copies with shared primary inputs
//! and independent keys, forcing some output to differ — a model is a
//! *distinguishing input pattern* (DIP); (2) query the oracle (the activated
//! chip) on the DIP; (3) constrain both key candidates to reproduce the
//! oracle's answer on that DIP; (4) repeat. When the miter is UNSAT, every
//! remaining key candidate is functionally correct; one is extracted and
//! verified.
//!
//! Sequential designs enter through [`scan_frame`], matching the paper's
//! full-scan threat model: flip-flop outputs become scannable pseudo-inputs
//! and data pins pseudo-outputs, so a single combinational frame carries the
//! whole secret.

use shell_netlist::equiv::{equiv_exhaustive, equiv_random, EquivResult};
use shell_netlist::{CellKind, NetId, Netlist};
use shell_sat::{encode_miter, encode_netlist, Lit, SatResult, Solver};

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct SatAttackOptions {
    /// DIP-loop iteration cap (a structural timeout).
    pub max_iterations: usize,
    /// Cumulative solver conflict budget (the 48-hour stand-in).
    pub conflict_budget: Option<u64>,
    /// Verify the extracted key against the oracle before claiming success.
    pub verify_key: bool,
    /// Vectors for the Monte-Carlo verification of wide designs.
    pub verify_vectors: usize,
}

impl Default for SatAttackOptions {
    fn default() -> Self {
        Self {
            max_iterations: 512,
            conflict_budget: Some(2_000_000),
            verify_key: true,
            verify_vectors: 512,
        }
    }
}

/// Attack outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatAttackOutcome {
    /// A functionally correct key was recovered: the design is **broken**.
    Broken {
        /// The recovered key.
        key: Vec<bool>,
        /// DIP iterations used.
        iterations: usize,
        /// Total solver conflicts.
        conflicts: u64,
    },
    /// The budget ran out first: **resilient** within this budget.
    Resilient {
        /// DIP iterations completed.
        iterations: usize,
        /// Total solver conflicts.
        conflicts: u64,
    },
    /// The attack terminated with a key that fails verification (e.g. a
    /// cyclic-reduction cut severed the functional path) or with an
    /// inconsistent constraint set. The design survives, but for structural
    /// reasons rather than budget exhaustion.
    WrongKey {
        /// The non-functional candidate key.
        key: Vec<bool>,
        /// DIP iterations used.
        iterations: usize,
    },
}

impl SatAttackOutcome {
    /// `true` when a correct key was extracted.
    pub fn is_broken(&self) -> bool {
        matches!(self, SatAttackOutcome::Broken { .. })
    }
}

/// Converts a sequential netlist into its full-scan combinational frame:
/// every DFF output becomes a primary input `scan_q<i>` and every DFF data
/// pin a primary output `scan_d<i>`. Combinational designs pass through
/// unchanged (cloned).
///
/// ```
/// use shell_netlist::{Netlist, CellKind};
/// use shell_attacks::scan_frame;
///
/// let mut n = Netlist::new("ff");
/// let d = n.add_input("d");
/// let q = n.add_cell("ff", CellKind::Dff, vec![d]);
/// n.add_output("q", q);
/// let frame = scan_frame(&n);
/// assert!(frame.is_combinational());
/// assert_eq!(frame.inputs().len(), 2);   // d + scan_q0
/// assert_eq!(frame.outputs().len(), 2);  // q + scan_d0
/// ```
///
/// # Panics
///
/// Panics when the netlist contains latches.
pub fn scan_frame(netlist: &Netlist) -> Netlist {
    if netlist.is_combinational() {
        return netlist.clone();
    }
    let mut out = Netlist::new(format!("{}_frame", netlist.name()));
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &n in netlist.inputs() {
        map[n.index()] = Some(out.add_input(netlist.net(n).name.clone()));
    }
    for &n in netlist.key_inputs() {
        map[n.index()] = Some(out.add_key_input(netlist.net(n).name.clone()));
    }
    // DFF outputs become scan inputs. Order the chain by cell *name* so two
    // functionally-equal designs with different construction orders (e.g.
    // an original and its redacted-and-reassembled twin) expose identical
    // scan frames.
    let mut seq = netlist.sequential_cells();
    seq.sort_by(|&a, &b| netlist.cell(a).name.cmp(&netlist.cell(b).name));
    for (i, &cid) in seq.iter().enumerate() {
        let c = netlist.cell(cid);
        assert!(
            c.kind == CellKind::Dff,
            "latch `{}` not supported in scan frames",
            c.name
        );
        map[c.output.index()] = Some(out.add_input(format!("scan_q{i}")));
    }
    let order = netlist.topo_order().expect("cyclic netlist");
    let resolve = |out: &mut Netlist, map: &mut Vec<Option<NetId>>, n: NetId| -> NetId {
        if let Some(m) = map[n.index()] {
            m
        } else {
            let m = out.add_net("floating");
            map[n.index()] = Some(m);
            m
        }
    };
    for cid in order {
        let c = netlist.cell(cid);
        if c.kind.is_sequential() {
            continue;
        }
        let ins: Vec<NetId> = c
            .inputs
            .iter()
            .map(|&n| resolve(&mut out, &mut map, n))
            .collect();
        let new = out.add_cell(c.name.clone(), c.kind, ins);
        map[c.output.index()] = Some(new);
    }
    for (name, n) in netlist.outputs() {
        let m = resolve(&mut out, &mut map, *n);
        out.add_output(name.clone(), m);
    }
    // DFF data pins become scan outputs.
    for (i, &cid) in seq.iter().enumerate() {
        let d = netlist.cell(cid).inputs[0];
        let m = map[d.index()].expect("data pin realized");
        out.add_output(format!("scan_d{i}"), m);
    }
    out
}

/// Runs the oracle-guided SAT attack on `locked` against `oracle`.
///
/// Both netlists must be combinational (run [`scan_frame`] first) with the
/// same primary input/output counts; `oracle` must have no key inputs.
///
/// # Panics
///
/// Panics on shape mismatches or non-combinational inputs.
pub fn sat_attack(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
) -> SatAttackOutcome {
    assert!(locked.is_combinational(), "scan_frame the locked design first");
    assert!(oracle.is_combinational(), "scan_frame the oracle first");
    assert!(oracle.key_inputs().is_empty(), "oracle must be activated");
    assert_eq!(
        locked.inputs().len(),
        oracle.inputs().len(),
        "input shape mismatch"
    );
    assert_eq!(
        locked.outputs().len(),
        oracle.outputs().len(),
        "output shape mismatch"
    );

    let mut solver = Solver::new();
    solver.set_conflict_budget(options.conflict_budget);
    // Miter of two copies of the locked design: shared inputs, independent
    // key candidates, at least one output pair forced to differ.
    let miter = encode_miter(&mut solver, locked, locked);
    let (copy_a, copy_b) = (miter.lhs, miter.rhs);

    let n_inputs = locked.inputs().len();
    let mut iterations = 0usize;
    let mut dips: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    loop {
        if iterations >= options.max_iterations {
            return SatAttackOutcome::Resilient {
                iterations,
                conflicts: solver.stats().conflicts,
            };
        }
        match solver.solve() {
            SatResult::Unknown => {
                return SatAttackOutcome::Resilient {
                    iterations,
                    conflicts: solver.stats().conflicts,
                }
            }
            SatResult::Unsat => break,
            SatResult::Sat => {
                iterations += 1;
                // Extract the DIP.
                let dip: Vec<bool> = copy_a
                    .inputs
                    .iter()
                    .map(|&v| solver.value(v).unwrap_or(false))
                    .collect();
                debug_assert_eq!(dip.len(), n_inputs);
                // Oracle query.
                let response = oracle.eval_comb(&dip);
                dips.push((dip.clone(), response.clone()));
                // Pin both key candidates to the oracle's answer on the DIP:
                // encode one fresh copy per key set with constant inputs.
                for keys in [&copy_a.keys, &copy_b.keys] {
                    let fresh = encode_netlist(&mut solver, locked, None, Some(keys));
                    for (i, &v) in fresh.inputs.iter().enumerate() {
                        solver.add_clause(&[Lit::new(v, dip[i])]);
                    }
                    for (o, &v) in fresh.outputs.iter().enumerate() {
                        solver.add_clause(&[Lit::new(v, response[o])]);
                    }
                }
            }
        }
    }

    // Miter UNSAT: every key consistent with all recorded DIP constraints
    // is functionally correct [6]; extract one from a fresh solver.
    let key = extract_key(locked, &dips, options);
    let conflicts = solver.stats().conflicts;
    match key {
        Some(key) => {
            if options.verify_key {
                let ok = verify_key(locked, oracle, &key, options.verify_vectors);
                if ok {
                    SatAttackOutcome::Broken {
                        key,
                        iterations,
                        conflicts,
                    }
                } else {
                    SatAttackOutcome::WrongKey { key, iterations }
                }
            } else {
                SatAttackOutcome::Broken {
                    key,
                    iterations,
                    conflicts,
                }
            }
        }
        None => SatAttackOutcome::WrongKey {
            key: Vec::new(),
            iterations,
        },
    }
}

/// Solves for one key consistent with the recorded DIP/response pairs —
/// sound by the SAT attack's termination argument: once the miter is UNSAT,
/// keys agreeing on all DIPs agree everywhere.
fn extract_key(
    locked: &Netlist,
    dips: &[(Vec<bool>, Vec<bool>)],
    options: &SatAttackOptions,
) -> Option<Vec<bool>> {
    let mut solver = Solver::new();
    solver.set_conflict_budget(options.conflict_budget);
    let copy = encode_netlist(&mut solver, locked, None, None);
    for (dip, response) in dips {
        let fresh = encode_netlist(&mut solver, locked, None, Some(&copy.keys));
        for (i, &v) in fresh.inputs.iter().enumerate() {
            solver.add_clause(&[Lit::new(v, dip[i])]);
        }
        for (o, &v) in fresh.outputs.iter().enumerate() {
            solver.add_clause(&[Lit::new(v, response[o])]);
        }
    }
    match solver.solve() {
        SatResult::Sat => Some(
            copy.keys
                .iter()
                .map(|&k| solver.value(k).unwrap_or(false))
                .collect(),
        ),
        _ => None,
    }
}

/// Checks the candidate key against the oracle (exhaustive up to 12 inputs,
/// Monte-Carlo beyond).
fn verify_key(locked: &Netlist, oracle: &Netlist, key: &[bool], vectors: usize) -> bool {
    let outcome = if locked.inputs().len() <= 12 {
        equiv_exhaustive(oracle, locked, &[], key)
    } else {
        equiv_random(oracle, locked, &[], key, vectors, 0xFACE)
    };
    matches!(outcome, EquivResult::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_netlist::LutMask;

    /// XOR-locks `oracle` by inserting key XORs on `bits` internal cells'
    /// outputs — breakable by the SAT attack quickly.
    fn xor_lock(oracle: &Netlist, bits: usize) -> (Netlist, Vec<bool>) {
        let mut locked = oracle.clone();
        let fanout = locked.fanout_table();
        let mut key = Vec::new();
        let targets: Vec<_> = locked
            .cells()
            .map(|(id, _)| id)
            .take(bits)
            .collect();
        for (i, cid) in targets.into_iter().enumerate() {
            // Insert XOR between cell output and its readers.
            let out_net = locked.cell(cid).output;
            let k = locked.add_key_input(format!("k{i}"));
            // Correct key bit: 0 (XOR transparent) or 1 with an extra NOT.
            let invert = i % 2 == 1;
            let gate_in = if invert {
                let inv = locked.add_cell(format!("pre_inv{i}"), CellKind::Not, vec![out_net]);
                key.push(true);
                inv
            } else {
                key.push(false);
                out_net
            };
            let xored = locked.add_cell(format!("kx{i}"), CellKind::Xor, vec![gate_in, k]);
            for &(reader, pin) in &fanout[out_net.index()] {
                locked.rewire_input(reader, pin, xored);
            }
        }
        (locked, key)
    }

    fn small_oracle() -> Netlist {
        shell_circuits_free_adder()
    }

    /// A 4-bit adder built inline (no dependency on shell-circuits to keep
    /// the crate graph lean).
    fn shell_circuits_free_adder() -> Netlist {
        let mut n = Netlist::new("oracle");
        let a: Vec<NetId> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        let mut carry = n.add_cell("c0", CellKind::Const(false), vec![]);
        for i in 0..4 {
            let p = n.add_cell(format!("p{i}"), CellKind::Xor, vec![a[i], b[i]]);
            let s = n.add_cell(format!("s{i}"), CellKind::Xor, vec![p, carry]);
            let g = n.add_cell(format!("g{i}"), CellKind::And, vec![a[i], b[i]]);
            let pc = n.add_cell(format!("pc{i}"), CellKind::And, vec![p, carry]);
            carry = n.add_cell(format!("c{}", i + 1), CellKind::Or, vec![g, pc]);
            n.add_output(format!("s{i}"), s);
        }
        n.add_output("cout", carry);
        n
    }

    #[test]
    fn breaks_xor_locking() {
        let oracle = small_oracle();
        let (locked, true_key) = xor_lock(&oracle, 6);
        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, iterations, .. } => {
                // The recovered key must be *functionally* correct; chained
                // inverted bits can cancel, so bit equality with true_key is
                // not required. The attack verified already; double-check.
                use shell_netlist::equiv::equiv_exhaustive;
                assert!(equiv_exhaustive(&oracle, &locked, &[], &key).is_equivalent());
                assert!(
                    equiv_exhaustive(&oracle, &locked, &[], &true_key).is_equivalent(),
                    "sanity: the planted key is correct too"
                );
                assert!(iterations <= 64);
            }
            other => panic!("expected break, got {other:?}"),
        }
    }

    #[test]
    fn key_verification_detects_wrong_function() {
        // A "locked" design that is NOT the oracle under any key: the
        // attack must not claim Broken.
        let oracle = small_oracle();
        let mut locked = oracle.clone();
        let k = locked.add_key_input("k");
        // Corrupt one output irrecoverably: new_out0 = old_out0 XOR (a0 AND !k ... )
        let a0 = locked.inputs()[0];
        let nk = locked.add_cell("nk", CellKind::Not, vec![k]);
        let taint = locked.add_cell("taint", CellKind::And, vec![a0, nk]);
        let old = locked.outputs()[0].1;
        let bad = locked.add_cell("bad", CellKind::Xor, vec![old, taint, k]);
        // Replace output 0.
        let mut outs: Vec<(String, NetId)> = locked.outputs().to_vec();
        outs[0].1 = bad;
        let mut rebuilt = Netlist::new("locked_bad");
        // Rebuild quickly via clone trick: easier—construct fresh netlist by
        // copying locked and re-adding outputs is involved; instead assert on
        // the simpler property: attack on (locked-with-extra-output).
        let _ = outs;
        let _ = rebuilt;
        // Simpler scenario: oracle = AND, locked = OR with key XOR on output
        // (no key makes OR equal AND on all inputs).
        let mut oracle2 = Netlist::new("and");
        let x = oracle2.add_input("x");
        let y = oracle2.add_input("y");
        let f = oracle2.add_cell("f", CellKind::And, vec![x, y]);
        oracle2.add_output("f", f);
        let mut locked2 = Netlist::new("or_locked");
        let x2 = locked2.add_input("x");
        let y2 = locked2.add_input("y");
        let k2 = locked2.add_key_input("k");
        let g = locked2.add_cell("g", CellKind::Or, vec![x2, y2]);
        let f2 = locked2.add_cell("f", CellKind::Xor, vec![g, k2]);
        locked2.add_output("f", f2);
        let outcome = sat_attack(&locked2, &oracle2, &SatAttackOptions::default());
        assert!(
            !outcome.is_broken(),
            "no key makes OR⊕k equal AND: {outcome:?}"
        );
    }

    #[test]
    fn budget_exhaustion_reports_resilient() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 8);
        let opts = SatAttackOptions {
            max_iterations: 1,
            conflict_budget: Some(1),
            ..Default::default()
        };
        let outcome = sat_attack(&locked, &oracle, &opts);
        assert!(matches!(outcome, SatAttackOutcome::Resilient { .. }));
    }

    #[test]
    fn lut_locked_design_broken() {
        // Replace a gate with a keyed LUT (traditional LUT insertion,
        // Fig. 1a): SAT attack recovers the truth table.
        let mut oracle = Netlist::new("o");
        let a = oracle.add_input("a");
        let b = oracle.add_input("b");
        let c = oracle.add_input("c");
        let t = oracle.add_cell("t", CellKind::And, vec![a, b]);
        let f = oracle.add_cell("f", CellKind::Xor, vec![t, c]);
        oracle.add_output("f", f);

        // Locked: t is a 2-input "LUT" built from key bits via mux tree —
        // modeled directly as 4 key bits read by a LUT-of-keys structure.
        let mut locked = Netlist::new("l");
        let la = locked.add_input("a");
        let lb = locked.add_input("b");
        let lc = locked.add_input("c");
        let keys: Vec<NetId> = (0..4)
            .map(|i| locked.add_key_input(format!("k{i}")))
            .collect();
        // mux tree: sel (a,b) over keys.
        let m0 = locked.add_cell("m0", CellKind::Mux2, vec![la, keys[0], keys[1]]);
        let m1 = locked.add_cell("m1", CellKind::Mux2, vec![la, keys[2], keys[3]]);
        let t = locked.add_cell("t", CellKind::Mux2, vec![lb, m0, m1]);
        let f = locked.add_cell("f", CellKind::Xor, vec![t, lc]);
        locked.add_output("f", f);

        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, .. } => {
                // AND truth table in (a,b) order: k[a + 2b]; only (1,1) → 1.
                // m0 = a?k1:k0 at b=0; correct key: k0=0,k1=0,k2=0,k3=1.
                assert_eq!(key, vec![false, false, false, true]);
            }
            other => panic!("expected break, got {other:?}"),
        }
    }

    #[test]
    fn scan_frame_exposes_state() {
        let mut n = Netlist::new("seq");
        let d = n.add_input("d");
        let q = n.add_cell("ff", CellKind::Dff, vec![d]);
        let f = n.add_cell("f", CellKind::Xor, vec![q, d]);
        n.add_output("f", f);
        let frame = scan_frame(&n);
        assert!(frame.is_combinational());
        assert_eq!(frame.inputs().len(), 2); // d + scan_q0
        assert_eq!(frame.outputs().len(), 2); // f + scan_d0
        // frame: f = scan_q0 ^ d, scan_d0 = d.
        assert_eq!(frame.eval_comb(&[true, false]), vec![true, true]);
        assert_eq!(frame.eval_comb(&[true, true]), vec![false, true]);
    }

    #[test]
    fn scan_frame_combinational_passthrough() {
        let oracle = small_oracle();
        let frame = scan_frame(&oracle);
        assert_eq!(frame.inputs().len(), oracle.inputs().len());
        assert_eq!(frame.outputs().len(), oracle.outputs().len());
    }

    #[test]
    fn sequential_lock_attacked_via_frames() {
        // Sequential locked circuit: q' = d ^ k; out = q. Scan frames make
        // the key observable in one frame.
        let mut oracle = Netlist::new("so");
        let d = oracle.add_input("d");
        let q = oracle.add_cell("ff", CellKind::Dff, vec![d]);
        oracle.add_output("q", q);
        let mut locked = Netlist::new("sl");
        let ld = locked.add_input("d");
        let k = locked.add_key_input("k");
        let dx = locked.add_cell("dx", CellKind::Xor, vec![ld, k]);
        let dx2 = locked.add_cell("dx2", CellKind::Xor, vec![dx, k]);
        let lq = locked.add_cell("ff", CellKind::Dff, vec![dx2]);
        locked.add_output("q", lq);
        // dx2 = d ^ k ^ k = d: every key works; attack must find *a* key.
        let of = scan_frame(&oracle);
        let lf = scan_frame(&locked);
        let outcome = sat_attack(&lf, &of, &SatAttackOptions::default());
        assert!(outcome.is_broken(), "{outcome:?}");
    }

    #[test]
    fn keyed_lut_mask_recovered() {
        // LUT cell whose mask is correct only for one key assignment via
        // LutMask-encoded locked structure exercise.
        let mut oracle = Netlist::new("o");
        let a = oracle.add_input("a");
        let b = oracle.add_input("b");
        let f = oracle.add_cell("f", CellKind::Lut(LutMask::new(0b0110, 2)), vec![a, b]);
        oracle.add_output("f", f);
        let (locked, true_key) = xor_lock(&oracle, 1);
        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, .. } => assert_eq!(key, true_key),
            other => panic!("{other:?}"),
        }
    }
}
