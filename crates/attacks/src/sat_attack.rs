//! The oracle-guided SAT attack \[6\].
//!
//! Loop: (1) solve a miter of two locked copies with shared primary inputs
//! and independent keys, forcing some output to differ — a model is a
//! *distinguishing input pattern* (DIP); (2) query the oracle (the activated
//! chip) on the DIP; (3) constrain both key candidates to reproduce the
//! oracle's answer on that DIP; (4) repeat. When the miter is UNSAT, every
//! remaining key candidate is functionally correct; one is extracted and
//! verified.
//!
//! The DIP loop runs in one of two modes ([`DipMode`]). The default,
//! [`DipMode::Incremental`], keeps **one persistent solver** for the whole
//! attack: the miter is encoded once with its difference clause gated behind
//! an activation literal, each DIP appends two IO-pinned circuit copies to
//! the same solver, and learned clauses plus VSIDS/phase state carry across
//! iterations. Key extraction flips the activation literal on that same
//! solver instead of building another one. [`DipMode::Scratch`] rebuilds the
//! solver from the DIP prefix every iteration — the pre-incremental
//! reference behavior, kept for benchmarking (`bench_sat`) and as a
//! cross-check oracle in tests.
//!
//! Either way each iteration is a pure function of the DIP prefix, which is
//! the property the checkpoint format depends on: a resumed incremental run
//! *replays* the prefix solves deterministically from iteration 0 (using the
//! recorded oracle responses, so the oracle is not re-queried), arriving at
//! the exact solver state the interrupted run had — and therefore at the
//! same key, conflict totals, and byte-identical report JSON.
//!
//! Sequential designs enter through [`scan_frame`], matching the paper's
//! full-scan threat model: flip-flop outputs become scannable pseudo-inputs
//! and data pins pseudo-outputs, so a single combinational frame carries the
//! whole secret.

use shell_guard::{Budget, Exhausted};
use shell_netlist::equiv::{equiv_exhaustive, equiv_random, EquivResult};
use shell_netlist::{CellKind, NetId, Netlist};
use shell_sat::{
    encode_miter, encode_miter_gated, encode_netlist, Lit, SatResult, Solver, Var,
};
use shell_chaos::Io;
use shell_util::Json;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Default conflict quota — the 48-hour stand-in at laptop scale.
pub const DEFAULT_CONFLICT_QUOTA: u64 = 2_000_000;

/// How the DIP loop manages its solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DipMode {
    /// One persistent solver across all DIP iterations and key extraction:
    /// the miter is encoded once (difference clause gated by an activation
    /// literal), DIP constraints append incrementally, and learned clauses
    /// carry over. Resume replays the DIP prefix from iteration 0 to
    /// rebuild the solver state deterministically.
    #[default]
    Incremental,
    /// Rebuild the solver from the DIP prefix every iteration. Slower, but
    /// each iteration is trivially independent; used as the benchmark
    /// baseline and as a differential oracle for the incremental mode.
    Scratch,
}

impl DipMode {
    /// Stable serialization label (checkpoint JSON, bench output).
    pub fn label(self) -> &'static str {
        match self {
            DipMode::Incremental => "incremental",
            DipMode::Scratch => "scratch",
        }
    }

    /// Inverse of [`DipMode::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "incremental" => Some(DipMode::Incremental),
            "scratch" => Some(DipMode::Scratch),
            _ => None,
        }
    }
}

/// Attack configuration.
#[derive(Debug, Clone)]
pub struct SatAttackOptions {
    /// DIP-loop iteration cap (a structural timeout).
    pub max_iterations: usize,
    /// Shared governance token: one quota step is a solver conflict, spent
    /// across every solver the attack builds. Defaults to
    /// [`DEFAULT_CONFLICT_QUOTA`] conflicts plus whatever deadline
    /// `SHELL_DEADLINE_MS` specifies (see [`Budget::from_env`]).
    pub budget: Budget,
    /// Solver lifecycle across DIP iterations (see [`DipMode`]).
    pub mode: DipMode,
    /// Verify the extracted key against the oracle before claiming success.
    pub verify_key: bool,
    /// Vectors for the Monte-Carlo verification of wide designs.
    pub verify_vectors: usize,
    /// When set, a resumable [`AttackCheckpoint`] is written here after
    /// every completed DIP iteration (best-effort: I/O errors are ignored
    /// so a full disk cannot kill the attack).
    pub checkpoint_path: Option<PathBuf>,
    /// Resume state from an earlier exhausted run. Scratch mode continues
    /// from the recorded prefix; incremental mode replays the prefix solves
    /// first to reconstruct the persistent solver, then continues.
    pub resume_from: Option<AttackCheckpoint>,
    /// Filesystem seam for checkpoint writes. Production keeps the default
    /// ([`shell_chaos::real`]); the crash-point matrix swaps in a
    /// `ChaosIo` so checkpoint commits are enumerable crash steps too.
    pub checkpoint_io: Arc<dyn Io>,
}

impl Default for SatAttackOptions {
    fn default() -> Self {
        Self {
            max_iterations: 512,
            budget: Budget::from_env().with_quota(DEFAULT_CONFLICT_QUOTA),
            mode: DipMode::default(),
            verify_key: true,
            verify_vectors: 512,
            checkpoint_path: None,
            resume_from: None,
            checkpoint_io: shell_chaos::real(),
        }
    }
}

/// Resumable state of an interrupted SAT attack: the DIP/response prefix
/// plus spend bookkeeping. The DIP prefix determines the rest of the attack
/// exactly (in both [`DipMode`]s), so a resumed run produces the same key,
/// iteration count, and conflict total as an uninterrupted one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackCheckpoint {
    /// Name of the locked design the checkpoint belongs to (sanity-checked
    /// on resume).
    pub design: String,
    /// The [`DipMode`] that recorded this checkpoint. Resume refuses a
    /// mode mismatch: the DIP *sequences* of the two modes agree, but their
    /// budget-spend trajectories do not, so silently crossing modes would
    /// break the resumed-equals-uninterrupted accounting contract.
    pub mode: DipMode,
    /// Completed DIP iterations.
    pub iterations: usize,
    /// Solver conflicts spent by the completed iterations. Partial work of
    /// an interrupted iteration is *not* recorded — and is excluded from
    /// the interrupted run's report too, so report and checkpoint always
    /// agree; the iteration re-runs in full on resume.
    pub conflicts_spent: u64,
    /// The `(dip, oracle response)` pairs recorded so far.
    pub dips: Vec<(Vec<bool>, Vec<bool>)>,
}

impl AttackCheckpoint {
    /// Serializes to the `results/checkpoints/*.json` schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("design", Json::Str(self.design.clone())),
            ("mode", Json::Str(self.mode.label().to_string())),
            ("iterations", Json::Num(self.iterations as f64)),
            ("conflicts_spent", Json::Num(self.conflicts_spent as f64)),
            (
                "dips",
                Json::arr(self.dips.iter().map(|(dip, response)| {
                    Json::obj([
                        ("input", Json::arr(dip.iter().map(|&b| Json::Bool(b)))),
                        (
                            "response",
                            Json::arr(response.iter().map(|&b| Json::Bool(b))),
                        ),
                    ])
                })),
            ),
        ])
    }

    /// Parses the [`AttackCheckpoint::to_json`] schema. A missing `mode`
    /// field (checkpoints from before the incremental attack landed) reads
    /// as [`DipMode::Scratch`], which is what recorded it back then.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let design = json
            .get("design")
            .and_then(Json::as_str)
            .ok_or("checkpoint: missing `design`")?
            .to_string();
        let mode = match json.get("mode").and_then(Json::as_str) {
            Some(label) => DipMode::from_label(label)
                .ok_or_else(|| format!("checkpoint: unknown mode `{label}`"))?,
            None => DipMode::Scratch,
        };
        let iterations = json
            .get("iterations")
            .and_then(Json::as_usize)
            .ok_or("checkpoint: missing `iterations`")?;
        let conflicts_spent = json
            .get("conflicts_spent")
            .and_then(Json::as_u64)
            .ok_or("checkpoint: missing `conflicts_spent`")?;
        let dip_items = json
            .get("dips")
            .and_then(Json::as_arr)
            .ok_or("checkpoint: missing `dips`")?;
        let mut dips = Vec::with_capacity(dip_items.len());
        for item in dip_items {
            let bools = |key: &str| -> Result<Vec<bool>, String> {
                item.get(key)
                    .and_then(Json::as_arr)
                    .ok_or_else(|| format!("checkpoint: dip missing `{key}`"))?
                    .iter()
                    .map(|b| b.as_bool().ok_or_else(|| format!("checkpoint: non-bool in `{key}`")))
                    .collect()
            };
            dips.push((bools("input")?, bools("response")?));
        }
        if dips.len() != iterations {
            return Err(format!(
                "checkpoint: {} dips but {} iterations",
                dips.len(),
                iterations
            ));
        }
        Ok(Self {
            design,
            mode,
            iterations,
            conflicts_spent,
            dips,
        })
    }

    /// Writes the checkpoint (pretty JSON), creating parent directories.
    /// Atomic (temp file + fsync + rename): a crash mid-save leaves the
    /// previous checkpoint intact, never a torn one.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        self.save_with(&shell_chaos::RealIo, path)
    }

    /// [`AttackCheckpoint::save`] through an explicit [`Io`] seam, so fault
    /// injection can enumerate the checkpoint commit's crash points.
    pub fn save_with(&self, io: &dyn Io, path: &Path) -> std::io::Result<()> {
        shell_chaos::atomic_write(io, path, self.to_json().to_string_pretty().as_bytes())
    }

    /// Loads a checkpoint written by [`AttackCheckpoint::save`].
    pub fn load(path: &Path) -> Result<Self, String> {
        Self::load_with(&shell_chaos::RealIo, path)
    }

    /// [`AttackCheckpoint::load`] through an explicit [`Io`] seam.
    pub fn load_with(io: &dyn Io, path: &Path) -> Result<Self, String> {
        let text = shell_chaos::read_string(io, path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&Json::parse(&text)?)
    }
}

/// Attack outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatAttackOutcome {
    /// A functionally correct key was recovered: the design is **broken**.
    Broken {
        /// The recovered key.
        key: Vec<bool>,
        /// DIP iterations used.
        iterations: usize,
        /// Total solver conflicts.
        conflicts: u64,
    },
    /// The budget ran out first: **resilient** within this budget.
    Resilient {
        /// DIP iterations completed.
        iterations: usize,
        /// Total solver conflicts.
        conflicts: u64,
    },
    /// The attack terminated with a key that fails verification (e.g. a
    /// cyclic-reduction cut severed the functional path) or with an
    /// inconsistent constraint set. The design survives, but for structural
    /// reasons rather than budget exhaustion.
    WrongKey {
        /// The non-functional candidate key.
        key: Vec<bool>,
        /// DIP iterations used.
        iterations: usize,
    },
}

impl SatAttackOutcome {
    /// `true` when a correct key was extracted.
    pub fn is_broken(&self) -> bool {
        matches!(self, SatAttackOutcome::Broken { .. })
    }
}

/// Deterministic per-iteration solve cost of one DIP, plus wall time.
///
/// The counter fields are run-invariant (same in a resumed replay); `nanos`
/// is wall clock and therefore excluded from [`AttackReport::to_json`]
/// along with the rest of this struct — it feeds `bench_sat` curves, not
/// the report contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DipCost {
    /// Solver conflicts of this iteration's DIP solve.
    pub conflicts: u64,
    /// Decisions of this iteration's DIP solve.
    pub decisions: u64,
    /// Propagations of this iteration's DIP solve.
    pub propagations: u64,
    /// Wall time of the solve (not deterministic; never serialized).
    pub nanos: u64,
}

/// Full attack report: the outcome plus partial-progress accounting, so an
/// exhausted attack says *how far* it got instead of silently stopping.
#[derive(Debug, Clone)]
pub struct AttackReport {
    /// The attack outcome.
    pub outcome: SatAttackOutcome,
    /// DIPs recorded (including any restored from a resume checkpoint).
    pub dips_found: usize,
    /// Solver conflicts spent by *completed* work: every finished DIP
    /// iteration plus the key-extraction solve. Partial work of an
    /// interrupted iteration is excluded — the checkpoint excludes it too,
    /// so an interrupted report and its checkpoint always agree, and a
    /// resumed run reproduces the uninterrupted total exactly.
    pub conflicts_spent: u64,
    /// Why the attack stopped early, when it did.
    pub stop: Option<Exhausted>,
    /// Iterations restored from [`SatAttackOptions::resume_from`]
    /// (0 for a fresh run). Provenance only — deliberately absent from
    /// [`AttackReport::to_json`] so resumed and uninterrupted runs emit
    /// byte-identical reports.
    pub resumed_from: usize,
    /// Per-DIP solve costs in iteration order (replayed iterations
    /// included, so the curve always starts at iteration 0). Excluded from
    /// [`AttackReport::to_json`]: the `nanos` field is wall clock.
    pub per_dip: Vec<DipCost>,
    /// Where the last checkpoint was written, if checkpointing was on.
    pub checkpoint_written: Option<PathBuf>,
}

impl AttackReport {
    /// Deterministic report JSON. Contains only run-invariant fields: a run
    /// resumed from a checkpoint serializes byte-identically to the same
    /// attack run uninterrupted, and both [`DipMode`]s serialize
    /// identically when they agree on the DIP sequence.
    pub fn to_json(&self) -> Json {
        let (status, key, iterations, conflicts) = match &self.outcome {
            SatAttackOutcome::Broken {
                key,
                iterations,
                conflicts,
            } => ("broken", Some(key.clone()), *iterations, *conflicts),
            SatAttackOutcome::Resilient {
                iterations,
                conflicts,
            } => ("resilient", None, *iterations, *conflicts),
            SatAttackOutcome::WrongKey { key, iterations } => {
                ("wrong_key", Some(key.clone()), *iterations, self.conflicts_spent)
            }
        };
        Json::obj([
            ("status", Json::Str(status.to_string())),
            (
                "key",
                match key {
                    Some(k) => Json::arr(k.iter().map(|&b| Json::Bool(b))),
                    None => Json::Null,
                },
            ),
            ("iterations", Json::Num(iterations as f64)),
            ("conflicts", Json::Num(conflicts as f64)),
            ("dips_found", Json::Num(self.dips_found as f64)),
            ("conflicts_spent", Json::Num(self.conflicts_spent as f64)),
            (
                "stop",
                match self.stop {
                    Some(e) => Json::Str(e.label().to_string()),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Typed failure of [`try_scan_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// The design contains a transparent latch; scan frames model
    /// edge-triggered DFFs only.
    Latch {
        /// Name of the offending cell.
        cell: String,
    },
    /// A DFF data pin is fed by a net that no cell drives and no port
    /// realizes, so the scan output would be undefined.
    UnrealizedDataPin {
        /// Name of the DFF whose data pin is unrealized.
        cell: String,
    },
    /// The combinational core of the design is cyclic.
    Cyclic,
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Latch { cell } => {
                write!(f, "latch `{cell}` not supported in scan frames")
            }
            ScanError::UnrealizedDataPin { cell } => write!(
                f,
                "data pin of DFF `{cell}` is fed by an unrealized net"
            ),
            ScanError::Cyclic => write!(f, "cyclic netlist"),
        }
    }
}

impl std::error::Error for ScanError {}

/// Converts a sequential netlist into its full-scan combinational frame:
/// every DFF output becomes a primary input `scan_q<i>` and every DFF data
/// pin a primary output `scan_d<i>`. Combinational designs pass through
/// unchanged (cloned).
///
/// ```
/// use shell_netlist::{Netlist, CellKind};
/// use shell_attacks::try_scan_frame;
///
/// let mut n = Netlist::new("ff");
/// let d = n.add_input("d");
/// let q = n.add_cell("ff", CellKind::Dff, vec![d]);
/// n.add_output("q", q);
/// let frame = try_scan_frame(&n).unwrap();
/// assert!(frame.is_combinational());
/// assert_eq!(frame.inputs().len(), 2);   // d + scan_q0
/// assert_eq!(frame.outputs().len(), 2);  // q + scan_d0
/// ```
pub fn try_scan_frame(netlist: &Netlist) -> Result<Netlist, ScanError> {
    if netlist.is_combinational() {
        return Ok(netlist.clone());
    }
    let mut out = Netlist::new(format!("{}_frame", netlist.name()));
    let mut map: Vec<Option<NetId>> = vec![None; netlist.net_count()];
    for &n in netlist.inputs() {
        map[n.index()] = Some(out.add_input(netlist.net(n).name.clone()));
    }
    for &n in netlist.key_inputs() {
        map[n.index()] = Some(out.add_key_input(netlist.net(n).name.clone()));
    }
    // DFF outputs become scan inputs. Order the chain by cell *name* so two
    // functionally-equal designs with different construction orders (e.g.
    // an original and its redacted-and-reassembled twin) expose identical
    // scan frames.
    let mut seq = netlist.sequential_cells();
    seq.sort_by(|&a, &b| netlist.cell(a).name.cmp(&netlist.cell(b).name));
    for (i, &cid) in seq.iter().enumerate() {
        let c = netlist.cell(cid);
        if c.kind != CellKind::Dff {
            return Err(ScanError::Latch {
                cell: c.name.clone(),
            });
        }
        map[c.output.index()] = Some(out.add_input(format!("scan_q{i}")));
    }
    let order = netlist.topo_order().map_err(|_| ScanError::Cyclic)?;
    let resolve = |out: &mut Netlist, map: &mut Vec<Option<NetId>>, n: NetId| -> NetId {
        if let Some(m) = map[n.index()] {
            m
        } else {
            let m = out.add_net("floating");
            map[n.index()] = Some(m);
            m
        }
    };
    for cid in order {
        let c = netlist.cell(cid);
        if c.kind.is_sequential() {
            continue;
        }
        let ins: Vec<NetId> = c
            .inputs
            .iter()
            .map(|&n| resolve(&mut out, &mut map, n))
            .collect();
        let new = out.add_cell(c.name.clone(), c.kind, ins);
        map[c.output.index()] = Some(new);
    }
    for (name, n) in netlist.outputs() {
        let m = resolve(&mut out, &mut map, *n);
        out.add_output(name.clone(), m);
    }
    // DFF data pins become scan outputs. Unlike primary outputs (which may
    // legitimately read a floating net the design never drove), a dangling
    // data pin means the frame would invent state — a typed error, not a
    // silently-wrong frame.
    for (i, &cid) in seq.iter().enumerate() {
        let c = netlist.cell(cid);
        let d = c.inputs[0];
        let m = map[d.index()].ok_or_else(|| ScanError::UnrealizedDataPin {
            cell: c.name.clone(),
        })?;
        out.add_output(format!("scan_d{i}"), m);
    }
    Ok(out)
}

/// Panicking wrapper over [`try_scan_frame`], for callers that treat a
/// malformed design as a programming error.
///
/// # Panics
///
/// Panics with the [`ScanError`] message on latches, cyclic cores, or
/// unrealized DFF data pins.
pub fn scan_frame(netlist: &Netlist) -> Netlist {
    try_scan_frame(netlist).unwrap_or_else(|e| panic!("scan_frame: {e}"))
}

/// XOR-locks `oracle` by inserting one key XOR per primary output, on the
/// first `min(bits, outputs)` outputs (odd key bits are planted inverted so
/// the correct key is not all-zeros).
///
/// Because every key bit is independently observable at its own output,
/// **exactly one** key is functionally correct. That makes this lock the
/// determinism yardstick for the attack modes: any sound attack must
/// recover this exact key, so `bench_sat` and the cross-mode tests can
/// compare recovered keys bit-for-bit. (Contrast with internal-node XOR
/// locks, where chained inversions can cancel and many keys are correct.)
///
/// Returns the locked netlist and the unique correct key.
pub fn xor_lock_outputs(oracle: &Netlist, bits: usize) -> (Netlist, Vec<bool>) {
    let mut locked = oracle.clone();
    locked.set_name(format!("{}_xl", oracle.name()));
    let n = bits.min(locked.outputs().len());
    let mut key = Vec::with_capacity(n);
    for i in 0..n {
        let net = locked.outputs()[i].1;
        let k = locked.add_key_input(format!("xk{i}"));
        let invert = i % 2 == 1;
        let src = if invert {
            key.push(true);
            locked.add_cell(format!("xl_inv{i}"), CellKind::Not, vec![net])
        } else {
            key.push(false);
            net
        };
        let gate = locked.add_cell(format!("xl{i}"), CellKind::Xor, vec![src, k]);
        locked.set_output_net(i, gate);
    }
    (locked, key)
}

/// XOR-locks `oracle` by inserting one key XOR on the output of each of the
/// first `min(bits, cells)` internal cells (odd key bits planted inverted).
/// Unlike [`xor_lock_outputs`], the keyed nodes sit *inside* the cone, so
/// the SAT attack needs a genuine multi-DIP search to break the lock — this
/// is the standard "long-running attack" workload for benches, the service
/// resume tests, and anything else that must interrupt an attack
/// mid-flight. Chained inversions can cancel, so more than one key may be
/// functionally correct; compare recovered keys by function, not by bits.
///
/// Returns the locked netlist and the planted (correct) key.
pub fn xor_lock_cells(oracle: &Netlist, bits: usize) -> (Netlist, Vec<bool>) {
    let mut locked = oracle.clone();
    locked.set_name(format!("{}_xc", oracle.name()));
    let fanout = locked.fanout_table();
    let mut key = Vec::new();
    let targets: Vec<_> = locked.cells().map(|(id, _)| id).take(bits).collect();
    for (i, cid) in targets.into_iter().enumerate() {
        let out_net = locked.cell(cid).output;
        let k = locked.add_key_input(format!("k{i}"));
        // Correct key bit: 0 (XOR transparent) or 1 with an extra NOT.
        let invert = i % 2 == 1;
        let gate_in = if invert {
            let inv = locked.add_cell(format!("pre_inv{i}"), CellKind::Not, vec![out_net]);
            key.push(true);
            inv
        } else {
            key.push(false);
            out_net
        };
        let xored = locked.add_cell(format!("kx{i}"), CellKind::Xor, vec![gate_in, k]);
        for &(reader, pin) in &fanout[out_net.index()] {
            locked.rewire_input(reader, pin, xored);
        }
    }
    (locked, key)
}

/// Runs the oracle-guided SAT attack on `locked` against `oracle`.
///
/// Both netlists must be combinational (run [`scan_frame`] first) with the
/// same primary input/output counts; `oracle` must have no key inputs.
/// Thin wrapper over [`sat_attack_report`] for callers that only want the
/// outcome.
///
/// # Panics
///
/// Panics on shape mismatches or non-combinational inputs.
pub fn sat_attack(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
) -> SatAttackOutcome {
    sat_attack_report(locked, oracle, options).outcome
}

/// The full attack driver: [`sat_attack`] plus progress accounting,
/// per-iteration checkpointing, and resume. Dispatches on
/// [`SatAttackOptions::mode`]; both modes walk the same DIP sequence and
/// emit identical report JSON (see the [module docs](self)).
///
/// # Panics
///
/// Panics on shape mismatches, non-combinational inputs, or a resume
/// checkpoint recorded for a different design name or [`DipMode`].
pub fn sat_attack_report(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
) -> AttackReport {
    let _span = shell_trace::span!("attack.sat");
    assert!(locked.is_combinational(), "scan_frame the locked design first");
    assert!(oracle.is_combinational(), "scan_frame the oracle first");
    assert!(oracle.key_inputs().is_empty(), "oracle must be activated");
    assert_eq!(
        locked.inputs().len(),
        oracle.inputs().len(),
        "input shape mismatch"
    );
    assert_eq!(
        locked.outputs().len(),
        oracle.outputs().len(),
        "output shape mismatch"
    );
    if let Some(cp) = &options.resume_from {
        assert_eq!(
            cp.design,
            locked.name(),
            "resume checkpoint was recorded for a different design"
        );
        assert_eq!(
            cp.mode,
            options.mode,
            "resume checkpoint was recorded by a {} run, not {}",
            cp.mode.label(),
            options.mode.label()
        );
    }
    match options.mode {
        DipMode::Incremental => incremental_attack(locked, oracle, options),
        DipMode::Scratch => scratch_attack(locked, oracle, options),
    }
}

/// Writes a best-effort checkpoint; `None` when checkpointing is off or the
/// write failed (checkpointing must never kill the attack).
fn write_checkpoint(
    locked: &Netlist,
    options: &SatAttackOptions,
    iterations: usize,
    conflicts: u64,
    dips: &[(Vec<bool>, Vec<bool>)],
) -> Option<PathBuf> {
    let path = options.checkpoint_path.as_ref()?;
    let cp = AttackCheckpoint {
        design: locked.name().to_string(),
        mode: options.mode,
        iterations,
        conflicts_spent: conflicts,
        dips: dips.to_vec(),
    };
    cp.save_with(&*options.checkpoint_io, path)
        .ok()
        .map(|()| path.clone())
}

/// Appends one IO-pinned copy of `locked` (keys shared with `keys`) for the
/// recorded `(dip, response)` pair — the step that "teaches" a key
/// candidate set the oracle's answer.
fn pin_dip_copy(
    solver: &mut Solver,
    locked: &Netlist,
    keys: &[Var],
    dip: &[bool],
    response: &[bool],
) {
    let fresh = encode_netlist(solver, locked, None, Some(keys));
    for (i, &v) in fresh.inputs.iter().enumerate() {
        solver.add_clause(&[Lit::new(v, dip[i])]);
    }
    for (o, &v) in fresh.outputs.iter().enumerate() {
        solver.add_clause(&[Lit::new(v, response[o])]);
    }
}

/// Builds the final report once the miter goes UNSAT and a key candidate
/// has been extracted (or not).
#[allow(clippy::too_many_arguments)]
fn unsat_report(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
    key: Option<Vec<bool>>,
    iterations: usize,
    conflicts: u64,
    dips_found: usize,
    resumed_from: usize,
    per_dip: Vec<DipCost>,
    checkpoint_written: Option<PathBuf>,
) -> AttackReport {
    let outcome = match key {
        Some(key) => {
            if !options.verify_key || verify_key(locked, oracle, &key, options.verify_vectors) {
                SatAttackOutcome::Broken {
                    key,
                    iterations,
                    conflicts,
                }
            } else {
                SatAttackOutcome::WrongKey { key, iterations }
            }
        }
        None => SatAttackOutcome::WrongKey {
            key: Vec::new(),
            iterations,
        },
    };
    AttackReport {
        outcome,
        dips_found,
        conflicts_spent: conflicts,
        stop: None,
        resumed_from,
        per_dip,
        checkpoint_written,
    }
}

/// The persistent-solver DIP loop ([`DipMode::Incremental`]).
///
/// One gated miter is encoded once; every iteration solves under the
/// `+activation` assumption, appends the found DIP's two IO-pinned copies,
/// and keeps all learned clauses. On resume the loop starts from iteration
/// 0 and *replays* the checkpoint prefix: the solves re-run (deterministic,
/// so they re-find the recorded DIPs — asserted), the recorded oracle
/// responses are reused, and checkpoint writes are suppressed until the
/// replay passes the prefix, protecting the on-disk checkpoint from a
/// mid-replay crash.
fn incremental_attack(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
) -> AttackReport {
    let replay: &[(Vec<bool>, Vec<bool>)] = options
        .resume_from
        .as_ref()
        .map_or(&[], |cp| cp.dips.as_slice());
    let resumed_from = replay.len();

    let n_inputs = locked.inputs().len();
    let mut solver = Solver::new();
    solver.set_budget(Some(options.budget.clone()));
    let miter = encode_miter_gated(&mut solver, locked, locked);
    let act = miter.activation.expect("gated miter has an activation var");
    solver.take_delta(); // encoding cost is not a DIP-solve cost

    let mut iterations = 0usize;
    let mut conflicts = 0u64;
    let mut dips: Vec<(Vec<bool>, Vec<bool>)> = Vec::new();
    let mut per_dip: Vec<DipCost> = Vec::new();
    let mut checkpoint_written = None;

    let stopped = loop {
        if iterations >= options.max_iterations {
            break None; // structural timeout, not a budget event
        }
        // One span per DIP iteration; the iteration index lines up with the
        // `iterations` field of the checkpoint JSON, so a trace can be
        // joined against a resumed run's checkpoint.
        let _iter_span = shell_trace::span!("attack.sat.dip", iteration = iterations);
        let t0 = Instant::now();
        let result = solver.solve_with_assumptions(&[Lit::pos(act)]);
        let delta = solver.take_delta();
        match result {
            SatResult::Unknown => {
                // Budget exhausted mid-iteration: the partial conflicts are
                // excluded from the report, matching the checkpoint (the
                // iteration re-runs in full on resume).
                break Some(solver.stop_reason().unwrap_or(Exhausted::Quota));
            }
            SatResult::Unsat => {
                conflicts += delta.conflicts;
                // Miter UNSAT: every key consistent with all recorded DIP
                // constraints is functionally correct [6]. Extraction
                // reuses this solver with the difference clause gated OFF,
                // under a re-armed budget copy so it behaves identically
                // however the loop got here.
                solver.set_budget(Some(options.budget.fresh()));
                let extracted = solver.solve_with_assumptions(&[Lit::neg(act)]);
                conflicts += solver.take_delta().conflicts;
                let key = match extracted {
                    SatResult::Sat => Some(
                        miter
                            .lhs
                            .keys
                            .iter()
                            .map(|&k| solver.value(k).unwrap_or(false))
                            .collect(),
                    ),
                    _ => None,
                };
                return unsat_report(
                    locked,
                    oracle,
                    options,
                    key,
                    iterations,
                    conflicts,
                    dips.len(),
                    resumed_from,
                    per_dip,
                    checkpoint_written,
                );
            }
            SatResult::Sat => {
                conflicts += delta.conflicts;
                per_dip.push(DipCost {
                    conflicts: delta.conflicts,
                    decisions: delta.decisions,
                    propagations: delta.propagations,
                    nanos: t0.elapsed().as_nanos() as u64,
                });
                // Read the model *before* appending constraints: adding a
                // clause backtracks to level 0 and discards it.
                let dip: Vec<bool> = miter
                    .lhs
                    .inputs
                    .iter()
                    .map(|&v| solver.value(v).unwrap_or(false))
                    .collect();
                debug_assert_eq!(dip.len(), n_inputs);
                iterations += 1;
                shell_trace::counter_add("attack.dips", 1);
                let replaying = iterations <= resumed_from;
                let response = if replaying {
                    let (recorded_dip, recorded_response) = &replay[iterations - 1];
                    assert_eq!(
                        &dip,
                        recorded_dip,
                        "resume replay diverged from the checkpoint at iteration {}: \
                         the checkpoint does not match this design",
                        iterations - 1
                    );
                    recorded_response.clone()
                } else {
                    oracle.eval_comb(&dip)
                };
                for keys in [&miter.lhs.keys, &miter.rhs.keys] {
                    pin_dip_copy(&mut solver, locked, keys, &dip, &response);
                }
                solver.take_delta(); // pinning propagations are not solve cost
                dips.push((dip, response));
                if replaying {
                    if iterations == resumed_from {
                        // Replay complete: the reconstructed trajectory must
                        // account for exactly the checkpointed spend.
                        let recorded = options
                            .resume_from
                            .as_ref()
                            .map(|cp| cp.conflicts_spent)
                            .unwrap_or(0);
                        assert_eq!(
                            conflicts, recorded,
                            "replayed conflict total disagrees with the checkpoint"
                        );
                    }
                } else if let Some(p) =
                    write_checkpoint(locked, options, iterations, conflicts, &dips)
                {
                    checkpoint_written = Some(p);
                }
            }
        }
    };

    AttackReport {
        outcome: SatAttackOutcome::Resilient {
            iterations,
            conflicts,
        },
        dips_found: dips.len(),
        conflicts_spent: conflicts,
        stop: stopped,
        resumed_from,
        per_dip,
        checkpoint_written,
    }
}

/// The rebuild-per-iteration DIP loop ([`DipMode::Scratch`]): every
/// iteration encodes a fresh solver with the miter plus one IO-pinned copy
/// pair per recorded DIP. Resume continues from the recorded prefix
/// directly (nothing to replay — the next iteration rebuilds from the
/// prefix anyway).
fn scratch_attack(
    locked: &Netlist,
    oracle: &Netlist,
    options: &SatAttackOptions,
) -> AttackReport {
    let (mut iterations, mut conflicts, mut dips, resumed_from) = match &options.resume_from {
        Some(cp) => (cp.iterations, cp.conflicts_spent, cp.dips.clone(), cp.iterations),
        None => (0, 0, Vec::new(), 0),
    };

    let n_inputs = locked.inputs().len();
    let mut per_dip: Vec<DipCost> = Vec::new();
    let mut checkpoint_written = None;

    let stopped = loop {
        if iterations >= options.max_iterations {
            break None; // structural timeout, not a budget event
        }
        let _iter_span = shell_trace::span!("attack.sat.dip", iteration = iterations);
        // Fresh solver: miter of two copies of the locked design (shared
        // inputs, independent key candidates, some output pair forced to
        // differ) plus one IO-pinned copy per key set per recorded DIP.
        let mut solver = Solver::new();
        solver.set_budget(Some(options.budget.clone()));
        let miter = encode_miter(&mut solver, locked, locked);
        let (copy_a, copy_b) = (miter.lhs, miter.rhs);
        for (dip, response) in &dips {
            for keys in [&copy_a.keys, &copy_b.keys] {
                pin_dip_copy(&mut solver, locked, keys, dip, response);
            }
        }
        solver.take_delta(); // encoding cost is not a DIP-solve cost
        let t0 = Instant::now();
        let result = solver.solve();
        let delta = solver.take_delta();
        match result {
            SatResult::Unknown => {
                // Excluded from the report, matching the checkpoint — see
                // the incremental driver.
                break Some(solver.stop_reason().unwrap_or(Exhausted::Quota));
            }
            SatResult::Unsat => {
                conflicts += delta.conflicts;
                let (key, extract_conflicts) = extract_key(locked, &dips, options);
                conflicts += extract_conflicts;
                return unsat_report(
                    locked,
                    oracle,
                    options,
                    key,
                    iterations,
                    conflicts,
                    dips.len(),
                    resumed_from,
                    per_dip,
                    checkpoint_written,
                );
            }
            SatResult::Sat => {
                conflicts += delta.conflicts;
                per_dip.push(DipCost {
                    conflicts: delta.conflicts,
                    decisions: delta.decisions,
                    propagations: delta.propagations,
                    nanos: t0.elapsed().as_nanos() as u64,
                });
                iterations += 1;
                shell_trace::counter_add("attack.dips", 1);
                let dip: Vec<bool> = copy_a
                    .inputs
                    .iter()
                    .map(|&v| solver.value(v).unwrap_or(false))
                    .collect();
                debug_assert_eq!(dip.len(), n_inputs);
                let response = oracle.eval_comb(&dip);
                dips.push((dip, response));
                if let Some(p) = write_checkpoint(locked, options, iterations, conflicts, &dips) {
                    checkpoint_written = Some(p);
                }
            }
        }
    };

    AttackReport {
        outcome: SatAttackOutcome::Resilient {
            iterations,
            conflicts,
        },
        dips_found: dips.len(),
        conflicts_spent: conflicts,
        stop: stopped,
        resumed_from,
        per_dip,
        checkpoint_written,
    }
}

/// Solves for one key consistent with the recorded DIP/response pairs in a
/// fresh solver (the [`DipMode::Scratch`] extraction path; incremental mode
/// extracts on its persistent solver instead). Sound by the SAT attack's
/// termination argument: once the miter is UNSAT, keys agreeing on all DIPs
/// agree everywhere. Returns the key (if any) and the conflicts this solve
/// spent. Runs under a *re-armed* copy of the attack budget so extraction
/// behaves identically whether the DIP loop ran straight through or was
/// resumed from a checkpoint.
fn extract_key(
    locked: &Netlist,
    dips: &[(Vec<bool>, Vec<bool>)],
    options: &SatAttackOptions,
) -> (Option<Vec<bool>>, u64) {
    let mut solver = Solver::new();
    solver.set_budget(Some(options.budget.fresh()));
    let copy = encode_netlist(&mut solver, locked, None, None);
    for (dip, response) in dips {
        pin_dip_copy(&mut solver, locked, &copy.keys, dip, response);
    }
    let key = match solver.solve() {
        SatResult::Sat => Some(
            copy.keys
                .iter()
                .map(|&k| solver.value(k).unwrap_or(false))
                .collect(),
        ),
        _ => None,
    };
    (key, solver.take_delta().conflicts)
}

/// Checks the candidate key against the oracle (exhaustive up to 12 inputs,
/// Monte-Carlo beyond).
fn verify_key(locked: &Netlist, oracle: &Netlist, key: &[bool], vectors: usize) -> bool {
    let outcome = if locked.inputs().len() <= 12 {
        equiv_exhaustive(oracle, locked, &[], key)
    } else {
        equiv_random(oracle, locked, &[], key, vectors, 0xFACE)
    };
    matches!(outcome, EquivResult::Equivalent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_netlist::LutMask;

    /// The multi-DIP internal-node XOR lock, now public as
    /// [`xor_lock_cells`]; the tests keep their historical name.
    fn xor_lock(oracle: &Netlist, bits: usize) -> (Netlist, Vec<bool>) {
        xor_lock_cells(oracle, bits)
    }

    fn small_oracle() -> Netlist {
        shell_circuits_free_adder()
    }

    /// A 4-bit adder built inline (no dependency on shell-circuits to keep
    /// the crate graph lean).
    fn shell_circuits_free_adder() -> Netlist {
        let mut n = Netlist::new("oracle");
        let a: Vec<NetId> = (0..4).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<NetId> = (0..4).map(|i| n.add_input(format!("b{i}"))).collect();
        let mut carry = n.add_cell("c0", CellKind::Const(false), vec![]);
        for i in 0..4 {
            let p = n.add_cell(format!("p{i}"), CellKind::Xor, vec![a[i], b[i]]);
            let s = n.add_cell(format!("s{i}"), CellKind::Xor, vec![p, carry]);
            let g = n.add_cell(format!("g{i}"), CellKind::And, vec![a[i], b[i]]);
            let pc = n.add_cell(format!("pc{i}"), CellKind::And, vec![p, carry]);
            carry = n.add_cell(format!("c{}", i + 1), CellKind::Or, vec![g, pc]);
            n.add_output(format!("s{i}"), s);
        }
        n.add_output("cout", carry);
        n
    }

    #[test]
    fn breaks_xor_locking() {
        let oracle = small_oracle();
        let (locked, true_key) = xor_lock(&oracle, 6);
        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, iterations, .. } => {
                // The recovered key must be *functionally* correct; chained
                // inverted bits can cancel, so bit equality with true_key is
                // not required. The attack verified already; double-check.
                use shell_netlist::equiv::equiv_exhaustive;
                assert!(equiv_exhaustive(&oracle, &locked, &[], &key).is_equivalent());
                assert!(
                    equiv_exhaustive(&oracle, &locked, &[], &true_key).is_equivalent(),
                    "sanity: the planted key is correct too"
                );
                assert!(iterations <= 64);
            }
            other => panic!("expected break, got {other:?}"),
        }
    }

    #[test]
    fn both_modes_break_xor_locking_with_same_key() {
        // Output-XOR locking has a unique correct key, so any sound attack
        // must recover exactly it — the strongest cross-mode agreement
        // check available without pinning search internals.
        let oracle = small_oracle();
        let (locked, true_key) = xor_lock_outputs(&oracle, 5);
        for mode in [DipMode::Incremental, DipMode::Scratch] {
            let opts = SatAttackOptions {
                mode,
                ..Default::default()
            };
            match sat_attack(&locked, &oracle, &opts) {
                SatAttackOutcome::Broken { key, .. } => {
                    assert_eq!(key, true_key, "{} mode", mode.label());
                }
                other => panic!("{} mode: expected break, got {other:?}", mode.label()),
            }
        }
    }

    #[test]
    fn key_verification_detects_wrong_function() {
        // A "locked" design that is NOT the oracle under any key: the
        // attack must not claim Broken.
        let oracle = small_oracle();
        let mut locked = oracle.clone();
        let k = locked.add_key_input("k");
        // Corrupt one output irrecoverably: new_out0 = old_out0 XOR (a0 AND !k ... )
        let a0 = locked.inputs()[0];
        let nk = locked.add_cell("nk", CellKind::Not, vec![k]);
        let taint = locked.add_cell("taint", CellKind::And, vec![a0, nk]);
        let old = locked.outputs()[0].1;
        let bad = locked.add_cell("bad", CellKind::Xor, vec![old, taint, k]);
        // Replace output 0.
        let mut outs: Vec<(String, NetId)> = locked.outputs().to_vec();
        outs[0].1 = bad;
        let rebuilt = Netlist::new("locked_bad");
        // Rebuild quickly via clone trick: easier—construct fresh netlist by
        // copying locked and re-adding outputs is involved; instead assert on
        // the simpler property: attack on (locked-with-extra-output).
        let _ = outs;
        let _ = rebuilt;
        // Simpler scenario: oracle = AND, locked = OR with key XOR on output
        // (no key makes OR equal AND on all inputs).
        let mut oracle2 = Netlist::new("and");
        let x = oracle2.add_input("x");
        let y = oracle2.add_input("y");
        let f = oracle2.add_cell("f", CellKind::And, vec![x, y]);
        oracle2.add_output("f", f);
        let mut locked2 = Netlist::new("or_locked");
        let x2 = locked2.add_input("x");
        let y2 = locked2.add_input("y");
        let k2 = locked2.add_key_input("k");
        let g = locked2.add_cell("g", CellKind::Or, vec![x2, y2]);
        let f2 = locked2.add_cell("f", CellKind::Xor, vec![g, k2]);
        locked2.add_output("f", f2);
        let outcome = sat_attack(&locked2, &oracle2, &SatAttackOptions::default());
        assert!(
            !outcome.is_broken(),
            "no key makes OR⊕k equal AND: {outcome:?}"
        );
    }

    #[test]
    fn budget_exhaustion_reports_resilient() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 8);
        let opts = SatAttackOptions {
            max_iterations: 1,
            budget: Budget::unlimited().with_quota(1),
            ..Default::default()
        };
        let report = sat_attack_report(&locked, &oracle, &opts);
        assert!(matches!(report.outcome, SatAttackOutcome::Resilient { .. }));
        // Partial progress is reported, not silently dropped.
        assert!(report.stop.is_some() || report.dips_found >= 1);
    }

    #[test]
    fn cancellation_reports_resilient_with_reason() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 8);
        let budget = Budget::unlimited();
        budget.cancel();
        let opts = SatAttackOptions {
            budget,
            ..Default::default()
        };
        let report = sat_attack_report(&locked, &oracle, &opts);
        assert!(matches!(report.outcome, SatAttackOutcome::Resilient { .. }));
        assert_eq!(report.stop, Some(Exhausted::Cancelled));
    }

    #[test]
    fn checkpoint_json_round_trips() {
        let cp = AttackCheckpoint {
            design: "adder".to_string(),
            mode: DipMode::Incremental,
            iterations: 2,
            conflicts_spent: 17,
            dips: vec![
                (vec![true, false], vec![false]),
                (vec![false, false], vec![true]),
            ],
        };
        let parsed = AttackCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(parsed, cp);
        // Corrupt JSON is a typed error, not a panic.
        assert!(AttackCheckpoint::from_json(&Json::obj([("design", Json::Null)])).is_err());
    }

    #[test]
    fn checkpoint_without_mode_reads_as_scratch() {
        // Pre-incremental checkpoints carry no mode field; they were
        // recorded by the scratch driver and must keep resuming as such.
        let mut json = AttackCheckpoint {
            design: "adder".to_string(),
            mode: DipMode::Incremental,
            iterations: 0,
            conflicts_spent: 0,
            dips: Vec::new(),
        }
        .to_json();
        if let Json::Obj(fields) = &mut json {
            fields.retain(|(k, _)| k != "mode");
        }
        let parsed = AttackCheckpoint::from_json(&json).unwrap();
        assert_eq!(parsed.mode, DipMode::Scratch);
    }

    #[test]
    fn resumed_attack_recovers_identical_key_and_report() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 6);

        // Reference: one uninterrupted run.
        let full = sat_attack_report(&locked, &oracle, &SatAttackOptions::default());
        let full_iters = match &full.outcome {
            SatAttackOutcome::Broken { iterations, .. } => *iterations,
            other => panic!("expected break, got {other:?}"),
        };
        assert!(full_iters >= 2, "need a multi-iteration attack to interrupt");

        // Interrupted run: kill it partway via a conflict quota, with
        // checkpointing on.
        let dir = std::env::temp_dir().join(format!(
            "shell_attack_cp_{}_{}",
            std::process::id(),
            full.conflicts_spent
        ));
        let cp_path = dir.join("sat_attack.json");
        let mut quota = 1;
        let checkpoint = loop {
            let opts = SatAttackOptions {
                budget: Budget::unlimited().with_quota(quota),
                checkpoint_path: Some(cp_path.clone()),
                ..Default::default()
            };
            let partial = sat_attack_report(&locked, &oracle, &opts);
            if matches!(partial.outcome, SatAttackOutcome::Resilient { .. })
                && partial.dips_found >= 1
            {
                assert_eq!(partial.stop, Some(Exhausted::Quota));
                let cp = AttackCheckpoint::load(&cp_path).expect("checkpoint readable");
                // The interrupted report and its checkpoint agree on spend:
                // partial work of the broken-off iteration is in neither.
                assert_eq!(partial.conflicts_spent, cp.conflicts_spent);
                assert_eq!(partial.dips_found, cp.iterations);
                break cp;
            }
            if partial.outcome.is_broken() {
                // Quota grew past the whole attack before yielding a
                // mid-attack interrupt with at least one DIP; rare, but
                // then there is nothing to resume — re-derive with a
                // smaller design instead of looping forever.
                panic!("could not interrupt the attack mid-flight");
            }
            quota += 1;
        };
        assert!(checkpoint.iterations >= 1);
        assert!(checkpoint.iterations < full_iters);
        assert_eq!(checkpoint.mode, DipMode::Incremental);

        // Resume and compare: same key, same totals, byte-identical JSON.
        let resumed = sat_attack_report(
            &locked,
            &oracle,
            &SatAttackOptions {
                resume_from: Some(checkpoint.clone()),
                ..Default::default()
            },
        );
        assert_eq!(resumed.resumed_from, checkpoint.iterations);
        assert_eq!(
            resumed.to_json().to_string_pretty(),
            full.to_json().to_string_pretty(),
            "resumed report must be byte-identical to the uninterrupted one"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "recorded by a scratch run")]
    fn resume_refuses_mode_mismatch() {
        let oracle = small_oracle();
        let (locked, _) = xor_lock(&oracle, 2);
        let cp = AttackCheckpoint {
            design: locked.name().to_string(),
            mode: DipMode::Scratch,
            iterations: 0,
            conflicts_spent: 0,
            dips: Vec::new(),
        };
        let opts = SatAttackOptions {
            mode: DipMode::Incremental,
            resume_from: Some(cp),
            ..Default::default()
        };
        sat_attack_report(&locked, &oracle, &opts);
    }

    #[test]
    fn lut_locked_design_broken() {
        // Replace a gate with a keyed LUT (traditional LUT insertion,
        // Fig. 1a): SAT attack recovers the truth table.
        let mut oracle = Netlist::new("o");
        let a = oracle.add_input("a");
        let b = oracle.add_input("b");
        let c = oracle.add_input("c");
        let t = oracle.add_cell("t", CellKind::And, vec![a, b]);
        let f = oracle.add_cell("f", CellKind::Xor, vec![t, c]);
        oracle.add_output("f", f);

        // Locked: t is a 2-input "LUT" built from key bits via mux tree —
        // modeled directly as 4 key bits read by a LUT-of-keys structure.
        let mut locked = Netlist::new("l");
        let la = locked.add_input("a");
        let lb = locked.add_input("b");
        let lc = locked.add_input("c");
        let keys: Vec<NetId> = (0..4)
            .map(|i| locked.add_key_input(format!("k{i}")))
            .collect();
        // mux tree: sel (a,b) over keys.
        let m0 = locked.add_cell("m0", CellKind::Mux2, vec![la, keys[0], keys[1]]);
        let m1 = locked.add_cell("m1", CellKind::Mux2, vec![la, keys[2], keys[3]]);
        let t = locked.add_cell("t", CellKind::Mux2, vec![lb, m0, m1]);
        let f = locked.add_cell("f", CellKind::Xor, vec![t, lc]);
        locked.add_output("f", f);

        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, .. } => {
                // AND truth table in (a,b) order: k[a + 2b]; only (1,1) → 1.
                // m0 = a?k1:k0 at b=0; correct key: k0=0,k1=0,k2=0,k3=1.
                assert_eq!(key, vec![false, false, false, true]);
            }
            other => panic!("expected break, got {other:?}"),
        }
    }

    #[test]
    fn scan_frame_exposes_state() {
        let mut n = Netlist::new("seq");
        let d = n.add_input("d");
        let q = n.add_cell("ff", CellKind::Dff, vec![d]);
        let f = n.add_cell("f", CellKind::Xor, vec![q, d]);
        n.add_output("f", f);
        let frame = scan_frame(&n);
        assert!(frame.is_combinational());
        assert_eq!(frame.inputs().len(), 2); // d + scan_q0
        assert_eq!(frame.outputs().len(), 2); // f + scan_d0
        // frame: f = scan_q0 ^ d, scan_d0 = d.
        assert_eq!(frame.eval_comb(&[true, false]), vec![true, true]);
        assert_eq!(frame.eval_comb(&[true, true]), vec![false, true]);
    }

    #[test]
    fn scan_frame_combinational_passthrough() {
        let oracle = small_oracle();
        let frame = scan_frame(&oracle);
        assert_eq!(frame.inputs().len(), oracle.inputs().len());
        assert_eq!(frame.outputs().len(), oracle.outputs().len());
    }

    #[test]
    fn unrealized_data_pin_is_a_typed_error() {
        // A DFF whose data pin reads a net that nothing drives: the frame
        // cannot realize the scan output. This used to panic with
        // `expect("data pin realized")`.
        let mut n = Netlist::new("dangling");
        let d = n.add_input("d");
        let floating = n.add_net("floating");
        let q = n.add_cell("ff_bad", CellKind::Dff, vec![floating]);
        let q2 = n.add_cell("ff_ok", CellKind::Dff, vec![d]);
        let f = n.add_cell("f", CellKind::Xor, vec![q, q2]);
        n.add_output("f", f);
        match try_scan_frame(&n) {
            Err(ScanError::UnrealizedDataPin { cell }) => assert_eq!(cell, "ff_bad"),
            other => panic!("expected UnrealizedDataPin, got {other:?}"),
        }
    }

    #[test]
    fn scan_frame_panics_with_scan_error_message() {
        let mut n = Netlist::new("dangling");
        let floating = n.add_net("floating");
        let q = n.add_cell("ff_bad", CellKind::Dff, vec![floating]);
        n.add_output("q", q);
        let err = std::panic::catch_unwind(|| scan_frame(&n)).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("ff_bad"), "panic names the cell: {msg}");
    }

    #[test]
    fn xor_lock_outputs_plants_a_unique_key() {
        let oracle = small_oracle();
        let (locked, key) = xor_lock_outputs(&oracle, 3);
        assert_eq!(key, vec![false, true, false]);
        use shell_netlist::equiv::equiv_exhaustive;
        assert!(equiv_exhaustive(&oracle, &locked, &[], &key).is_equivalent());
        // Any single-bit flip breaks it — that is what "unique" means here.
        for i in 0..key.len() {
            let mut wrong = key.clone();
            wrong[i] = !wrong[i];
            assert!(
                !equiv_exhaustive(&oracle, &locked, &[], &wrong).is_equivalent(),
                "flipping key bit {i} must break equivalence"
            );
        }
    }

    #[test]
    fn sequential_lock_attacked_via_frames() {
        // Sequential locked circuit: q' = d ^ k; out = q. Scan frames make
        // the key observable in one frame.
        let mut oracle = Netlist::new("so");
        let d = oracle.add_input("d");
        let q = oracle.add_cell("ff", CellKind::Dff, vec![d]);
        oracle.add_output("q", q);
        let mut locked = Netlist::new("sl");
        let ld = locked.add_input("d");
        let k = locked.add_key_input("k");
        let dx = locked.add_cell("dx", CellKind::Xor, vec![ld, k]);
        let dx2 = locked.add_cell("dx2", CellKind::Xor, vec![dx, k]);
        let lq = locked.add_cell("ff", CellKind::Dff, vec![dx2]);
        locked.add_output("q", lq);
        // dx2 = d ^ k ^ k = d: every key works; attack must find *a* key.
        let of = scan_frame(&oracle);
        let lf = scan_frame(&locked);
        let outcome = sat_attack(&lf, &of, &SatAttackOptions::default());
        assert!(outcome.is_broken(), "{outcome:?}");
    }

    #[test]
    fn keyed_lut_mask_recovered() {
        // LUT cell whose mask is correct only for one key assignment via
        // LutMask-encoded locked structure exercise.
        let mut oracle = Netlist::new("o");
        let a = oracle.add_input("a");
        let b = oracle.add_input("b");
        let f = oracle.add_cell("f", CellKind::Lut(LutMask::new(0b0110, 2)), vec![a, b]);
        oracle.add_output("f", f);
        let (locked, true_key) = xor_lock(&oracle, 1);
        let outcome = sat_attack(&locked, &oracle, &SatAttackOptions::default());
        match outcome {
            SatAttackOutcome::Broken { key, .. } => assert_eq!(key, true_key),
            other => panic!("{other:?}"),
        }
    }
}
