//! The removal attack: replace the whole redacted fabric with a guess.
//!
//! §IV motivates twisting minimal LGC into the redacted ROUTE precisely to
//! defeat this adversary: if the eFPGA only hides a standard AXI crossbar,
//! "the adversary can replace the whole eFPGA with an AXI-based simple
//! Xbar". This module implements that adversary: given the oracle and a
//! candidate reconstruction (locked region replaced by the guess), it
//! checks functional equivalence and reports whether the removal attack
//! succeeds.

use shell_netlist::equiv::{
    equiv_exhaustive, equiv_random, equiv_sequential_random, EquivResult,
};
use shell_netlist::Netlist;

/// Result of a removal attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemovalOutcome {
    /// The guessed replacement reproduces the oracle — redaction defeated.
    Succeeded,
    /// The guess diverges from the oracle on a concrete input.
    Failed {
        /// A distinguishing primary-input assignment.
        counterexample: Vec<bool>,
    },
    /// The candidate is not even shape-compatible with the oracle.
    Incompatible(String),
}

impl RemovalOutcome {
    /// `true` when the attack worked.
    pub fn succeeded(&self) -> bool {
        matches!(self, RemovalOutcome::Succeeded)
    }
}

/// Tests whether `candidate` (the design with the redacted region replaced
/// by the attacker's guess, no key inputs) matches `oracle`.
///
/// Uses exhaustive comparison up to 12 inputs, Monte-Carlo (`vectors`
/// patterns) beyond; sequential designs are compared by lockstep random
/// simulation from reset.
///
/// # Panics
///
/// Panics if `candidate` still has key inputs (a removal attack by
/// definition produces an unkeyed netlist).
pub fn removal_attack(oracle: &Netlist, candidate: &Netlist, vectors: usize) -> RemovalOutcome {
    assert!(
        candidate.key_inputs().is_empty(),
        "removal attack yields an unkeyed candidate"
    );
    let outcome = if !oracle.is_combinational() || !candidate.is_combinational() {
        equiv_sequential_random(oracle, candidate, &[], &[], vectors.max(16), 0xBEEF)
    } else if oracle.inputs().len() <= 12 {
        equiv_exhaustive(oracle, candidate, &[], &[])
    } else {
        equiv_random(oracle, candidate, &[], &[], vectors, 0xBEEF)
    };
    match outcome {
        EquivResult::Equivalent => RemovalOutcome::Succeeded,
        EquivResult::Counterexample { inputs, .. } => RemovalOutcome::Failed {
            counterexample: inputs,
        },
        EquivResult::Incomparable(why) => RemovalOutcome::Incompatible(why),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shell_netlist::{CellKind, NetId, Netlist};

    fn xbar_like(extra_logic: bool) -> Netlist {
        // out = sel ? b : a, optionally with a "twisted" LGC term.
        let mut n = Netlist::new(if extra_logic { "twisted" } else { "plain" });
        let sel = n.add_input("sel");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let m = n.add_cell("m", CellKind::Mux2, vec![sel, a, b]);
        let out = if extra_logic {
            // SheLL-style: neighbor LGC folded into the redacted region.
            let t = n.add_cell("t", CellKind::Xor, vec![m, sel]);
            t
        } else {
            m
        };
        n.add_output("o", out);
        n
    }

    #[test]
    fn plain_xbar_guess_succeeds_against_route_only_redaction() {
        // Oracle is a plain mux; attacker guesses a plain mux: success.
        let oracle = xbar_like(false);
        let guess = xbar_like(false);
        assert!(removal_attack(&oracle, &guess, 64).succeeded());
    }

    #[test]
    fn twisted_lgc_defeats_plain_guess() {
        // Oracle has the neighbor LGC twisted in; the plain-Xbar guess now
        // fails with a counterexample — the SheLL defense in action.
        let oracle = xbar_like(true);
        let guess = xbar_like(false);
        match removal_attack(&oracle, &guess, 64) {
            RemovalOutcome::Failed { counterexample } => {
                let o = oracle.eval_comb(&counterexample);
                let g = guess.eval_comb(&counterexample);
                assert_ne!(o, g, "counterexample must distinguish");
            }
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatch_reported() {
        let oracle = xbar_like(false);
        let mut tiny = Netlist::new("tiny");
        let a = tiny.add_input("a");
        let f = tiny.add_cell("f", CellKind::Buf, vec![a]);
        tiny.add_output("f", f);
        assert!(matches!(
            removal_attack(&oracle, &tiny, 16),
            RemovalOutcome::Incompatible(_)
        ));
    }

    #[test]
    fn sequential_candidates_compared_by_simulation() {
        let mk = |name: &str, invert: bool| -> Netlist {
            let mut n = Netlist::new(name);
            let d = n.add_input("d");
            let src: NetId = if invert {
                n.add_cell("inv", CellKind::Not, vec![d])
            } else {
                d
            };
            let q = n.add_cell("ff", CellKind::Dff, vec![src]);
            n.add_output("q", q);
            n
        };
        assert!(removal_attack(&mk("a", false), &mk("b", false), 32).succeeded());
        assert!(!removal_attack(&mk("a", false), &mk("b", true), 32).succeeded());
    }

    #[test]
    #[should_panic(expected = "unkeyed")]
    fn keyed_candidate_rejected() {
        let oracle = xbar_like(false);
        let mut keyed = xbar_like(false);
        keyed.add_key_input("k");
        removal_attack(&oracle, &keyed, 8);
    }
}
