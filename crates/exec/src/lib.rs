//! `shell-exec` — zero-dependency scoped parallelism for the SheLL workspace.
//!
//! The hermetic-build rule forbids `rayon`; this crate supplies the slice of
//! it the workspace needs, on nothing but `std::thread`:
//!
//! * [`parallel_map`] / [`parallel_map_grain`] — map a slice through a pure
//!   function on a scoped work-stealing pool, with **index-ordered
//!   deterministic reduction**: results are merged in input order, so the
//!   output `Vec` is byte-identical to `items.iter().map(f).collect()`
//!   regardless of the worker count or the interleaving of the steals.
//! * [`parallel_for_chunks`] — run a closure over disjoint mutable chunks of
//!   a slice, each chunk visited exactly once.
//! * [`join`] — run two closures, potentially on two threads, and return
//!   both results.
//!
//! The worker count resolves through [`current_jobs`]: an in-process
//! override ([`set_jobs_override`] / [`with_jobs`], used by tests and the
//! bench harnesses) wins over the `SHELL_JOBS` environment variable, which
//! wins over [`std::thread::available_parallelism`]. At `jobs = 1` every
//! entry point degrades to a plain sequential loop on the calling thread —
//! no threads are spawned at all — which is both the reproducibility story
//! (CI pins `SHELL_JOBS=1`) and the proof obligation: parallel output must
//! equal that sequential fallback bit for bit.
//!
//! A panic on any worker is captured, the pool drains, and the first panic
//! payload is re-raised on the calling thread, so `parallel_map(f)` panics
//! exactly when `map(f)` would.
//!
//! Determinism is the contract of the whole workspace (every artifact is a
//! pure function of its seed); callers must therefore pass **pure**
//! closures. The *evaluation order* across workers is unspecified — only
//! the merged result order is.
//!
//! # Example
//!
//! ```
//! let items: Vec<u64> = (0..100).collect();
//! let squares = shell_exec::parallel_map(&items, |&x| x * x);
//!
//! // The deterministic-merge contract: whatever the worker count, the
//! // result equals the sequential map, element for element.
//! let sequential = shell_exec::with_jobs(1, || {
//!     shell_exec::parallel_map(&items, |&x| x * x)
//! });
//! assert_eq!(squares, sequential);
//! assert_eq!(squares[7], 49);
//! ```

#![warn(missing_docs)]

mod jobs;
mod pool;

pub use jobs::{current_jobs, set_jobs_override, with_jobs};
pub use pool::{join, parallel_for_chunks, parallel_map, parallel_map_grain};
