//! The scoped work-stealing runner.
//!
//! Work is the index range `0..n`, pre-split into grain-sized tasks dealt
//! round-robin onto per-worker deques. A worker pops its own deque LIFO
//! (cache-warm, most recently dealt task first) and, when empty, steals
//! FIFO from the other deques in a fixed scan order — the classic
//! work-stealing discipline, here with mutex-guarded `VecDeque`s instead of
//! lock-free Chase-Lev deques (task grains are coarse enough that the lock
//! is noise).
//!
//! Each finished task yields `(start, results)`; after the scope joins, the
//! pieces are sorted by `start` and concatenated. That index-ordered merge
//! is what makes the parallel output identical to the sequential one no
//! matter how the steals interleave.

use crate::jobs::current_jobs;
use std::any::Any;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps every element of `items` through `f` on the work-stealing pool and
/// returns the results **in input order**.
///
/// For a pure `f` the result equals `items.iter().map(f).collect()` exactly;
/// at `jobs = 1` (or for small inputs) that sequential loop is literally
/// what runs, on the calling thread.
///
/// # Panics
///
/// Re-raises the first panic any invocation of `f` produced.
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_grain(items, 1, f)
}

/// Like [`parallel_map`], but tasks hold at least `min_grain` elements —
/// the knob for kernels whose per-element cost is too small to pay a task's
/// bookkeeping (e.g. per-node cut enumeration).
///
/// # Panics
///
/// Re-raises the first panic any invocation of `f` produced.
pub fn parallel_map_grain<T, U, F>(items: &[T], min_grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let jobs = current_jobs();
    let grain = auto_grain(n, jobs, min_grain);
    if jobs <= 1 || n <= grain {
        return items.iter().map(f).collect();
    }
    run_ranges(n, jobs, grain, &|range: Range<usize>| {
        items[range].iter().map(&f).collect()
    })
}

/// Visits disjoint `grain`-sized mutable chunks of `items` in parallel,
/// each exactly once. `f` receives the chunk's start index in `items` and
/// the chunk itself. Unlike [`parallel_map`] there is no result to merge,
/// so chunks complete in arbitrary order — the slice contents afterwards
/// are still deterministic for a pure-per-chunk `f` because chunks never
/// overlap.
///
/// # Panics
///
/// Panics when `grain` is 0; re-raises the first panic `f` produced.
pub fn parallel_for_chunks<T, F>(items: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(grain > 0, "chunk grain must be positive");
    let n = items.len();
    let jobs = current_jobs().min(n.div_ceil(grain)).max(1);
    if jobs <= 1 {
        for (ci, chunk) in items.chunks_mut(grain).enumerate() {
            f(ci * grain, chunk);
        }
        return;
    }
    // A single shared stack of chunks: &mut chunks are not splittable the
    // way index ranges are, so the deque dance buys nothing here.
    let queue: Mutex<Vec<(usize, &mut [T])>> = Mutex::new(
        items
            .chunks_mut(grain)
            .enumerate()
            .map(|(ci, chunk)| (ci * grain, chunk))
            .collect(),
    );
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..jobs {
            let queue = &queue;
            let panic_slot = &panic_slot;
            s.spawn(move || loop {
                if panic_slot.lock().unwrap().is_some() {
                    break;
                }
                let Some((start, chunk)) = queue.lock().unwrap().pop() else {
                    break;
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(start, chunk))) {
                    let mut slot = panic_slot.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    break;
                }
            });
        }
    });
    if let Some(payload) = panic_slot.into_inner().unwrap() {
        resume_unwind(payload);
    }
}

/// Runs `fa` and `fb`, on two threads when more than one worker is
/// available, and returns `(fa(), fb())`. `fb` always runs on the calling
/// thread.
///
/// # Panics
///
/// Re-raises a panic from either closure (`fa`'s first when both panic).
pub fn join<A, B, FA, FB>(fa: FA, fb: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B,
{
    if current_jobs() <= 1 {
        return (fa(), fb());
    }
    std::thread::scope(|s| {
        let ha = s.spawn(fa);
        let b = catch_unwind(AssertUnwindSafe(fb));
        match (ha.join(), b) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(payload), _) => resume_unwind(payload),
            (_, Err(payload)) => resume_unwind(payload),
        }
    })
}

/// Task size: aim for ~4 tasks per worker so steals have something to take
/// without shredding the input into per-element tasks.
fn auto_grain(n: usize, jobs: usize, min_grain: usize) -> usize {
    (n / (jobs.max(1) * 4)).max(min_grain).max(1)
}

/// The work-stealing core: applies `work` to grain-sized sub-ranges of
/// `0..n` on `jobs` scoped workers and merges the pieces in index order.
fn run_ranges<U: Send>(
    n: usize,
    jobs: usize,
    grain: usize,
    work: &(dyn Fn(Range<usize>) -> Vec<U> + Sync),
) -> Vec<U> {
    let workers = jobs.min(n.div_ceil(grain)).max(1);
    if workers == 1 {
        return work(0..n);
    }
    // Deal grain-sized tasks round-robin so every deque starts non-empty.
    let deques: Vec<Mutex<VecDeque<Range<usize>>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    {
        let mut start = 0usize;
        let mut next = 0usize;
        while start < n {
            let end = (start + grain).min(n);
            deques[next % workers].lock().unwrap().push_back(start..end);
            start = end;
            next += 1;
        }
    }
    let remaining = AtomicUsize::new(n);
    let poisoned = AtomicBool::new(false);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let mut pieces: Vec<(usize, Vec<U>)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for me in 0..workers {
            let deques = &deques;
            let remaining = &remaining;
            let poisoned = &poisoned;
            let panic_slot = &panic_slot;
            handles.push(s.spawn(move || {
                let mut local: Vec<(usize, Vec<U>)> = Vec::new();
                // Spin until every element is accounted for: a worker that
                // finds all deques empty may only exit once the in-flight
                // tasks of other workers have finished (or failed).
                while remaining.load(Ordering::Acquire) > 0
                    && !poisoned.load(Ordering::Acquire)
                {
                    let Some(range) = pop_or_steal(deques, me) else {
                        std::thread::yield_now();
                        continue;
                    };
                    let (start, len) = (range.start, range.len());
                    match catch_unwind(AssertUnwindSafe(|| work(range))) {
                        Ok(piece) => {
                            debug_assert_eq!(piece.len(), len);
                            local.push((start, piece));
                            remaining.fetch_sub(len, Ordering::AcqRel);
                        }
                        Err(payload) => {
                            let mut slot = panic_slot.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            poisoned.store(true, Ordering::Release);
                            break;
                        }
                    }
                }
                local
            }));
        }
        for handle in handles {
            // Workers catch their own panics; join can only fail if the
            // panic machinery itself panicked — surface that too.
            match handle.join() {
                Ok(local) => pieces.extend(local),
                Err(payload) => {
                    let mut slot = panic_slot.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                }
            }
        }
    });
    if let Some(payload) = panic_slot.into_inner().unwrap() {
        resume_unwind(payload);
    }
    // Index-ordered merge: tasks are disjoint contiguous ranges, so sorting
    // by start and concatenating reproduces the sequential output exactly.
    pieces.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (_, mut piece) in pieces {
        out.append(&mut piece);
    }
    assert_eq!(out.len(), n, "every input element produced one output");
    out
}

/// Own deque LIFO first, then steal FIFO from victims in scan order.
fn pop_or_steal(
    deques: &[Mutex<VecDeque<Range<usize>>>],
    me: usize,
) -> Option<Range<usize>> {
    if let Some(range) = deques[me].lock().unwrap().pop_back() {
        return Some(range);
    }
    for offset in 1..deques.len() {
        let victim = (me + offset) % deques.len();
        if let Some(range) = deques[victim].lock().unwrap().pop_front() {
            return Some(range);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::with_jobs;
    use shell_util::forall;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_matches_sequential_for_random_inputs() {
        // The subsystem's core contract, as a property: for random sizes
        // (including 0 and 1), grains and worker counts, parallel_map equals
        // the sequential map element for element.
        forall(
            "parallel_map == sequential map",
            0x5EED_E8EC,
            48,
            |rng| {
                let len = rng.gen_range(0..200);
                let items: Vec<u64> = (0..len).map(|_| rng.next_u64() >> 32).collect();
                let jobs = rng.gen_range(1..9) as u64;
                let grain = rng.gen_range(1..8) as u64;
                (items, jobs, grain)
            },
            |(items, jobs, grain)| {
                let f = |&x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(7) ^ 0xA5;
                let expect: Vec<u64> = items.iter().map(f).collect();
                let got = with_jobs(*jobs as usize, || {
                    parallel_map_grain(items, *grain as usize, f)
                });
                if got == expect {
                    Ok(())
                } else {
                    Err(format!("mismatch at jobs={jobs} grain={grain}"))
                }
            },
        );
    }

    #[test]
    fn empty_and_single_element() {
        for jobs in [1, 2, 8] {
            with_jobs(jobs, || {
                let empty: Vec<u32> = parallel_map(&[] as &[u32], |&x| x + 1);
                assert!(empty.is_empty());
                assert_eq!(parallel_map(&[41u32], |&x| x + 1), vec![42]);
            });
        }
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_jobs(4, || {
                let items: Vec<usize> = (0..64).collect();
                parallel_map(&items, |&i| {
                    if i == 37 {
                        panic!("task 37 exploded");
                    }
                    i
                })
            })
        })
        .expect_err("panic must cross the pool");
        let msg = caught
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| caught.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task 37"), "payload preserved: {msg}");
    }

    #[test]
    fn sequential_fallback_panic_propagates_too() {
        let caught = std::panic::catch_unwind(|| {
            with_jobs(1, || parallel_map(&[1u8], |_| -> u8 { panic!("seq") }))
        });
        assert!(caught.is_err());
    }

    #[test]
    fn nested_scopes_compose() {
        // A parallel_map whose tasks themselves call parallel_map — the
        // router does exactly this shape (map over nets, each consulting
        // shared read-only state). Inner pools just spawn their own scoped
        // workers; nothing deadlocks because no pool is global.
        let outer: Vec<usize> = (0..8).collect();
        let got = with_jobs(3, || {
            parallel_map(&outer, |&o| {
                let inner: Vec<usize> = (0..o + 1).collect();
                parallel_map(&inner, |&i| i * i).iter().sum::<usize>()
            })
        });
        let expect: Vec<usize> = outer
            .iter()
            .map(|&o| (0..o + 1).map(|i| i * i).sum())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn oversubscription_stress() {
        // Far more tasks than workers, tiny grain, workers outnumbering
        // cores: the steal/yield loop must neither lose nor duplicate work.
        let items: Vec<u64> = (0..10_000).collect();
        let calls = AtomicU64::new(0);
        let got = with_jobs(16, || {
            parallel_map(&items, |&x| {
                calls.fetch_add(1, Ordering::Relaxed);
                x * 3 + 1
            })
        });
        assert_eq!(calls.load(Ordering::Relaxed), 10_000, "each element once");
        assert_eq!(got.len(), 10_000);
        for (i, &v) in got.iter().enumerate() {
            assert_eq!(v, i as u64 * 3 + 1);
        }
    }

    #[test]
    fn for_chunks_visits_each_chunk_once() {
        for jobs in [1, 4] {
            with_jobs(jobs, || {
                let mut data = vec![0u32; 103];
                parallel_for_chunks(&mut data, 10, |start, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (start + i) as u32;
                    }
                });
                for (i, &v) in data.iter().enumerate() {
                    assert_eq!(v, i as u32, "jobs={jobs}");
                }
            });
        }
    }

    #[test]
    fn for_chunks_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            with_jobs(4, || {
                let mut data = vec![0u8; 40];
                parallel_for_chunks(&mut data, 4, |start, _| {
                    if start == 20 {
                        panic!("chunk at 20");
                    }
                });
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    #[should_panic(expected = "grain must be positive")]
    fn for_chunks_rejects_zero_grain() {
        parallel_for_chunks(&mut [0u8; 4], 0, |_, _| {});
    }

    #[test]
    fn join_returns_both_and_propagates_panics() {
        for jobs in [1, 2] {
            with_jobs(jobs, || {
                let (a, b) = join(|| 6 * 7, || "ok");
                assert_eq!((a, b), (42, "ok"));
            });
        }
        let caught = std::panic::catch_unwind(|| {
            with_jobs(2, || join(|| panic!("left"), || 1))
        });
        assert!(caught.is_err());
    }

    #[test]
    fn auto_grain_bounds() {
        assert_eq!(auto_grain(0, 4, 1), 1);
        assert_eq!(auto_grain(100, 4, 1), 6); // ~4 tasks per worker
        assert_eq!(auto_grain(100, 4, 16), 16); // floor wins
        assert_eq!(auto_grain(3, 8, 1), 1);
    }
}
