//! Worker-count resolution: override > `SHELL_JOBS` > available cores.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override; 0 means "unset".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The worker count the pool entry points will use *right now*.
///
/// Resolution order:
/// 1. the in-process override ([`set_jobs_override`] / [`with_jobs`]),
/// 2. the `SHELL_JOBS` environment variable (a positive integer; anything
///    else is ignored),
/// 3. [`std::thread::available_parallelism`], falling back to 1 when the
///    platform cannot report it.
pub fn current_jobs() -> usize {
    match JOBS_OVERRIDE.load(Ordering::Acquire) {
        0 => env_or_available(),
        n => n,
    }
}

fn env_or_available() -> usize {
    if let Ok(v) = std::env::var("SHELL_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Sets (`Some(n)`, clamped to ≥ 1) or clears (`None`) the process-wide
/// worker-count override. The override outranks `SHELL_JOBS`.
///
/// Intended for harnesses and tests; concurrent callers race on a single
/// global, which is harmless for correctness (results are identical at any
/// worker count) but makes timing comparisons meaningless — serialize
/// benchmark runs.
pub fn set_jobs_override(jobs: Option<usize>) {
    JOBS_OVERRIDE.store(jobs.map_or(0, |n| n.max(1)), Ordering::Release);
}

/// Runs `f` with the worker count pinned to `jobs`, restoring the previous
/// override afterwards (also on panic).
///
/// This is how the determinism tests sweep `jobs = 1, 2, 8` inside one
/// process, and how `bench_exec` times sequential vs parallel medians
/// without re-spawning itself.
pub fn with_jobs<R>(jobs: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.store(self.0, Ordering::Release);
        }
    }
    let prev = JOBS_OVERRIDE.swap(jobs.max(1), Ordering::AcqRel);
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns all override scenarios: the override is process-global
    // and cargo runs #[test] functions concurrently.
    #[test]
    fn override_and_restore() {
        let ambient = current_jobs();
        assert!(ambient >= 1);

        let inside = with_jobs(3, current_jobs);
        assert_eq!(inside, 3);
        assert_eq!(current_jobs(), ambient, "override restored");

        // Nested overrides restore in LIFO order.
        let (outer, inner) = with_jobs(2, || {
            let inner = with_jobs(5, current_jobs);
            (current_jobs(), inner)
        });
        assert_eq!(outer, 2);
        assert_eq!(inner, 5);

        // Restored even when the closure panics.
        let caught = std::panic::catch_unwind(|| with_jobs(7, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(current_jobs(), ambient);

        // Zero clamps to one (sequential), never to "unset".
        assert_eq!(with_jobs(0, current_jobs), 1);
    }
}
