//! `shell-guard` — resource governance for every long-running engine.
//!
//! The repo's security argument (SheLL §5) is a *time* argument: the
//! defender finishes PnR while the attacker's SAT loop blows its budget.
//! Yet nothing in the flow modelled a budget until this crate: the solver
//! had an ad-hoc conflict cap, the router and SA placer ran open-loop, and
//! cancellation did not exist. [`Budget`] fixes that with one shared token:
//!
//! * a **step quota** (conflicts, moves, iterations — whatever the engine
//!   counts), decremented with [`Budget::spend`];
//! * an optional **wall-clock deadline**, polled lazily so the fast path
//!   stays a couple of atomic ops;
//! * a **cooperative cancellation flag**, set from any thread with
//!   [`Budget::cancel`].
//!
//! Engines call [`Budget::checkpoint`] in their inner loop and surface
//! [`Exhausted`] instead of looping forever. Clones share state: handing a
//! clone to a worker and cancelling the original stops the worker too.
//!
//! Determinism contract: quota and cancellation are exact (same spend
//! sequence ⇒ same exhaustion point at any `SHELL_JOBS`). Deadlines are
//! inherently wall-clock and therefore non-deterministic; anything that
//! must produce byte-identical reports (tests, fuzz campaigns) uses quota
//! or cancellation, never a deadline.
//!
//! # Example
//!
//! ```
//! use shell_guard::{Budget, Exhausted};
//!
//! let budget = Budget::unlimited().with_quota(2);
//! assert_eq!(budget.spend(1), Ok(()));
//! assert_eq!(budget.spend(1), Ok(()));
//! // The third step exceeds the quota — an engine returns this upward
//! // instead of looping forever.
//! assert_eq!(budget.spend(1), Err(Exhausted::Quota));
//!
//! // Cancellation reaches every clone of the token.
//! let worker = Budget::unlimited();
//! let handle = worker.clone();
//! handle.cancel();
//! assert_eq!(worker.checkpoint(), Err(Exhausted::Cancelled));
//! ```

#![warn(missing_docs)]

pub mod budget;

pub use budget::{Budget, Exhausted};
