//! The [`Budget`] token and its [`Exhausted`] verdict.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a guarded engine stopped early.
///
/// Ordered by how deterministic the stop is: [`Exhausted::Quota`] and
/// [`Exhausted::Cancelled`] are exact and reproducible, while
/// [`Exhausted::Deadline`] depends on the wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exhausted {
    /// The wall-clock deadline passed.
    Deadline,
    /// The step/conflict quota ran out.
    Quota,
    /// [`Budget::cancel`] was called (by any holder of a clone).
    Cancelled,
}

impl Exhausted {
    /// Stable machine-readable label, used in checkpoint/report JSON.
    pub fn label(self) -> &'static str {
        match self {
            Exhausted::Deadline => "deadline",
            Exhausted::Quota => "quota",
            Exhausted::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`Exhausted::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "deadline" => Some(Exhausted::Deadline),
            "quota" => Some(Exhausted::Quota),
            "cancelled" => Some(Exhausted::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for Exhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exhausted::Deadline => write!(f, "wall-clock deadline exceeded"),
            Exhausted::Quota => write!(f, "step quota exhausted"),
            Exhausted::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Sentinel quota meaning "no limit".
const UNLIMITED: u64 = u64::MAX;

/// How many [`Budget::checkpoint`] calls between wall-clock polls.
/// `Instant::now` costs a syscall on some platforms; amortizing it keeps a
/// checkpoint at two relaxed atomic loads on the fast path.
const DEADLINE_POLL_INTERVAL: u64 = 64;

struct Inner {
    /// Quota remaining; `UNLIMITED` disables the check.
    quota: AtomicU64,
    /// Quota the budget was armed with (for [`Budget::spent`] / [`Budget::fresh`]).
    initial_quota: u64,
    /// Absolute deadline, armed at construction.
    deadline: Option<Instant>,
    /// Deadline duration as given (so [`Budget::fresh`] can re-arm it).
    deadline_duration: Option<Duration>,
    /// Set by [`Budget::cancel`].
    cancelled: AtomicBool,
    /// Latched once the deadline is observed expired, so later checkpoints
    /// skip the clock entirely.
    expired: AtomicBool,
    /// Checkpoint counter driving the lazy deadline poll.
    polls: AtomicU64,
}

/// A shared, cheap resource-governance token.
///
/// Clones share state ([`Arc`] inside): spend and cancellation are visible
/// to every holder. The intended pattern is one budget per user request,
/// cloned into each engine the request fans out to.
///
/// ```
/// use shell_guard::{Budget, Exhausted};
/// let b = Budget::unlimited().with_quota(2);
/// assert!(b.spend(1).is_ok());
/// assert!(b.spend(1).is_ok());
/// assert_eq!(b.spend(1), Err(Exhausted::Quota));
/// assert_eq!(b.checkpoint(), Err(Exhausted::Quota));
/// ```
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("quota", &self.remaining_quota())
            .field("deadline", &self.inner.deadline_duration)
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    fn build(quota: u64, deadline_duration: Option<Duration>) -> Self {
        Budget {
            inner: Arc::new(Inner {
                quota: AtomicU64::new(quota),
                initial_quota: quota,
                deadline: deadline_duration.map(|d| Instant::now() + d),
                deadline_duration,
                cancelled: AtomicBool::new(false),
                expired: AtomicBool::new(false),
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// A budget that never exhausts (until [`Budget::cancel`]).
    pub fn unlimited() -> Self {
        Budget::build(UNLIMITED, None)
    }

    /// Replaces the step quota, keeping the deadline. Builder-style; the
    /// returned budget shares nothing with `self`.
    pub fn with_quota(&self, quota: u64) -> Self {
        Budget::build(quota, self.inner.deadline_duration)
    }

    /// Replaces the wall-clock deadline (re-armed from *now*), keeping the
    /// quota. Builder-style; the returned budget shares nothing with `self`.
    pub fn with_deadline(&self, deadline: Duration) -> Self {
        Budget::build(self.inner.initial_quota, Some(deadline))
    }

    /// Environment-driven budget: honors `SHELL_DEADLINE_MS` (wall-clock
    /// milliseconds for the whole run) when set and parseable; otherwise
    /// unlimited. Engines that want a quota layer it on with
    /// [`Budget::with_quota`].
    pub fn from_env() -> Self {
        match std::env::var("SHELL_DEADLINE_MS") {
            Ok(v) => match v.trim().parse::<u64>() {
                Ok(ms) => Budget::unlimited().with_deadline(Duration::from_millis(ms)),
                Err(_) => Budget::unlimited(),
            },
            Err(_) => Budget::unlimited(),
        }
    }

    /// Builds the budget for one service request: the client may ask for a
    /// wall-clock deadline and/or a step (conflict) quota, and the server
    /// clamps both against its configured maxima so no single request can
    /// monopolize the worker pool.
    ///
    /// Clamping rules, per axis (deadline and quota independently):
    /// * request and maximum set → `min(request, maximum)`;
    /// * only the request set → the request;
    /// * only the maximum set → the maximum (a configured cap is a default,
    ///   not merely a ceiling — an unbounded request must not dodge it);
    /// * neither → unlimited on that axis.
    ///
    /// ```
    /// use shell_guard::Budget;
    /// let b = Budget::for_request(Some(10_000), Some(500), Some(2_000), None);
    /// assert_eq!(b.remaining_quota(), Some(500)); // quota uncapped
    /// // deadline was clamped from 10s to the 2s server maximum
    /// ```
    pub fn for_request(
        deadline_ms: Option<u64>,
        quota: Option<u64>,
        max_deadline_ms: Option<u64>,
        max_quota: Option<u64>,
    ) -> Self {
        let clamp = |req: Option<u64>, max: Option<u64>| match (req, max) {
            (Some(r), Some(m)) => Some(r.min(m)),
            (Some(r), None) => Some(r),
            (None, Some(m)) => Some(m),
            (None, None) => None,
        };
        let quota = clamp(quota, max_quota).unwrap_or(UNLIMITED);
        let deadline = clamp(deadline_ms, max_deadline_ms).map(Duration::from_millis);
        Budget::build(quota, deadline)
    }

    /// [`Budget::for_request`] with the maxima taken from the environment:
    /// `SHELL_SERVE_MAX_DEADLINE_MS` and `SHELL_SERVE_MAX_CONFLICTS`
    /// (unparsable values read as unset). This is the shell-serve per-job
    /// entry point, the service-side sibling of [`Budget::from_env`].
    pub fn from_request_env(deadline_ms: Option<u64>, quota: Option<u64>) -> Self {
        let env_u64 = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        Budget::for_request(
            deadline_ms,
            quota,
            env_u64("SHELL_SERVE_MAX_DEADLINE_MS"),
            env_u64("SHELL_SERVE_MAX_CONFLICTS"),
        )
    }

    /// A new budget armed like this one was at construction: full quota,
    /// deadline re-armed from now, not cancelled. Used where an inner stage
    /// (e.g. key extraction after a resumed attack) must behave identically
    /// regardless of how much the outer loop already spent.
    pub fn fresh(&self) -> Self {
        Budget::build(self.inner.initial_quota, self.inner.deadline_duration)
    }

    /// A new budget armed like this one at construction but with `spent`
    /// steps already consumed from the quota (unlimited stays unlimited;
    /// the deadline re-arms from now; not cancelled).
    ///
    /// This is the resume arithmetic for long-running engines: a run resumed
    /// from a checkpoint that recorded `spent` steps continues under
    /// `budget.with_spent(spent)` and exhausts at exactly the same total
    /// step count as the uninterrupted run would have. [`Budget::spent`] on
    /// the new budget starts at `spent`, and [`Budget::fresh`] still
    /// re-arms to the *full* original quota — inner stages (e.g. key
    /// extraction) stay resume-invariant.
    pub fn with_spent(&self, spent: u64) -> Self {
        let initial = self.inner.initial_quota;
        let quota = if initial == UNLIMITED {
            UNLIMITED
        } else {
            initial.saturating_sub(spent)
        };
        Budget {
            inner: Arc::new(Inner {
                quota: AtomicU64::new(quota),
                initial_quota: initial,
                deadline: self.inner.deadline_duration.map(|d| Instant::now() + d),
                deadline_duration: self.inner.deadline_duration,
                cancelled: AtomicBool::new(false),
                expired: AtomicBool::new(false),
                polls: AtomicU64::new(0),
            }),
        }
    }

    /// Requests cooperative cancellation. Every holder of a clone observes
    /// it at its next [`Budget::checkpoint`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether [`Budget::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// Steps remaining, or `None` when unlimited.
    pub fn remaining_quota(&self) -> Option<u64> {
        match self.inner.quota.load(Ordering::Relaxed) {
            UNLIMITED => None,
            q => Some(q),
        }
    }

    /// Steps spent so far (0 when unlimited).
    pub fn spent(&self) -> u64 {
        match self.inner.quota.load(Ordering::Relaxed) {
            UNLIMITED => 0,
            q => self.inner.initial_quota - q,
        }
    }

    /// Consumes `n` quota steps. Fails with [`Exhausted::Quota`] when fewer
    /// than `n` remain (draining what is left, so later checkpoints agree),
    /// and reports cancellation/deadline like [`Budget::checkpoint`].
    pub fn spend(&self, n: u64) -> Result<(), Exhausted> {
        self.checkpoint()?;
        if self.inner.quota.load(Ordering::Relaxed) == UNLIMITED {
            return Ok(());
        }
        let res = self
            .inner
            .quota
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |q| {
                if q == UNLIMITED {
                    None
                } else {
                    Some(q.saturating_sub(n))
                }
            });
        match res {
            Ok(prev) if prev >= n => Ok(()),
            _ => Err(Exhausted::Quota),
        }
    }

    /// The inner-loop poll. Fast path: two relaxed atomic loads; the wall
    /// clock is consulted once per `DEADLINE_POLL_INTERVAL` (64) calls.
    pub fn checkpoint(&self) -> Result<(), Exhausted> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(Exhausted::Cancelled);
        }
        if self.inner.quota.load(Ordering::Relaxed) == 0 {
            return Err(Exhausted::Quota);
        }
        if let Some(deadline) = self.inner.deadline {
            if self.inner.expired.load(Ordering::Relaxed) {
                return Err(Exhausted::Deadline);
            }
            let tick = self.inner.polls.fetch_add(1, Ordering::Relaxed);
            if tick % DEADLINE_POLL_INTERVAL == 0 && Instant::now() >= deadline {
                self.inner.expired.store(true, Ordering::Relaxed);
                return Err(Exhausted::Deadline);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.checkpoint().unwrap();
            b.spend(1).unwrap();
        }
        assert_eq!(b.remaining_quota(), None);
        assert_eq!(b.spent(), 0);
    }

    #[test]
    fn quota_exhausts_at_exact_step() {
        let b = Budget::unlimited().with_quota(5);
        for i in 0..5 {
            assert!(b.spend(1).is_ok(), "step {i} should fit");
        }
        assert_eq!(b.spend(1), Err(Exhausted::Quota));
        assert_eq!(b.checkpoint(), Err(Exhausted::Quota));
        assert_eq!(b.spent(), 5);
    }

    #[test]
    fn overdraw_drains_and_fails() {
        let b = Budget::unlimited().with_quota(3);
        assert_eq!(b.spend(10), Err(Exhausted::Quota));
        assert_eq!(b.remaining_quota(), Some(0));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited();
        let worker = b.clone();
        assert!(worker.checkpoint().is_ok());
        b.cancel();
        assert_eq!(worker.checkpoint(), Err(Exhausted::Cancelled));
        assert!(worker.is_cancelled());
    }

    #[test]
    fn cancellation_wins_over_quota() {
        let b = Budget::unlimited().with_quota(0);
        b.cancel();
        assert_eq!(b.checkpoint(), Err(Exhausted::Cancelled));
    }

    #[test]
    fn zero_deadline_expires() {
        let b = Budget::unlimited().with_deadline(Duration::from_millis(0));
        // The poll is amortized; drive enough checkpoints to hit it.
        let mut saw = None;
        for _ in 0..=DEADLINE_POLL_INTERVAL {
            if let Err(e) = b.checkpoint() {
                saw = Some(e);
                break;
            }
        }
        assert_eq!(saw, Some(Exhausted::Deadline));
        // Latched: immediate on the next call.
        assert_eq!(b.checkpoint(), Err(Exhausted::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        for _ in 0..1_000 {
            b.checkpoint().unwrap();
        }
    }

    #[test]
    fn fresh_rearms_quota_and_clears_cancel() {
        let b = Budget::unlimited().with_quota(2);
        b.spend(2).unwrap();
        b.cancel();
        let f = b.fresh();
        assert_eq!(f.remaining_quota(), Some(2));
        assert!(!f.is_cancelled());
        assert!(f.checkpoint().is_ok());
        // And the original is untouched by the fresh copy.
        assert_eq!(b.checkpoint(), Err(Exhausted::Cancelled));
    }

    #[test]
    fn with_spent_precharges_the_quota() {
        let b = Budget::unlimited().with_quota(10);
        let resumed = b.with_spent(7);
        assert_eq!(resumed.remaining_quota(), Some(3));
        assert_eq!(resumed.spent(), 7);
        resumed.spend(3).unwrap();
        assert_eq!(resumed.spend(1), Err(Exhausted::Quota));
        // fresh() of a pre-charged budget re-arms to the FULL quota, so
        // inner stages behave identically on resumed and fresh runs.
        assert_eq!(resumed.fresh().remaining_quota(), Some(10));
        // Over-spent checkpoints start exhausted instead of underflowing.
        assert_eq!(b.with_spent(99).checkpoint(), Err(Exhausted::Quota));
    }

    #[test]
    fn with_spent_on_unlimited_stays_unlimited() {
        let b = Budget::unlimited();
        let resumed = b.with_spent(1_000_000);
        assert_eq!(resumed.remaining_quota(), None);
        assert_eq!(resumed.spent(), 0);
        assert!(resumed.spend(1).is_ok());
    }

    #[test]
    fn clones_share_quota() {
        let b = Budget::unlimited().with_quota(4);
        let c = b.clone();
        b.spend(3).unwrap();
        assert_eq!(c.remaining_quota(), Some(1));
        assert_eq!(c.spend(2), Err(Exhausted::Quota));
    }

    #[test]
    fn for_request_clamps_each_axis_independently() {
        // request > max: clamped.
        let b = Budget::for_request(None, Some(1_000), None, Some(100));
        assert_eq!(b.remaining_quota(), Some(100));
        // request < max: the request wins.
        let b = Budget::for_request(None, Some(50), None, Some(100));
        assert_eq!(b.remaining_quota(), Some(50));
        // no request but a configured max: the max is the default cap.
        let b = Budget::for_request(None, None, None, Some(77));
        assert_eq!(b.remaining_quota(), Some(77));
        // nothing anywhere: unlimited.
        let b = Budget::for_request(None, None, None, None);
        assert_eq!(b.remaining_quota(), None);
        assert!(b.inner.deadline.is_none());
        // deadline axis clamps without touching the quota axis.
        let b = Budget::for_request(Some(60_000), Some(5), Some(1), None);
        assert_eq!(b.remaining_quota(), Some(5));
        assert_eq!(
            b.inner.deadline_duration,
            Some(Duration::from_millis(1)),
            "deadline clamped to the 1ms maximum"
        );
    }

    #[test]
    fn for_request_zero_quota_starts_exhausted() {
        // A hostile request asking for quota 0 (or a server max of 0) must
        // yield a budget that trips immediately, not an unlimited one.
        let b = Budget::for_request(None, Some(0), None, None);
        assert_eq!(b.checkpoint(), Err(Exhausted::Quota));
    }

    #[test]
    fn labels_round_trip() {
        for e in [Exhausted::Deadline, Exhausted::Quota, Exhausted::Cancelled] {
            assert_eq!(Exhausted::from_label(e.label()), Some(e));
        }
        assert_eq!(Exhausted::from_label("bogus"), None);
    }

    #[test]
    fn builder_combinators_compose() {
        let b = Budget::unlimited()
            .with_quota(7)
            .with_deadline(Duration::from_secs(60));
        assert_eq!(b.remaining_quota(), Some(7));
        let q = b.with_quota(9);
        assert_eq!(q.remaining_quota(), Some(9));
        // with_quota kept the deadline.
        assert!(q.inner.deadline.is_some());
    }
}
