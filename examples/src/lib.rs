//! Support crate for the runnable SheLL examples.
//!
//! Run them with:
//!
//! ```text
//! cargo run -p shell-examples --example quickstart
//! cargo run -p shell-examples --example soc_redaction
//! cargo run -p shell-examples --example ip_redaction
//! cargo run -p shell-examples --example attack_evaluation
//! cargo run -p shell-examples --example design_space
//! ```
