//! IP-level redaction (Fig. 3b/3d) — score-driven selection inside a single
//! IP: the signals between "@always blocks" (our generators' named blocks)
//! plus the directly-connected logic are redacted.
//!
//! ```text
//! cargo run -p shell-examples --example ip_redaction
//! ```

use shell_circuits::{generate, Benchmark, Scale};
use shell_lock::{
    activate, select_subcircuit, shell_lock, Coefficients, SelectionOptions, ShellOptions,
};
use shell_netlist::equiv::equiv_sequential_random;
use shell_synth::propagate_constants_cyclic;

fn main() {
    // A single IP: the DLA-like accelerator.
    let ip = generate(Benchmark::Dla, Scale::small());
    println!("IP under protection: DLA-like, {} cells", ip.cell_count());

    // Steps 1–3 standalone: inspect what the score-driven selection picks.
    let selection = select_subcircuit(
        &ip,
        &SelectionOptions {
            coefficients: Coefficients::c5_shell(),
            ..Default::default()
        },
    );
    println!(
        "selection: {} cells = {} ROUTE muxes + {} LGC cells; coverage {:.0}%, LGC ≈ {:.1} LUTs",
        selection.cells.len(),
        selection.route_cells.len(),
        selection.lgc_cells.len(),
        100.0 * selection.coverage,
        selection.lgc_luts
    );
    let named: Vec<&str> = selection
        .route_cells
        .iter()
        .take(5)
        .map(|&c| ip.cell(c).name.as_str())
        .collect();
    println!("sample ROUTE cells: {named:?}");

    // The full pipeline with the same options.
    let outcome = shell_lock(&ip, &ShellOptions::default()).expect("SheLL flow");
    println!(
        "locked IP: {} key bits on a {}x{} fabric (utilization {:.0}%)",
        outcome.key_bits(),
        outcome.fabric.width(),
        outcome.fabric.height(),
        100.0 * outcome.utilization
    );

    let activated = propagate_constants_cyclic(&activate(&outcome));
    let ok = equiv_sequential_random(&ip, &activated, &[], &[], 64, 9).is_equivalent();
    println!("activated IP matches the original: {ok}");
    assert!(ok);
}
