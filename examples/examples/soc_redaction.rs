//! SoC-level redaction (Fig. 3a/3c) — hide the inter-IP crossbar plus
//! neighboring core logic behind the eFPGA fabric, then show that a
//! removal attack (replacing the fabric with a plain crossbar guess) fails
//! because of the twisted LGC.
//!
//! ```text
//! cargo run -p shell-examples --example soc_redaction
//! ```

use shell_attacks::{removal_attack, RemovalOutcome};
use shell_circuits::common::cells_of_block;
use shell_circuits::{generate, Benchmark, Scale};
use shell_lock::{activate, shell_lock_cells, ShellOptions};
use shell_netlist::equiv::equiv_sequential_random;
use shell_synth::propagate_constants_cyclic;

fn main() {
    // The SoC platform: the PicoSoC-like benchmark, whose `mem_wr_route`
    // block is the memory-addressed arbitration between the CPU and its
    // memory port — the Fig. 3 crossbar.
    let soc = generate(Benchmark::PicoSoc, Scale::small());
    let targets = Benchmark::PicoSoc.redaction_targets();
    println!(
        "SoC platform: {} cells; redacting ROUTE `{}` twisted with LGC `{}`",
        soc.cell_count(),
        targets.shell_route,
        targets.shell_lgc
    );

    let mut cells = cells_of_block(&soc, targets.shell_route);
    cells.extend(cells_of_block(&soc, targets.shell_lgc));
    cells.sort_unstable();
    cells.dedup();
    let outcome =
        shell_lock_cells(&soc, &cells, &ShellOptions::default()).expect("SheLL flow");
    println!(
        "redacted {} cells ({} ROUTE) onto a {}x{} fabric; secret = {} bits",
        outcome.partition_cells,
        outcome.route_cells,
        outcome.fabric.width(),
        outcome.fabric.height(),
        outcome.key_bits()
    );

    // Sanity: the activated SoC behaves like the original.
    let activated = propagate_constants_cyclic(&activate(&outcome));
    assert!(
        equiv_sequential_random(&soc, &activated, &[], &[], 64, 3).is_equivalent(),
        "activation must restore the SoC"
    );
    println!("activated SoC verified against the original.");

    // Removal attack: the adversary replaces the whole redacted region with
    // a plain route-only guess — i.e. the original design *minus* the
    // twisted LGC (they guess the crossbar but cannot know the folded-in
    // core logic). Model: original with the LGC block's output forced low.
    let mut guess = soc.clone();
    for cid in cells_of_block(&soc, targets.shell_lgc) {
        // Neutralize the guessed-away LGC: rewire every reader of this
        // cell's output to a constant-0 driver.
        let zero = guess.add_cell(
            format!("removal_tie_{}", cid.index()),
            shell_netlist::CellKind::Const(false),
            vec![],
        );
        let fanout = guess.fanout_table();
        for &(reader, pin) in &fanout[guess.cell(cid).output.index()] {
            guess.rewire_input(reader, pin, zero);
        }
    }
    match removal_attack(&soc, &guess, 128) {
        RemovalOutcome::Failed { counterexample } => {
            println!(
                "removal attack FAILED (as designed): counterexample over {} inputs found",
                counterexample.len()
            );
        }
        RemovalOutcome::Succeeded => {
            println!("removal attack succeeded — the LGC twist was not load-bearing here");
        }
        RemovalOutcome::Incompatible(w) => println!("removal attack incomparable: {w}"),
    }
}
