//! Attack evaluation — run the full adversary toolbox against a SheLL-locked
//! design: cyclic reduction, full-scan framing, the oracle-guided SAT
//! attack, and the structural guesser (threat model of §II-B).
//!
//! ```text
//! cargo run -p shell-examples --example attack_evaluation
//! ```

use shell_attacks::{
    cyclic_reduction, sat_attack, scan_frame, SatAttackOptions, SatAttackOutcome,
};
use shell_circuits::axi_xbar;
use shell_fabric::shrink::combinational_cycle_count;
use shell_lock::{shell_lock, ShellOptions};

fn main() {
    let design = axi_xbar(4, 2);
    let outcome = shell_lock(&design, &ShellOptions::default()).expect("SheLL flow");
    println!(
        "target: SheLL-locked crossbar, {} key bits, {} locked cells",
        outcome.key_bits(),
        outcome.locked.cell_count()
    );

    // Step 1 — the attacker's pre-processing: rule out combinational cycles.
    let cycles_before = combinational_cycle_count(&outcome.locked);
    let reduced = if outcome.locked.topo_order().is_ok() {
        println!("cyclic reduction: nothing to cut (shrinking already removed the mesh cycles)");
        outcome.locked.clone()
    } else {
        let r = cyclic_reduction(&outcome.locked);
        println!(
            "cyclic reduction: {} cycles found, {} edges cut",
            r.cycles_found, r.edges_cut
        );
        r.netlist
    };
    println!("combinational cycles before/after: {cycles_before}/{}",
        combinational_cycle_count(&reduced));

    // Step 2 — full-scan frames (the threat model gives complete scan access).
    let locked_frame = scan_frame(&reduced);
    let oracle_frame = scan_frame(&design);
    println!(
        "scan frames: {} inputs / {} outputs",
        locked_frame.inputs().len(),
        locked_frame.outputs().len()
    );

    // Step 3 — the oracle-guided SAT attack under a conflict budget (the
    // 48-hour stand-in). The locked design may carry extra fabric registers;
    // frames are only comparable when the scan chains line up, which the
    // full-scan attacker achieves by chain mapping — modeled here by
    // requiring matching shapes.
    if locked_frame.inputs().len() != oracle_frame.inputs().len()
        || locked_frame.outputs().len() != oracle_frame.outputs().len()
    {
        println!(
            "scan shapes differ (fabric added {} registers): the frame-level              attack needs chain alignment; reporting the conservative outcome: RESILIENT",
            locked_frame.inputs().len() as i64 - oracle_frame.inputs().len() as i64
        );
        return;
    }
    let options = SatAttackOptions {
        max_iterations: 32,
        budget: shell_guard::Budget::unlimited().with_quota(200_000),
        ..Default::default()
    };
    match sat_attack(&locked_frame, &oracle_frame, &options) {
        SatAttackOutcome::Broken { key, iterations, conflicts } => {
            println!(
                "BROKEN: key of {} bits recovered in {iterations} DIPs / {conflicts} conflicts",
                key.len()
            );
        }
        SatAttackOutcome::Resilient { iterations, conflicts } => {
            println!(
                "RESILIENT within budget: {iterations} DIPs, {conflicts} conflicts spent \
                 (paper: 48 h timeout, none broken)"
            );
        }
        SatAttackOutcome::WrongKey { iterations, .. } => {
            println!(
                "attack terminated after {iterations} DIPs with a non-functional key \
                 (cyclic reduction cut a load-bearing edge) — design survives"
            );
        }
    }
}
