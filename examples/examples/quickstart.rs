//! Quickstart — lock a small crossbar with SheLL, verify the key, and look
//! at what an attacker sees (Fig. 4 end-to-end).
//!
//! ```text
//! cargo run -p shell-examples --example quickstart
//! ```

use shell_circuits::axi_xbar;
use shell_lock::{activate, shell_lock, ShellOptions};
use shell_netlist::equiv::equiv_random;
use shell_netlist::NetlistStats;
use shell_synth::propagate_constants_cyclic;

fn main() {
    // 1. A design worth protecting: a 4-channel, 2-bit AXI-style crossbar.
    let design = axi_xbar(4, 2);
    println!("original design:\n{}", NetlistStats::of(&design));

    // 2. Run the whole SheLL pipeline: scoring, ROUTE-first selection,
    //    decoupling, MUX-chain mapping, fit loop, shrinking.
    let outcome = shell_lock(&design, &ShellOptions::default()).expect("SheLL flow");
    println!(
        "locked: {} cells, {} key bits (fabric had {} config bits before shrinking)",
        outcome.locked.cell_count(),
        outcome.key_bits(),
        outcome.key_bits_before_shrink
    );
    println!(
        "fabric: {}x{} tiles, {} redacted cells ({} ROUTE muxes), utilization {:.0}%",
        outcome.fabric.width(),
        outcome.fabric.height(),
        outcome.partition_cells,
        outcome.route_cells,
        100.0 * outcome.utilization
    );

    // 3. The correct key restores the design exactly.
    let activated = propagate_constants_cyclic(&activate(&outcome));
    let equivalent = equiv_random(&design, &activated, &[], &[], 512, 1).is_equivalent();
    println!("correct key restores the function: {equivalent}");
    assert!(equivalent);

    // 4. A wrong key does not.
    let mut wrong = outcome.key.clone();
    for bit in wrong.iter_mut().take(8) {
        *bit = !*bit;
    }
    let corrupted = propagate_constants_cyclic(&shell_fabric::shrink::bind_keys(
        &outcome.locked,
        &wrong,
    ));
    let still_equal = corrupted.topo_order().is_ok()
        && equiv_random(&design, &corrupted, &[], &[], 512, 2).is_equivalent();
    println!("a wrong key still works: {still_equal}");
    assert!(!still_equal);

    println!("\nThe secret of the design is now the {}-bit bitstream.", outcome.key_bits());
}
