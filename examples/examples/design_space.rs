//! Design-space exploration — sweep the Eq. 1 coefficient presets and the
//! LGC depth on one benchmark, printing overhead and key size per point
//! (a miniature of Tables VI and VII for interactive use).
//!
//! ```text
//! cargo run -p shell-examples --example design_space
//! ```

use shell_circuits::{generate, Benchmark, Scale};
use shell_lock::{
    evaluate_overhead, shell_lock, Coefficients, SelectionOptions, ShellOptions,
};

fn main() {
    let design = generate(Benchmark::Spmv, Scale::small());
    println!(
        "exploring SPMV ({} cells): Eq. 1 presets x LGC depth\n",
        design.cell_count()
    );
    println!(
        "{:<8} {:>6} {:>8} {:>8} {:>8} {:>9}",
        "preset", "depth", "area", "power", "delay", "key bits"
    );
    for (label, coeffs) in Coefficients::table_vi_presets() {
        for depth in [0usize, 1] {
            let opts = ShellOptions {
                selection: SelectionOptions {
                    coefficients: coeffs,
                    lgc_depth: depth,
                    ..Default::default()
                },
                ..Default::default()
            };
            match shell_lock(&design, &opts) {
                Ok(outcome) => {
                    let oh = evaluate_overhead(&design, &outcome);
                    println!(
                        "{label:<8} {depth:>6} {:>8.2} {:>8.2} {:>8.2} {:>9}",
                        oh.area,
                        oh.power,
                        oh.delay,
                        outcome.key_bits()
                    );
                }
                Err(e) => println!("{label:<8} {depth:>6} failed: {e}"),
            }
        }
    }
    println!("\nexpected: c5/depth-0 (the SheLL operating point) is on the Pareto front.");
}
