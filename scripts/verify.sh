#!/usr/bin/env bash
# Hermetic-build verification: the workspace must build and test with zero
# network access. Run from anywhere; exits non-zero on any regression.
#
# Two layers of enforcement:
#   1. `--offline` makes cargo refuse to touch the network at all.
#   2. A manifest scan fails the run if any crates.io dependency sneaks
#      back into a Cargo.toml (the failure mode this script exists to
#      prevent: it broke every seed test before shell-util existed).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== manifest scan: no external (crates.io) dependencies allowed =="
# Dependency lines are either `shell-*` path crates or workspace plumbing.
# Anything else under a [dependencies]-ish section is a regression.
bad=$(awk '
    /^\[(dev-|build-)?dependencies/ { in_deps = 1; next }
    /^\[workspace.dependencies\]/   { in_deps = 1; next }
    /^\[/                           { in_deps = 0 }
    in_deps && NF && !/^#/ && !/^shell-/ { print FILENAME ": " $0 }
' Cargo.toml crates/*/Cargo.toml tests/Cargo.toml examples/Cargo.toml || true)
if [ -n "$bad" ]; then
    echo "external dependency detected:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "ok"

echo "== lockfile scan: every package must be path-local =="
if grep -q 'source = ' Cargo.lock; then
    echo "Cargo.lock contains registry-sourced packages:" >&2
    grep -B2 'source = ' Cargo.lock >&2
    exit 1
fi
echo "ok"

echo "== cargo build --release --offline =="
cargo build --release --offline

# The suite runs twice: once pinned sequential and once with a small worker
# pool, so a scheduling-dependent result (the bug class shell-exec's ordered
# merge exists to prevent) fails verification rather than landing.
echo "== cargo test -q --offline (SHELL_JOBS=1) =="
SHELL_JOBS=1 cargo test -q --offline

echo "== cargo test -q --offline (SHELL_JOBS=4) =="
SHELL_JOBS=4 cargo test -q --offline

echo "== cargo build --offline --benches --examples --bins =="
cargo build -q --offline --benches --examples --bins

echo "verify: all green (hermetic)"
