#!/usr/bin/env bash
# Hermetic-build verification: the workspace must build and test with zero
# network access. Run from anywhere; exits non-zero on any regression.
#
# Two layers of enforcement:
#   1. `--offline` makes cargo refuse to touch the network at all.
#   2. A manifest scan fails the run if any crates.io dependency sneaks
#      back into a Cargo.toml (the failure mode this script exists to
#      prevent: it broke every seed test before shell-util existed).
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== manifest scan: no external (crates.io) dependencies allowed =="
# Dependency lines are either `shell-*` path crates or workspace plumbing.
# Anything else under a [dependencies]-ish section is a regression.
bad=$(awk '
    /^\[(dev-|build-)?dependencies/ { in_deps = 1; next }
    /^\[workspace.dependencies\]/   { in_deps = 1; next }
    /^\[/                           { in_deps = 0 }
    in_deps && NF && !/^#/ && !/^shell-/ { print FILENAME ": " $0 }
' Cargo.toml crates/*/Cargo.toml tests/Cargo.toml examples/Cargo.toml || true)
if [ -n "$bad" ]; then
    echo "external dependency detected:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "ok"

echo "== lockfile scan: every package must be path-local =="
if grep -q 'source = ' Cargo.lock; then
    echo "Cargo.lock contains registry-sourced packages:" >&2
    grep -B2 'source = ' Cargo.lock >&2
    exit 1
fi
echo "ok"

echo "== cargo build --release --offline =="
cargo build --release --offline

# The suite runs twice: once pinned sequential and once with a small worker
# pool, so a scheduling-dependent result (the bug class shell-exec's ordered
# merge exists to prevent) fails verification rather than landing.
echo "== cargo test -q --offline (SHELL_JOBS=1) =="
SHELL_JOBS=1 cargo test -q --offline

echo "== cargo test -q --offline (SHELL_JOBS=4) =="
SHELL_JOBS=4 cargo test -q --offline

echo "== cargo build --offline --benches --examples --bins =="
cargo build -q --offline --benches --examples --bins

# Documentation is part of the contract: the public-API docs must build
# with zero warnings (broken intra-doc links are the usual regression).
echo "== cargo doc --no-deps (RUSTDOCFLAGS=-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc -q --offline --no-deps
echo "ok"

# And the prose must not rot: every relative link in the top-level
# markdown docs has to resolve to a file in the repo.
echo "== markdown link check: local links in *.md must resolve =="
md_bad=""
for f in *.md; do
    while IFS= read -r target; do
        target="${target%%#*}"                       # drop fragment
        [ -z "$target" ] && continue
        case "$target" in
            http://*|https://*|mailto:*) continue ;;  # external
        esac
        [ -e "$target" ] || md_bad="${md_bad}${f}: broken link -> ${target}"$'\n'
    done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done
if [ -n "$md_bad" ]; then
    printf '%s' "$md_bad" >&2
    exit 1
fi
echo "ok"

# Results coverage, both directions: every committed artifact under
# `results/` must have a recipe in EXPERIMENTS.md (files under
# `results/trace/` are documented as a family), and every `results/...`
# path the doc names must exist (placeholder paths containing `<` or `*`
# are patterns, not files).
echo "== results coverage: EXPERIMENTS.md <-> results/ =="
cov_bad=""
while IFS= read -r f; do
    case "$f" in results/trace/*) continue ;; esac
    grep -qF "\`$f\`" EXPERIMENTS.md || \
        cov_bad="${cov_bad}artifact has no EXPERIMENTS.md recipe: ${f}"$'\n'
done < <(git ls-files results)
while IFS= read -r path; do
    case "$path" in *'<'*|*'*'*) continue ;; esac
    [ -e "$path" ] || cov_bad="${cov_bad}EXPERIMENTS.md names a missing artifact: ${path}"$'\n'
done < <(grep -oE 'results/[A-Za-z0-9_./<>*-]+' EXPERIMENTS.md | sed 's/\.$//' | sort -u)
if [ -n "$cov_bad" ]; then
    printf '%s' "$cov_bad" >&2
    exit 1
fi
echo "ok"

# Trace smoke: SHELL_TRACE=1 must produce a loadable Chrome trace without
# perturbing the run (the fault report below is compared untraced).
echo "== trace smoke: SHELL_TRACE=1 emits results/trace/*.json =="
rm -f results/trace/fault_campaign.json results/trace/fault_campaign.summary.txt
SHELL_TRACE=1 SHELL_JOBS=2 cargo run -q --release --offline --bin fault_campaign -- \
    --faults 24 --seed 7 --out FAULT_trace_smoke >/dev/null
grep -q '"traceEvents"' results/trace/fault_campaign.json || {
    echo "trace smoke produced no Chrome trace" >&2
    exit 1
}
test -s results/trace/fault_campaign.summary.txt || {
    echo "trace smoke produced no span summary" >&2
    exit 1
}
rm -f results/FAULT_trace_smoke.json
echo "ok"

# Differential-fuzz smoke: the full lock pipeline, stage boundaries
# miter-checked, at two job counts. Zero mismatches is correctness; the
# byte-identical reports are the determinism contract (the fuzz report
# deliberately carries no job count or timestamp).
echo "== fuzz smoke: 32 samples, SHELL_JOBS=1 vs 4, reports must match =="
fuzz_j1=$(mktemp)
fuzz_j4=$(mktemp)
trap 'rm -f "$fuzz_j1" "$fuzz_j4"' EXIT
SHELL_JOBS=1 cargo run -q --release --offline --bin fuzz -- \
    --samples 32 --seed 7 --no-artifacts --out "$fuzz_j1"
SHELL_JOBS=4 cargo run -q --release --offline --bin fuzz -- \
    --samples 32 --seed 7 --no-artifacts --out "$fuzz_j4"
grep -q '"mismatches": 0' "$fuzz_j1" || {
    echo "fuzz smoke found mismatches:" >&2
    grep '"mismatches"' "$fuzz_j1" >&2
    exit 1
}
cmp "$fuzz_j1" "$fuzz_j4" || {
    echo "fuzz reports differ between SHELL_JOBS=1 and 4" >&2
    exit 1
}
echo "ok"

# Fault-injection smoke: 240 seeded bit-flip/stuck-at faults into a
# configured bitstream. Every fault must be detected or masked-with-proof
# and nothing may panic, at both job counts; the reports carry no worker
# count, so they must also be byte-identical.
echo "== fault smoke: 240 faults, SHELL_JOBS=1 vs 4, zero undetected/panics =="
SHELL_JOBS=1 cargo run -q --release --offline --bin fault_campaign -- \
    --faults 240 --seed 7 --out FAULT_smoke_j1
SHELL_JOBS=4 cargo run -q --release --offline --bin fault_campaign -- \
    --faults 240 --seed 7 --out FAULT_smoke_j4
grep -q '"undetected": 0' results/FAULT_smoke_j1.json || {
    echo "fault smoke left undetected faults:" >&2
    grep '"undetected"' results/FAULT_smoke_j1.json >&2
    exit 1
}
grep -q '"panics": 0' results/FAULT_smoke_j1.json || {
    echo "fault smoke panicked:" >&2
    grep '"panics"' results/FAULT_smoke_j1.json >&2
    exit 1
}
cmp results/FAULT_smoke_j1.json results/FAULT_smoke_j4.json || {
    echo "fault reports differ between SHELL_JOBS=1 and 4" >&2
    exit 1
}
rm -f results/FAULT_smoke_j1.json results/FAULT_smoke_j4.json
echo "ok"

# Bitstream smoke: the frame-addressed format must not drift from its
# golden fixtures, and the bench must prove the SECDED contract (single
# upsets corrected on readback, doubles detected) plus the partial-reconfig
# win: a 1-frame-dirty delta writes strictly fewer frames than a full
# write, confirmed by the bitstream.frames_skipped counter and a byte
# compare of the reconfigured device against the full-write target.
echo "== bitstream smoke: golden drift, tamper readback, partial reconfig =="
cargo test -q --release --offline -p xtests --test bitstream_golden
cargo run -q --release --offline --bin bench_bitstream >/dev/null
for verdict in roundtrip_ok tamper_corrected double_detected \
               partial_strictly_fewer frames_skipped_confirmed; do
    grep -q "\"$verdict\": true" results/BENCH_bitstream.json || {
        echo "bench_bitstream verdict failed: $verdict" >&2
        grep "\"$verdict\"" results/BENCH_bitstream.json >&2
        exit 1
    }
done
echo "ok"

# Incremental-SAT smoke: the attack bench runs both DIP-loop modes on a
# table-1-style circuit and self-checks two invariants — the persistent
# solver recovers the same (unique) key as the from-scratch baseline, and
# its summed per-DIP conflicts are no worse. Both job counts, since the
# attack must be scheduling-independent. (The artifact carries wall times,
# so whole-file cmp would be flaky; the verdict booleans are the contract.)
echo "== bench_sat smoke: incremental vs scratch, SHELL_JOBS=1 and 4 =="
for jobs in 1 4; do
    SHELL_JOBS=$jobs cargo run -q --release --offline --bin bench_sat >/dev/null
    grep -q '"same_key": true' results/BENCH_sat.json || {
        echo "bench_sat (SHELL_JOBS=$jobs): modes disagree on the key" >&2
        exit 1
    }
    grep -q '"no_worse": true' results/BENCH_sat.json || {
        echo "bench_sat (SHELL_JOBS=$jobs): incremental spent more DIP conflicts" >&2
        exit 1
    }
done
echo "ok"

# Explore smoke: the design-space sweep on the tiny 2×2-point grid at
# worker pools of 1 and 4. The report is jobs-invariant by contract, so
# both runs (and their Pareto plot data) must be byte-identical, and the
# four self-check verdicts must all hold. `--out` keeps the smoke away
# from the committed default-grid artifact.
echo "== explore smoke: tiny grid, SHELL_JOBS=1 vs 4, Pareto verdicts =="
exp_j1=$(mktemp); exp_j4=$(mktemp); par_j1=$(mktemp); par_j4=$(mktemp)
trap 'rm -f "$fuzz_j1" "$fuzz_j4" "$exp_j1" "$exp_j4" "$par_j1" "$par_j4"' EXIT
SHELL_JOBS=1 cargo run -q --release --offline -p shell-bench --bin bench_explore -- \
    --grid tiny --out "$exp_j1" --pareto-out "$par_j1" >/dev/null
SHELL_JOBS=4 cargo run -q --release --offline -p shell-bench --bin bench_explore -- \
    --grid tiny --out "$exp_j4" --pareto-out "$par_j4" >/dev/null
cmp "$exp_j1" "$exp_j4" || {
    echo "explore reports differ between SHELL_JOBS=1 and 4" >&2
    exit 1
}
cmp "$par_j1" "$par_j4" || {
    echo "explore Pareto data differs between SHELL_JOBS=1 and 4" >&2
    exit 1
}
for verdict in pareto_nonempty all_points_resolved any_survivor pick_survives; do
    grep -q "\"$verdict\": true" "$exp_j1" || {
        echo "bench_explore verdict failed: $verdict" >&2
        grep "\"$verdict\"" "$exp_j1" >&2
        exit 1
    }
done
echo "ok"

# Serve smoke: the locking service end-to-end over its TCP CLI — a cache
# hit must serve byte-identical artifact bytes, cancellation must reach a
# running job, and a server aborted mid-attack (via the crash-injection
# hook) must resume the job from its DIP checkpoint after restart and
# produce a report byte-identical to the uninterrupted run.
echo "== serve smoke: cache hit, cancel, crash-resume over TCP =="
serve_bin=target/release/shell_serve
serve_tmp=$(mktemp -d)
trap 'rm -f "$fuzz_j1" "$fuzz_j4" "$exp_j1" "$exp_j4" "$par_j1" "$par_j4"; rm -rf "$serve_tmp"' EXIT

serve_wait_port() {
    for _ in $(seq 1 100); do
        [ -s "$1" ] && return 0
        sleep 0.1
    done
    echo "serve smoke: server never wrote $1" >&2
    return 1
}
serve_id() { sed -E 's/.*"id":([0-9]+).*/\1/' <<<"$1"; }

"$serve_bin" serve --state-dir "$serve_tmp/a" --port-file "$serve_tmp/port" 2>/dev/null &
serve_pid=$!
serve_wait_port "$serve_tmp/port"
port_flag=(--port-file "$serve_tmp/port")

# Lock job + cache: the identical second request must answer
# `cached:true` and serve the same bytes.
lock_req='{"kind":"lock","seed":12}'
sub1=$("$serve_bin" submit "${port_flag[@]}" "$lock_req")
case "$sub1" in *'"cached":false'*) ;; *)
    echo "first submit unexpectedly cached: $sub1" >&2; exit 1 ;;
esac
"$serve_bin" result "${port_flag[@]}" --id "$(serve_id "$sub1")" --wait-ms 120000 \
    > "$serve_tmp/lock1.json"
sub2=$("$serve_bin" submit "${port_flag[@]}" "$lock_req")
case "$sub2" in *'"cached":true'*) ;; *)
    echo "identical request missed the cache: $sub2" >&2; exit 1 ;;
esac
"$serve_bin" result "${port_flag[@]}" --id "$(serve_id "$sub2")" > "$serve_tmp/lock2.json"
cmp "$serve_tmp/lock1.json" "$serve_tmp/lock2.json" || {
    echo "cache hit served different artifact bytes" >&2
    exit 1
}

# Cancel: a long attack, cancelled right after submission, must land in
# the `cancelled` terminal state (and `result` must refuse to print it).
slow_req='{"kind":"attack","circuit":{"gen":"axi_xbar","channels":10,"width":6},"key_bits":56,"seed":9}'
slow_id=$(serve_id "$("$serve_bin" submit "${port_flag[@]}" "$slow_req")")
"$serve_bin" cancel "${port_flag[@]}" --id "$slow_id" >/dev/null
if "$serve_bin" result "${port_flag[@]}" --id "$slow_id" --wait-ms 120000 2>/dev/null; then
    echo "cancelled job still produced a result" >&2
    exit 1
fi
"$serve_bin" status "${port_flag[@]}" --id "$slow_id" | grep -q '"status":"cancelled"' || {
    echo "cancel did not reach the job" >&2
    exit 1
}

# Crash-resume: reference report from the uninterrupted server above ...
attack_req='{"kind":"attack","circuit":{"gen":"axi_xbar","channels":6,"width":4},"key_bits":40,"seed":5}'
ref_id=$(serve_id "$("$serve_bin" submit "${port_flag[@]}" "$attack_req")")
"$serve_bin" result "${port_flag[@]}" --id "$ref_id" --wait-ms 120000 \
    > "$serve_tmp/attack_ref.json"
"$serve_bin" shutdown "${port_flag[@]}"
wait "$serve_pid" || true

# ... then the same request on a fresh server that aborts itself after
# 200 solver conflicts (a few of this attack's 9 DIP iterations),
# leaving the pending job and its DIP checkpoint on disk.
SHELL_SERVE_CRASH_AFTER_CONFLICTS=200 "$serve_bin" serve \
    --state-dir "$serve_tmp/b" --port-file "$serve_tmp/port_b" 2>/dev/null &
crash_pid=$!
serve_wait_port "$serve_tmp/port_b"
crash_id=$(serve_id "$("$serve_bin" submit --port-file "$serve_tmp/port_b" "$attack_req")")
if wait "$crash_pid"; then
    echo "crash-hooked server exited cleanly instead of aborting" >&2
    exit 1
fi
test -f "$serve_tmp/b/jobs/$crash_id.json" || {
    echo "crashed server lost the pending job" >&2
    exit 1
}
test -f "$serve_tmp/b/checkpoints/$crash_id.json" || {
    echo "crashed server left no DIP checkpoint" >&2
    exit 1
}
# Restart on the same state dir: the job re-enqueues, resumes from the
# checkpoint, and must produce a byte-identical report.
"$serve_bin" serve --state-dir "$serve_tmp/b" --port-file "$serve_tmp/port_b2" 2>/dev/null &
resume_pid=$!
serve_wait_port "$serve_tmp/port_b2"
"$serve_bin" result --port-file "$serve_tmp/port_b2" --id "$crash_id" --wait-ms 120000 \
    > "$serve_tmp/attack_resumed.json"
cmp "$serve_tmp/attack_ref.json" "$serve_tmp/attack_resumed.json" || {
    echo "resumed attack report differs from the uninterrupted run" >&2
    exit 1
}
"$serve_bin" shutdown --port-file "$serve_tmp/port_b2"
wait "$resume_pid" || true
echo "ok"

# Chaos smoke: a subset of the deterministic crash-point matrix (every
# 7th durable commit step) at worker pools of 1 and 4 — the server is
# killed at each selected step under injected IO faults, restarted, and
# its recovered artifacts byte-compared against an uninterrupted run.
# Zero torn states and zero report mismatches are the contract, and the
# write-ahead journal must not tax warm cache hits by more than 10%.
echo "== chaos smoke: crash-point matrix subset, journal overhead =="
SHELL_CHAOS_STRIDE=7 cargo run -q --release --offline --bin bench_chaos >/dev/null
grep -q '"torn_states": 0' results/BENCH_chaos.json || {
    echo "chaos matrix left torn state on disk:" >&2
    grep '"torn_states"' results/BENCH_chaos.json >&2
    exit 1
}
grep -q '"report_mismatches": 0' results/BENCH_chaos.json || {
    echo "chaos matrix recovery diverged from the reference:" >&2
    grep '"report_mismatches"' results/BENCH_chaos.json >&2
    exit 1
}
grep -q '"journal_overhead_ok": true' results/BENCH_chaos.json || {
    echo "journaling taxed warm cache hits beyond the 10% bound:" >&2
    grep '"journal_overhead"' results/BENCH_chaos.json >&2
    exit 1
}
# Drain-mode shutdown: an idle draining server must exit on its own.
"$serve_bin" serve --state-dir "$serve_tmp/c" --port-file "$serve_tmp/port_c" 2>/dev/null &
drain_pid=$!
serve_wait_port "$serve_tmp/port_c"
"$serve_bin" drain --port-file "$serve_tmp/port_c" | grep -q '"draining":true' || {
    echo "drain command not acknowledged" >&2
    exit 1
}
wait "$drain_pid" || true
echo "ok"

echo "verify: all green (hermetic)"
