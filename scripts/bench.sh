#!/usr/bin/env bash
# Kernel benchmarks at jobs=1 and jobs=N.
#
# Runs the micro-benchmark suite twice — pinned sequential via SHELL_JOBS=1,
# then at the machine's available parallelism (or $SHELL_JOBS if the caller
# set one) — and then runs the dedicated sequential-vs-parallel harness,
# which writes `results/BENCH_exec.json` with both medians and the
# wall-clock speedup per kernel.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs_n="${SHELL_JOBS:-$(nproc 2>/dev/null || echo 1)}"

echo "== kernels bench, sequential (SHELL_JOBS=1) =="
SHELL_JOBS=1 cargo bench --offline

echo "== kernels bench, parallel (SHELL_JOBS=${jobs_n}) =="
SHELL_JOBS="$jobs_n" cargo bench --offline

echo "== sequential-vs-parallel medians (results/BENCH_exec.json) =="
SHELL_JOBS="$jobs_n" cargo run --release --offline -p shell-bench --bin bench_exec

echo "== design-space sweep (results/BENCH_explore.json, results/explore/pareto.json) =="
SHELL_JOBS="$jobs_n" cargo run --release --offline -p shell-bench --bin bench_explore

echo "bench: done (jobs=${jobs_n})"
